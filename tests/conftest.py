"""Shared fixtures: canonical graphs and small deployed networks."""

from __future__ import annotations

import random

import pytest

from repro.network.graph import NetworkGraph
from repro.network.topologies import (
    annulus_network,
    cycle_graph,
    mobius_band_network,
    square_grid,
    triangulated_grid,
    wheel_graph,
)


@pytest.fixture
def k4() -> NetworkGraph:
    return NetworkGraph(range(4), [(i, j) for i in range(4) for j in range(i + 1, 4)])


@pytest.fixture
def c6() -> NetworkGraph:
    return cycle_graph(6)


@pytest.fixture
def grid5():
    """5x5 plain square grid (every inner face a 4-cycle)."""
    return square_grid(5, 5)


@pytest.fixture
def trigrid6():
    """6x6 triangulated grid (every inner face a triangle)."""
    return triangulated_grid(6, 6)


@pytest.fixture
def mobius():
    return mobius_band_network()


@pytest.fixture
def annulus():
    return annulus_network()


@pytest.fixture
def wheel8() -> NetworkGraph:
    return wheel_graph(8)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


def random_graph(n: int, p: float, seed: int) -> NetworkGraph:
    """An Erdos-Renyi graph, used across the property suites."""
    rng = random.Random(seed)
    graph = NetworkGraph(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph

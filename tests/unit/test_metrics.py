"""Unit tests for evaluation metrics."""

import pytest

from repro.analysis.metrics import (
    QualityOfCoverage,
    mean,
    normalized_sizes,
    saved_node_ratio,
)
from repro.geometry.coverage_eval import evaluate_coverage
from repro.network.deployment import Rectangle


class TestSavedNodeRatio:
    def test_basic(self):
        assert saved_node_ratio(100, 60) == pytest.approx(0.4)

    def test_zero_when_equal(self):
        assert saved_node_ratio(50, 50) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            saved_node_ratio(0, 10)


class TestNormalizedSizes:
    def test_normalisation(self):
        ratios = normalized_sizes({3: 100.0, 4: 80.0, 5: 50.0})
        assert ratios[3] == pytest.approx(1.0)
        assert ratios[5] == pytest.approx(0.5)

    def test_missing_base(self):
        with pytest.raises(KeyError):
            normalized_sizes({4: 10.0})

    def test_zero_base(self):
        with pytest.raises(ValueError):
            normalized_sizes({3: 0.0})


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            mean([])


class TestQualityOfCoverage:
    def test_from_report_blanket(self):
        report = evaluate_coverage(
            [(2.0, 2.0)], 4.0, Rectangle(0, 0, 4, 4), 30
        )
        qoc = QualityOfCoverage.from_report(report)
        assert qoc.covered_fraction == pytest.approx(1.0)
        assert qoc.num_holes == 0
        assert qoc.meets(0.0)

    def test_meets_with_holes(self):
        report = evaluate_coverage(
            [(0.0, 0.0)], 1.0, Rectangle(0, 0, 4, 4), 40
        )
        qoc = QualityOfCoverage.from_report(report)
        assert not qoc.meets(0.1)
        assert qoc.meets(qoc.max_hole_diameter)

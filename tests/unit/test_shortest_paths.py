"""Unit tests for deterministic shortest-path trees and LCA queries."""


from repro.cycles.shortest_paths import ShortestPathTree
from repro.network.graph import NetworkGraph
from repro.network.topologies import cycle_graph


class TestShortestPathTree:
    def test_depths_are_bfs_distances(self):
        g = NetworkGraph(range(5), [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        spt = ShortestPathTree(g, 0)
        assert spt.depth == {0: 0, 1: 1, 4: 1, 2: 2, 3: 2}

    def test_cutoff_truncates(self):
        g = cycle_graph(10)
        spt = ShortestPathTree(g, 0, cutoff=2)
        assert set(spt.parent) == {0, 1, 2, 8, 9}

    def test_tie_breaking_prefers_smallest_parent(self):
        # vertex 3 reachable at depth 2 via 1 or 2; parent must be 1
        g = NetworkGraph(range(4), [(0, 1), (0, 2), (1, 3), (2, 3)])
        spt = ShortestPathTree(g, 0)
        assert spt.parent[3] == 1

    def test_path_to_root(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        spt = ShortestPathTree(g, 0)
        assert spt.path_to_root(3) == [3, 2, 1, 0]
        assert spt.path_to_root(0) == [0]

    def test_contains(self):
        g = NetworkGraph(range(4), [(0, 1), (2, 3)])
        spt = ShortestPathTree(g, 0)
        assert 1 in spt and 2 not in spt


class TestLCA:
    def test_lca_at_root(self):
        g = cycle_graph(6)
        spt = ShortestPathTree(g, 0)
        # 2 and 4 descend through different children of 0
        assert spt.lca(2, 4) == 0

    def test_lca_of_ancestor(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        spt = ShortestPathTree(g, 0)
        assert spt.lca(1, 3) == 1
        assert spt.lca(3, 3) == 3

    def test_lca_sibling_subtrees(self):
        g = NetworkGraph(
            range(7), [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]
        )
        spt = ShortestPathTree(g, 0)
        assert spt.lca(3, 4) == 1
        assert spt.lca(3, 6) == 0


class TestTreeEdges:
    def test_is_tree_edge(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2), (2, 0)])
        spt = ShortestPathTree(g, 0)
        assert spt.is_tree_edge(0, 1)
        assert spt.is_tree_edge(0, 2)
        assert not spt.is_tree_edge(1, 2)

"""Unit tests for the parameter-sweep infrastructure."""

import pytest

from repro.analysis.sweeps import SweepResult, parameter_grid, run_sweep


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = parameter_grid(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6
        assert {"a": 2, "b": "y"} in grid

    def test_single_axis(self):
        assert parameter_grid(tau=[3, 4]) == [{"tau": 3}, {"tau": 4}]

    def test_empty(self):
        assert parameter_grid() == [{}]


class TestRunSweep:
    def test_rows_merge_params_and_measurements(self):
        def cell(tau, seed):
            return {"size": tau * 10 + seed}

        result = run_sweep(cell, parameter_grid(tau=[3, 4]), seeds=(0, 1))
        assert len(result) == 4
        row = result.filter(tau=3, seed=1).rows[0]
        assert row["size"] == 31

    def test_error_skip_mode(self):
        def cell(tau, seed):
            if tau == 4:
                raise RuntimeError("boom")
            return {"ok": True}

        result = run_sweep(
            cell, parameter_grid(tau=[3, 4]), on_error="skip"
        )
        assert len(result) == 2
        assert "error" in result.filter(tau=4).rows[0]

    def test_error_raise_mode(self):
        def cell(tau, seed):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_sweep(cell, parameter_grid(tau=[3]))

    def test_invalid_on_error(self):
        with pytest.raises(ValueError):
            run_sweep(lambda seed: {}, [{}], on_error="explode")


class TestSweepResult:
    @pytest.fixture
    def result(self):
        return SweepResult(
            rows=[
                {"tau": 3, "seed": 0, "size": 100},
                {"tau": 3, "seed": 1, "size": 110},
                {"tau": 4, "seed": 0, "size": 80},
            ]
        )

    def test_columns_preserve_order(self, result):
        assert result.columns() == ["tau", "seed", "size"]

    def test_filter_and_values(self, result):
        assert result.filter(tau=3).values("size") == [100, 110]

    def test_mean_by(self, result):
        means = result.mean_by(["tau"], "size")
        assert means[(3,)] == pytest.approx(105.0)
        assert means[(4,)] == pytest.approx(80.0)

    def test_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "sweep.csv"
        result.to_csv(str(path))
        back = SweepResult.from_csv(str(path))
        assert len(back) == 3
        # CSV stringifies values
        assert back.rows[0]["size"] == "100"

    def test_len(self, result):
        assert len(result) == 3

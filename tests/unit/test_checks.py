"""Unit tests for the repro.checks layer: engine, rules, sanitizer, CLI."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.checks.cli import main as lint_main
from repro.checks.engine import (
    Baseline,
    Finding,
    LintEngine,
    lint_paths,
    render_json,
    render_text,
)
from repro.checks.rules import all_rules
from repro.checks.sanitizer import (
    Sanitizer,
    SanitizerError,
    check_merge_associativity,
    current_sanitizer,
    disable_sanitizer,
    enable_sanitizer,
    oracle_ball,
    oracle_deletable,
)
from repro.network.graph import NetworkGraph
from repro.network.topologies import triangulated_grid
from repro.obs.metrics import MetricsRegistry
from repro.topology.engine import LocalTopologyEngine


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def lint_source(tmp_path: Path, source: str, rel: str = "mod.py"):
    """Write ``source`` under ``tmp_path`` and lint it with all rules."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    findings, _ = lint_paths([target], all_rules(), root=tmp_path)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


@pytest.fixture(autouse=True)
def _no_ambient_sanitizer(monkeypatch):
    """Tests control sanitizer activation explicitly."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    disable_sanitizer()
    yield
    disable_sanitizer()


# ----------------------------------------------------------------------
# REPRO101: unseeded RNG
# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_flags_unseeded_random(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            r = random.Random()
            x = random.random()
            random.shuffle([1, 2])
            """,
        )
        assert [f.rule for f in findings if f.rule == "REPRO101"] == ["REPRO101"] * 3

    def test_seeded_constructions_pass(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            r = random.Random(7)
            x = r.random()
            """,
        )
        assert not [f for f in findings if f.rule == "REPRO101"]


# ----------------------------------------------------------------------
# REPRO109: unseeded numpy.random
# ----------------------------------------------------------------------
class TestNumpyRng:
    def test_flags_numpy_global_rng(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            a = np.random.rand(3)
            rng = np.random.default_rng()
            np.random.seed(0)
            """,
        )
        assert len([f for f in findings if f.rule == "REPRO109"]) == 3
        assert not [f for f in findings if f.rule == "REPRO101"]

    def test_none_seed_is_unseeded(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            a = np.random.default_rng(None)
            b = np.random.default_rng(seed=None)
            """,
        )
        assert len([f for f in findings if f.rule == "REPRO109"]) == 2

    def test_generator_over_unseeded_bit_generator(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            bad = np.random.Generator(np.random.PCG64())
            empty = np.random.Generator()
            """,
        )
        assert len([f for f in findings if f.rule == "REPRO109"]) == 3
        # PCG64() is flagged on its own and as the Generator's source.

    def test_seeded_numpy_constructions_pass(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            from numpy.random import default_rng
            a = np.random.default_rng(3)
            b = default_rng(seed=11)
            c = np.random.Generator(np.random.PCG64(7))
            d = np.random.SeedSequence(5)
            """,
        )
        assert not [f for f in findings if f.rule == "REPRO109"]


# ----------------------------------------------------------------------
# REPRO102: set iteration order
# ----------------------------------------------------------------------
class TestSetIterationOrder:
    def test_list_of_set_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "out = list({1, 2, 3})\n")
        assert rules_of(findings) == ["REPRO102"]

    def test_for_append_over_set_variable_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(vs):
                keep = set(vs)
                out = []
                for v in keep:
                    out.append(v)
                return out
            """,
        )
        assert rules_of(findings) == ["REPRO102"]

    def test_comprehension_over_repo_set_api_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(graph, v):
                return [w for w in graph.neighbors(v)]
            """,
        )
        assert rules_of(findings) == ["REPRO102"]

    def test_sorted_and_order_free_consumers_pass(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(graph, v):
                a = sorted(graph.neighbors(v))
                b = sum(w for w in graph.neighbors(v))
                c = {w for w in graph.neighbors(v)}
                d = len({1, 2})
                return a, b, c, d
            """,
        )
        assert not findings

    def test_dict_iteration_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(d):
                out = []
                for k in d:
                    out.append(k)
                return out
            """,
        )
        assert not findings

    def test_annotated_attribute_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from typing import Set

            class View:
                def __init__(self, vs):
                    self._keep: Set[int] = set(vs)

                def vertices(self):
                    return list(self._keep)
            """,
        )
        assert rules_of(findings) == ["REPRO102"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppression:
    def test_allow_comment_on_line(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "out = list({1, 2})  # repro: allow[set-iteration-order]\n",
        )
        assert not findings

    def test_allow_comment_on_line_above(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            # repro: allow[REPRO102] order-free by construction
            out = list({1, 2})
            """,
        )
        assert not findings

    def test_wrong_rule_token_does_not_suppress(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "out = list({1, 2})  # repro: allow[bare-except]\n",
        )
        assert rules_of(findings) == ["REPRO102"]


# ----------------------------------------------------------------------
# REPRO103: wall clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged_outside_obs(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            t = time.time()
            """,
            rel="repro/core/mod.py",
        )
        assert rules_of(findings) == ["REPRO103"]

    def test_obs_layer_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            t = time.time()
            """,
            rel="repro/obs/mod.py",
        )
        assert not findings

    def test_perf_counter_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from time import perf_counter
            t = perf_counter()
            """,
            rel="repro/core/mod.py",
        )
        assert not findings


# ----------------------------------------------------------------------
# REPRO104: layering
# ----------------------------------------------------------------------
class TestLayering:
    def test_obs_import_in_cycles_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.obs.tracer import current_tracer
            """,
            rel="repro/cycles/kernel.py",
        )
        assert rules_of(findings) == ["REPRO104"]

    def test_lazy_import_also_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f():
                import repro.obs.tracer as t
                return t
            """,
            rel="repro/network/graph.py",
        )
        assert rules_of(findings) == ["REPRO104"]

    def test_topology_import_in_sanitizer_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.topology import LocalTopologyEngine\n",
            rel="repro/checks/sanitizer.py",
        )
        assert rules_of(findings) == ["REPRO104"]

    def test_allowed_imports_pass(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.network.graph import NetworkGraph\n",
            rel="repro/cycles/kernel.py",
        )
        assert not findings


# ----------------------------------------------------------------------
# REPRO105-108
# ----------------------------------------------------------------------
class TestSmallRules:
    def test_mutable_default(self, tmp_path):
        findings = lint_source(tmp_path, "def f(x=[]):\n    return x\n")
        assert rules_of(findings) == ["REPRO105"]

    def test_none_default_passes(self, tmp_path):
        findings = lint_source(tmp_path, "def f(x=None):\n    return x\n")
        assert not findings

    def test_bare_except(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            try:
                pass
            except:
                pass
            """,
        )
        assert rules_of(findings) == ["REPRO106"]

    def test_float_merge_division_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Stat:
                def merge(self, other):
                    self.mean = (self.mean + other.mean) / 2
            """,
        )
        assert rules_of(findings) == ["REPRO107"]

    def test_division_outside_merge_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Stat:
                def export(self):
                    return self.total / self.count
            """,
        )
        assert not findings

    def test_seed_plumbing_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def schedule(graph, rng=None):\n    return rng\n",
        )
        assert rules_of(findings) == ["REPRO108"]

    def test_seed_parameter_satisfies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def schedule(graph, rng=None, seed=0):\n    return rng, seed\n",
        )
        assert not findings

    def test_required_rng_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def schedule(graph, rng):\n    return rng\n",
        )
        assert not findings


# ----------------------------------------------------------------------
# REPRO113: shard locality
# ----------------------------------------------------------------------
_SHARD_RUNTIME_REL = "src/repro/shard/runtime.py"


class TestShardLocality:
    def test_global_coordinator_name_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def verdicts(rows):
                return [full_graph.degree(v) for v, _ in rows]
            """,
            rel=_SHARD_RUNTIME_REL,
        )
        assert rules_of(findings) == ["REPRO113"]
        assert "read as a global" in findings[0].message

    def test_threaded_in_plan_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def begin(plan, rows):
                return plan
            """,
            rel=_SHARD_RUNTIME_REL,
        )
        assert rules_of(findings) == ["REPRO113"]
        assert "local binding" in findings[0].message

    def test_coordinator_attribute_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Shard:
                def route(self):
                    return self.subscribers
            """,
            rel=_SHARD_RUNTIME_REL,
        )
        assert rules_of(findings) == ["REPRO113"]

    def test_coordinator_import_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.shard.plan import build_shard_plan\n",
            rel=_SHARD_RUNTIME_REL,
        )
        assert rules_of(findings) == ["REPRO113"]

    def test_partition_vocabulary_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Shard:
                def verdicts(self, rows):
                    return [self.partition.degree(v) for v, _ in rows]
            """,
            rel=_SHARD_RUNTIME_REL,
        )
        assert not findings

    def test_rule_only_fires_on_shard_runtime(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def route(plan):\n    return plan\n",
            rel="src/repro/shard/scheduler.py",
        )
        assert not findings

    def test_real_shard_runtime_is_clean(self):
        import repro.shard.runtime as runtime_module

        source = Path(runtime_module.__file__)
        findings, _ = lint_paths(
            [source], all_rules(), root=source.parents[3]
        )
        assert not [f for f in findings if f.rule == "REPRO113"]


# ----------------------------------------------------------------------
# Engine mechanics: baseline, reporters, syntax errors
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["REPRO999"]

    def test_baseline_parks_known_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("out = list({1, 2})\n")
        findings, _ = lint_paths([target], all_rules(), root=tmp_path)
        baseline = Baseline(f.fingerprint() for f in findings)
        fresh, parked = lint_paths(
            [target], all_rules(), baseline=baseline, root=tmp_path
        )
        assert fresh == [] and len(parked) == 1

    def test_new_finding_escapes_baseline(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("out = list({1, 2})\n")
        findings, _ = lint_paths([target], all_rules(), root=tmp_path)
        baseline = Baseline(f.fingerprint() for f in findings)
        target.write_text("out = list({1, 2})\nmore = list({3, 4})\n")
        fresh, parked = lint_paths(
            [target], all_rules(), baseline=baseline, root=tmp_path
        )
        assert len(fresh) == 1 and len(parked) == 1

    def test_baseline_roundtrip(self, tmp_path):
        baseline = Baseline(["a::R::m", "b::R::m"])
        path = tmp_path / "base.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        data = json.loads(path.read_text())
        assert data["format"] == "repro-lint-baseline/v1"
        assert data["entries"] == sorted(data["entries"])

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_json_rendering_is_stable(self):
        scrambled = [
            Finding("b.py", "REPRO102", "set-iteration-order", 9, 0, "m2"),
            Finding("a.py", "REPRO105", "mutable-default", 3, 4, "m1"),
            Finding("a.py", "REPRO102", "set-iteration-order", 7, 0, "m0"),
        ]
        rendered = render_json(scrambled)
        again = render_json(list(reversed(scrambled)))
        assert rendered == again
        payload = json.loads(rendered)
        assert payload["format"] == "repro-lint/v1"
        keys = [(f["path"], f["rule"], f["line"]) for f in payload["findings"]]
        assert keys == sorted(keys)

    def test_text_rendering_sorted(self):
        findings = [
            Finding("b.py", "REPRO102", "set-iteration-order", 9, 0, "m"),
            Finding("a.py", "REPRO102", "set-iteration-order", 7, 0, "m"),
        ]
        lines = render_text(findings).splitlines()
        assert lines == sorted(lines)

    def test_duplicate_rule_ids_rejected(self):
        rules = all_rules()
        with pytest.raises(ValueError):
            LintEngine(rules + [type(rules[0])()])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = sorted({1, 2})\n")
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = list({1, 2})\n")
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        assert "REPRO102" in capsys.readouterr().out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = list({1, 2})\n")
        assert (
            lint_main([str(tmp_path), "--root", str(tmp_path), "--update-baseline"])
            == 0
        )
        assert (tmp_path / "repro-lint.baseline.json").exists()
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out.splitlines()[-1]

    def test_select_unknown_rule_exits_two(self, tmp_path):
        assert (
            lint_main([str(tmp_path), "--root", str(tmp_path), "--select", "nope"])
            == 2
        )

    def test_json_output_parses(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = list({1, 2})\n")
        lint_main([str(tmp_path), "--root", str(tmp_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REPRO101", "REPRO108"):
            assert rule_id in out


# ----------------------------------------------------------------------
# Sanitizer
# ----------------------------------------------------------------------
def _grid_graph(n: int = 4) -> NetworkGraph:
    graph = NetworkGraph(range(n * n))
    for r in range(n):
        for c in range(n):
            v = r * n + c
            if c + 1 < n:
                graph.add_edge(v, v + 1)
            if r + 1 < n:
                graph.add_edge(v, v + n)
    return graph


class TestSanitizerOracles:
    def test_oracle_ball_matches_bfs(self):
        graph = _grid_graph()
        ball = oracle_ball(graph, 5, 1)
        assert ball == frozenset({5}) | graph.neighbors(5)

    def test_oracle_agrees_with_engine_verdicts(self):
        graph = triangulated_grid(5, 5).graph
        engine = LocalTopologyEngine(graph.copy(), tau=4)
        for v in sorted(graph.vertices()):
            assert oracle_deletable(graph, v, 4) == engine.deletable(v)

    def test_merge_associativity_accepts_real_payloads(self):
        payloads = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.inc("work", i + 1)
            reg.set_gauge("cfg", float(i))
            reg.observe("lat", 0.5 * i)
            payloads.append(reg.to_payload())
        assert check_merge_associativity(payloads) is None


class TestSanitizerChecks:
    def test_check_ball_passes_on_truth(self):
        graph = _grid_graph()
        sanitizer = Sanitizer()
        sanitizer.check_ball(graph, 0, 2, oracle_ball(graph, 0, 2))
        assert sanitizer.violations == []
        assert sanitizer.checks["ball"] == 1

    def test_check_ball_raises_on_divergence(self):
        graph = _grid_graph()
        sanitizer = Sanitizer()
        with pytest.raises(SanitizerError):
            sanitizer.check_ball(graph, 0, 2, frozenset({0, 1}))

    def test_warn_mode_records_without_raising(self):
        graph = _grid_graph()
        sanitizer = Sanitizer(mode="warn")
        sanitizer.check_ball(graph, 0, 2, frozenset({0, 1}))
        assert len(sanitizer.violations) == 1
        with pytest.raises(SanitizerError):
            sanitizer.assert_clean()

    def test_check_merge_flags_bad_reassociation(self):
        # A forged payload whose "counter" merges by replacement is not
        # associative; simulate by feeding inconsistent gauge orders.
        reg_a, reg_b, reg_c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        reg_a.inc("n", 1)
        reg_b.inc("n", 2)
        reg_c.inc("n", 3)
        sanitizer = Sanitizer()
        sanitizer.check_merge([reg_a.to_payload(), reg_b.to_payload(),
                               reg_c.to_payload()])
        assert sanitizer.violations == []

    def test_stride_samples_cache_hits(self):
        graph = _grid_graph()
        sanitizer = Sanitizer(stride=3)
        for _ in range(6):
            sanitizer.check_cached_verdict(graph, 5, 4, oracle_deletable(graph, 5, 4))
        assert sanitizer.checks.get("cached_verdict") == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(mode="loud")


class TestSanitizerEngineHooks:
    def test_engine_runs_clean_under_sanitizer(self):
        enable_sanitizer()
        try:
            graph = triangulated_grid(5, 5).graph
            engine = LocalTopologyEngine(graph, tau=4)
            order = sorted(engine.graph.vertices())
            for v in order:
                engine.deletable(v)
            for v in order:  # cache hits
                engine.deletable(v)
            engine.ball(order[0], 2)
            engine.blocked(order[0], 2, {order[-1]})
            sanitizer = current_sanitizer()
            assert sanitizer.violations == []
            for kind in ("fresh_verdict", "cached_verdict", "ball"):
                assert sanitizer.checks.get(kind, 0) > 0
            assert (
                sanitizer.checks.get("ball_intersects", 0)
                + sanitizer.checks.get("ball", 0)
                > 1
            )
        finally:
            disable_sanitizer()

    def test_blocked_kernel_path_checked(self):
        enable_sanitizer()
        try:
            graph = triangulated_grid(5, 5).graph
            engine = LocalTopologyEngine(graph, tau=4, cache_balls=False)
            vs = sorted(engine.graph.vertices())
            assert engine.blocked(vs[0], 10, {vs[-1]})
            assert current_sanitizer().checks.get("ball_intersects") == 1
        finally:
            disable_sanitizer()

    def test_poisoned_verdict_cache_detected(self):
        enable_sanitizer()
        try:
            graph = triangulated_grid(5, 5).graph
            engine = LocalTopologyEngine(graph, tau=4)
            v = sorted(engine.graph.vertices())[0]
            truth = engine.deletable(v)
            engine._verdicts[v] = not truth  # simulate a stale-cache bug
            with pytest.raises(SanitizerError):
                engine.deletable(v)
        finally:
            disable_sanitizer()

    def test_enable_exports_env_for_workers(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        enable_sanitizer(mode="warn")
        assert os.environ["REPRO_SANITIZE"] == "warn"
        disable_sanitizer()
        assert "REPRO_SANITIZE" not in os.environ


# ----------------------------------------------------------------------
# REPRO114: hot-path trace calls must be guarded
# ----------------------------------------------------------------------
class TestTraceGuard:
    HOT = "src/repro/cycles/hot.py"

    def test_unguarded_trace_in_hot_module_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def extract(tracer, v):
                with tracer.trace("kernel.ball", v=v):
                    return v
            """,
            rel=self.HOT,
        )
        assert "REPRO114" in rules_of(findings)

    def test_unguarded_add_span_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def note(tracer):
                tracer.add_span("kernel.note", 0.0)
            """,
            rel=self.HOT,
        )
        assert "REPRO114" in rules_of(findings)

    def test_ancestor_enabled_guard_accepted(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def extract(tracer, v):
                if tracer.enabled:
                    with tracer.trace("kernel.ball", v=v):
                        return v
                return v
            """,
            rel=self.HOT,
        )
        assert "REPRO114" not in rules_of(findings)

    def test_early_return_guard_accepted(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Kernel:
                def ball(self, v):
                    trc = self.tracer
                    if trc is None or not trc.enabled:
                        return self._ball(v)
                    with trc.trace("kernel.ball", v=v):
                        return self._ball(v)
            """,
            rel=self.HOT,
        )
        assert "REPRO114" not in rules_of(findings)

    def test_null_tracer_comparison_accepted(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def note(tracer):
                if tracer is not NULL_TRACER:
                    tracer.add_span("kernel.note", 0.0)
            """,
            rel=self.HOT,
        )
        assert "REPRO114" not in rules_of(findings)

    def test_else_branch_of_guard_still_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def extract(tracer, v):
                if tracer.enabled:
                    pass
                else:
                    with tracer.trace("kernel.ball", v=v):
                        return v
            """,
            rel=self.HOT,
        )
        assert "REPRO114" in rules_of(findings)

    def test_cold_modules_unconstrained(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def figure(tracer):
                with tracer.trace("figure.fig2"):
                    pass
            """,
            rel="src/repro/analysis/figs.py",
        )
        assert "REPRO114" not in rules_of(findings)

    def test_shard_runtime_is_hot(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def subround(tracer):
                with tracer.trace("shard.subround"):
                    pass
            """,
            rel="src/repro/shard/runtime.py",
        )
        assert "REPRO114" in rules_of(findings)

    def test_unrelated_trace_method_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def run(debugger):
                with debugger.trace("something"):
                    pass
            """,
            rel=self.HOT,
        )
        assert "REPRO114" not in rules_of(findings)

    def test_repo_hot_paths_are_clean(self):
        from pathlib import Path

        from repro.checks.engine import lint_paths
        from repro.checks.rules import TraceGuardRule

        root = Path(__file__).resolve().parents[2]
        hot = [
            *sorted((root / "src/repro/cycles").glob("*.py")),
            *sorted((root / "src/repro/topology").glob("*.py")),
            root / "src/repro/shard/runtime.py",
        ]
        findings, _ = lint_paths(hot, [TraceGuardRule()], root=root)
        assert findings == []


class TestReproCheckUmbrella:
    """The repro-check entry point: all fronts, one exit code."""

    ROOT = Path(__file__).resolve().parents[2]

    def test_unknown_front_exits_two(self, capsys):
        from repro.checks.runner import main as check_main

        assert check_main(["--fronts", "lint,nonsense"]) == 2
        assert "unknown fronts: nonsense" in capsys.readouterr().err

    def test_front_subset_runs_only_those(self, capsys):
        from repro.checks.runner import main as check_main

        code = check_main(
            [str(self.ROOT / "src"), "--root", str(self.ROOT),
             "--fronts", "lint,race"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "== repro-lint ==" in out
        assert "== repro-race ==" in out
        assert "== repro-verify ==" not in out
        assert "== repro-bounds ==" not in out

    def test_exit_code_is_worst_front(self, tmp_path, capsys):
        from repro.checks.runner import main as check_main

        # A tree that is lint-clean but bounds-dirty: the umbrella must
        # surface the failing front's code.
        fixture = tmp_path / "repro" / "topology" / "fix.py"
        fixture.parent.mkdir(parents=True)
        fixture.write_text(
            "def f(g, v):\n    return g.bfs_distances(v, cutoff=9)\n"
        )
        code = check_main(
            [str(tmp_path), "--root", str(tmp_path),
             "--fronts", "lint,bounds"]
        )
        capsys.readouterr()
        assert code == 1

    def test_shared_select_rejects_unknown_rules(self, capsys):
        assert lint_main(["--select", "REPRO999"]) == 2
        assert "unknown rules" in capsys.readouterr().err

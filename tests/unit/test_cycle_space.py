"""Unit tests for cycles, incidence masks and cycle-space helpers."""

import pytest

from repro.cycles.cycle_space import (
    Cycle,
    EdgeIndex,
    cycle_space_dimension,
    cycle_sum,
    decompose_mask_into_cycles,
    fundamental_cycle_basis,
    is_cycle_mask,
    mask_vertex_degrees,
)
from repro.cycles.gf2 import GF2Basis
from repro.network.graph import NetworkGraph


@pytest.fixture
def k4_index(k4):
    return EdgeIndex.from_graph(k4)


class TestEdgeIndex:
    def test_len_matches_edges(self, k4, k4_index):
        assert len(k4_index) == k4.num_edges() == 6

    def test_bit_is_orientation_free(self, k4_index):
        assert k4_index.bit(0, 1) == k4_index.bit(1, 0)

    def test_duplicate_edges_collapse(self):
        index = EdgeIndex([(0, 1), (1, 0), (0, 1)])
        assert len(index) == 1

    def test_mask_roundtrip(self, k4_index):
        mask = k4_index.mask_of_edges([(0, 1), (2, 3)])
        assert sorted(k4_index.edges_of_mask(mask)) == [(0, 1), (2, 3)]

    def test_mask_of_edges_is_xor(self, k4_index):
        # listing an edge twice cancels it
        assert k4_index.mask_of_edges([(0, 1), (0, 1)]) == 0

    def test_vertex_cycle_mask(self, k4_index):
        mask = k4_index.mask_of_vertex_cycle([0, 1, 2])
        assert sorted(k4_index.edges_of_mask(mask)) == [(0, 1), (0, 2), (1, 2)]

    def test_short_cycle_rejected(self, k4_index):
        with pytest.raises(ValueError):
            k4_index.mask_of_vertex_cycle([0, 1])


class TestCycle:
    def test_length_and_equality(self, k4_index):
        a = Cycle.from_vertices([0, 1, 2], k4_index)
        b = Cycle.from_vertices([1, 2, 0], k4_index)
        assert a.length == 3
        assert a == b
        assert hash(a) == hash(b)

    def test_different_cycles_unequal(self, k4_index):
        a = Cycle.from_vertices([0, 1, 2], k4_index)
        b = Cycle.from_vertices([0, 1, 3], k4_index)
        assert a != b


class TestMaskPredicates:
    def test_cycle_sum_is_xor(self, k4_index):
        a = k4_index.mask_of_vertex_cycle([0, 1, 2])
        b = k4_index.mask_of_vertex_cycle([0, 2, 3])
        # triangles sharing edge (0,2): sum is the 4-cycle 0-1-2-3
        expected = k4_index.mask_of_vertex_cycle([0, 1, 2, 3])
        assert cycle_sum([a, b]) == expected

    def test_is_cycle_mask_true_for_simple_cycle(self, k4_index):
        assert is_cycle_mask(k4_index.mask_of_vertex_cycle([0, 1, 2]), k4_index)

    def test_is_cycle_mask_false_for_two_cycles(self):
        g = NetworkGraph(range(6), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        index = EdgeIndex.from_graph(g)
        two = index.mask_of_vertex_cycle([0, 1, 2]) ^ index.mask_of_vertex_cycle(
            [3, 4, 5]
        )
        assert not is_cycle_mask(two, index)

    def test_is_cycle_mask_false_for_path(self, k4_index):
        path = k4_index.mask_of_edges([(0, 1), (1, 2)])
        assert not is_cycle_mask(path, k4_index)
        assert not is_cycle_mask(0, k4_index)

    def test_mask_vertex_degrees(self, k4_index):
        mask = k4_index.mask_of_vertex_cycle([0, 1, 2])
        assert mask_vertex_degrees(mask, k4_index) == {0: 2, 1: 2, 2: 2}


class TestDecomposition:
    def test_single_cycle(self, k4_index):
        mask = k4_index.mask_of_vertex_cycle([0, 1, 2])
        cycles = decompose_mask_into_cycles(mask, k4_index)
        assert len(cycles) == 1
        assert cycles[0].length == 3

    def test_disjoint_cycles(self):
        g = NetworkGraph(range(7), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)])
        index = EdgeIndex.from_graph(g)
        mask = index.mask_of_vertex_cycle([0, 1, 2]) ^ index.mask_of_vertex_cycle(
            [3, 4, 5, 6]
        )
        cycles = decompose_mask_into_cycles(mask, index)
        assert sorted(c.length for c in cycles) == [3, 4]
        total = 0
        for c in cycles:
            total ^= c.mask
        assert total == mask

    def test_figure_eight(self):
        """Two triangles sharing a vertex decompose at the shared vertex."""
        g = NetworkGraph(range(5), [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)])
        index = EdgeIndex.from_graph(g)
        mask = index.mask_of_vertex_cycle([0, 1, 2]) ^ index.mask_of_vertex_cycle(
            [0, 3, 4]
        )
        cycles = decompose_mask_into_cycles(mask, index)
        assert sorted(c.length for c in cycles) == [3, 3]

    def test_odd_degree_rejected(self, k4_index):
        with pytest.raises(ValueError):
            decompose_mask_into_cycles(k4_index.mask_of_edges([(0, 1)]), k4_index)


class TestFundamentalBasis:
    def test_rank_equals_dimension(self, k4):
        index, masks = fundamental_cycle_basis(k4)
        assert len(masks) == cycle_space_dimension(k4) == 3
        basis = GF2Basis(masks)
        assert basis.rank == 3

    def test_every_mask_is_a_cycle(self, trigrid6):
        index, masks = fundamental_cycle_basis(trigrid6.graph)
        for mask in masks:
            assert is_cycle_mask(mask, index)

    def test_forest_has_empty_basis(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        __, masks = fundamental_cycle_basis(g)
        assert masks == []
        assert cycle_space_dimension(g) == 0

    def test_dimension_counts_components(self):
        g = NetworkGraph(range(6), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert cycle_space_dimension(g) == 2

"""Unit tests for the energy model and battery state."""

import pytest

from repro.network.energy import EnergyModel, EnergyState


class TestEnergyModel:
    def test_defaults_give_100_shifts(self):
        assert EnergyModel().always_on_shifts == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(battery_capacity=0)
        with pytest.raises(ValueError):
            EnergyModel(active_cost=0)
        with pytest.raises(ValueError):
            EnergyModel(sleep_cost=-0.1)
        with pytest.raises(ValueError):
            EnergyModel(active_cost=1.0, sleep_cost=2.0)


class TestEnergyState:
    def test_initial_state(self):
        state = EnergyState([1, 2, 3], EnergyModel(battery_capacity=5.0))
        assert state.alive() == {1, 2, 3}
        assert state.depleted() == set()
        assert state.total_residual() == pytest.approx(15.0)

    def test_drain_splits_active_and_sleeping(self):
        model = EnergyModel(battery_capacity=10.0, active_cost=2.0, sleep_cost=0.5)
        state = EnergyState([1, 2], model)
        died = state.drain_shift(active=[1])
        assert died == set()
        assert state.residual_of(1) == pytest.approx(8.0)
        assert state.residual_of(2) == pytest.approx(9.5)

    def test_death_reported_once(self):
        model = EnergyModel(battery_capacity=1.0, active_cost=1.0, sleep_cost=0.1)
        state = EnergyState([1, 2], model)
        died = state.drain_shift(active=[1])
        assert died == {1}
        assert state.drain_shift(active=[1]) == set()  # already dead
        assert state.alive() == {2}

    def test_recharge(self):
        model = EnergyModel(battery_capacity=3.0)
        state = EnergyState([1], model)
        state.drain_shift(active=[1])
        state.recharge(1)
        assert state.residual_of(1) == pytest.approx(3.0)

    def test_total_residual_never_negative(self):
        model = EnergyModel(battery_capacity=0.5, active_cost=1.0, sleep_cost=0.0)
        state = EnergyState([1], model)
        state.drain_shift(active=[1])
        assert state.total_residual() == 0.0

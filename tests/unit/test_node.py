"""Unit tests for the node model."""

import pytest

from repro.network.node import Node, distance


class TestDistance:
    def test_euclidean(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero(self):
        assert distance((1, 1), (1, 1)) == 0.0


class TestNode:
    def test_defaults(self):
        node = Node(7, (1.0, 2.0))
        assert not node.is_boundary
        assert not node.is_virtual

    def test_distance_to(self):
        a = Node(0, (0.0, 0.0))
        b = Node(1, (0.0, 2.0))
        assert a.distance_to(b) == pytest.approx(2.0)

"""Unit tests for geometric boundary extraction."""


import pytest

from repro.boundary.geometric import (
    enclosure_fraction,
    outer_boundary_cycle,
    planar_backbone,
    polygon_encloses,
    trace_outer_face,
    winding_number,
)
from repro.network.deployment import build_network, Rectangle
from repro.network.graph import NetworkGraph
from repro.network.topologies import triangulated_grid


class TestWindingNumber:
    def test_ccw_square_winds_once(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert winding_number(square, (0.5, 0.5)) == pytest.approx(1.0)

    def test_cw_square_winds_minus_once(self):
        square = [(0, 1), (1, 1), (1, 0), (0, 0)]
        assert winding_number(square, (0.5, 0.5)) == pytest.approx(-1.0)

    def test_outside_point_winds_zero(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert winding_number(square, (5, 5)) == pytest.approx(0.0)

    def test_polygon_encloses(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert polygon_encloses(square, (0.5, 0.5))
        assert not polygon_encloses(square, (2, 2))


class TestTraceOuterFace:
    def test_triangulated_grid_rim(self):
        mesh = triangulated_grid(5, 5)
        cycle = trace_outer_face(mesh.graph, mesh.positions)
        assert set(cycle) == set(mesh.outer_boundary)

    def test_cycle_edges_exist(self):
        mesh = triangulated_grid(4, 6)
        cycle = trace_outer_face(mesh.graph, mesh.positions)
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert mesh.graph.has_edge(a, b)

    def test_simple_cycle(self):
        mesh = triangulated_grid(6, 4)
        cycle = trace_outer_face(mesh.graph, mesh.positions)
        assert len(set(cycle)) == len(cycle)

    def test_too_small_graph_raises(self):
        g = NetworkGraph(range(2), [(0, 1)])
        with pytest.raises(RuntimeError):
            trace_outer_face(g, {0: (0, 0), 1: (1, 0)})


class TestPlanarBackbone:
    def test_backbone_is_subgraph(self):
        net = build_network(100, Rectangle(0, 0, 6, 6), 1.0, 1.0, seed=4)
        backbone = planar_backbone(net.graph, net.positions)
        assert backbone.edge_set() <= net.graph.edge_set()
        assert backbone.vertex_set() == net.graph.vertex_set()

    def test_backbone_much_sparser(self):
        net = build_network(200, Rectangle(0, 0, 6, 6), 1.0, 1.0, seed=5)
        backbone = planar_backbone(net.graph, net.positions)
        # planar graphs have at most 3n - 6 edges
        assert backbone.num_edges() <= 3 * len(backbone) - 6


class TestOuterBoundaryCycle:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_networks_enclose_everything(self, seed):
        # density comparable to the paper's simulations (degree ~16);
        # ragged sparse rims legitimately leave a few nodes in cut ears
        net = build_network(250, Rectangle(0, 0, 7, 7), 1.0, 1.0, seed=seed)
        cycle = outer_boundary_cycle(net)
        assert len(cycle) >= 3
        assert enclosure_fraction(net, cycle) >= 0.9
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert net.graph.has_edge(a, b)

    def test_enclosure_fraction_of_tiny_cycle_is_low(self):
        net = build_network(150, Rectangle(0, 0, 7, 7), 1.0, 1.0, seed=1)
        # a tiny triangle in the corner cannot enclose the internals
        import networkx as nx

        triangle = None
        for clique in nx.find_cliques(net.graph.to_networkx()):
            if len(clique) >= 3:
                triangle = clique[:3]
                break
        assert triangle is not None
        assert enclosure_fraction(net, triangle) < 0.5

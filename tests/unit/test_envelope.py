"""Unit tests for the runtime envelope cross-check (repro.obs.envelope)."""

from __future__ import annotations

import pytest

from repro.obs.envelope import (
    MANIFEST_SCHEMA,
    EnvelopeReport,
    EnvelopeRow,
    check_envelope,
    envelope_params,
    eval_bound,
    margins_entry,
    max_bfs_depth_from_tracer,
    measured_from_runtime_stats,
    moore_ball_bound,
)
from repro.obs.export import SchemaError
from repro.obs.tracer import Tracer
from repro.runtime.stats import RuntimeStats


def manifest(**envelopes: str) -> dict:
    return {"format": MANIFEST_SCHEMA, "envelopes": envelopes}


# ----------------------------------------------------------------------
# The bound-expression grammar
# ----------------------------------------------------------------------
class TestEvalBound:
    def test_arithmetic(self):
        env = {"n": 10, "k": 3}
        assert eval_bound("3 * n + k", env) == 33
        assert eval_bound("n // k - 1", env) == 2
        assert eval_bound("min(n, k + 8)", env) == 10
        assert eval_bound("max(n, k)", env) == 10
        assert eval_bound("-k + n", env) == 7

    def test_unknown_parameter_names_scope(self):
        with pytest.raises(SchemaError) as err:
            eval_bound("rounds * n", {"n": 5, "k": 2})
        message = str(err.value)
        assert "rounds" in message
        assert "in scope: k, n" in message

    def test_rejects_out_of_grammar_nodes(self):
        for expr in ("n ** 2", "n / 2", "1.5 * n", "__import__('os')", "n if k else 0"):
            with pytest.raises(SchemaError):
                eval_bound(expr, {"n": 4, "k": 1})

    def test_rejects_division_by_zero(self):
        with pytest.raises(SchemaError):
            eval_bound("n // 0", {"n": 4})


class TestMooreBound:
    def test_small_radius_is_exact(self):
        # degree-3 tree, radius 2: 1 + 3 + 3*2 = 10
        assert moore_ball_bound(100, 3, 2) == 10

    def test_clamped_by_n(self):
        assert moore_ball_bound(5, 10, 3) == 5

    def test_degenerate_degrees(self):
        assert moore_ball_bound(9, 0, 4) == 1
        assert moore_ball_bound(9, 1, 4) == 2
        assert moore_ball_bound(9, 2, 3) == 7  # path: 1 + 2*3

    def test_radius_zero_is_singleton(self):
        assert moore_ball_bound(9, 5, 0) == 1

    def test_envelope_params_derive_balls(self):
        env = envelope_params({"n": 100, "delta": 3, "k": 2, "m": 3})
        assert env["ball_k"] == moore_ball_bound(100, 3, 2)
        assert env["ball_m"] == moore_ball_bound(100, 3, 3)


# ----------------------------------------------------------------------
# check_envelope
# ----------------------------------------------------------------------
class TestCheckEnvelope:
    def test_inside_envelope_passes(self):
        report = check_envelope(
            manifest(**{"halo.rows_per_round": "3 * halo_members"}),
            {"halo.rows_per_round": 20},
            {"halo_members": 7},
        )
        assert report.ok
        (row,) = report.rows
        assert row.bound_value == 21
        assert row.margin == 1

    def test_violation_fails_with_negative_margin(self):
        report = check_envelope(
            manifest(**{"bfs.max_depth": "k"}),
            {"bfs.max_depth": 4},
            {"k": 3},
        )
        assert not report.ok
        (row,) = report.violations
        assert row.margin == -1

    def test_unmeasured_and_uncovered_are_reported_not_fatal(self):
        report = check_envelope(
            manifest(**{"bfs.max_depth": "k"}),
            {"surprise.meter": 1},
            {"k": 3},
        )
        assert report.ok
        assert report.unmeasured == ["bfs.max_depth"]
        assert report.uncovered == ["surprise.meter"]

    def test_wrong_schema_rejected(self):
        with pytest.raises(SchemaError):
            check_envelope({"format": "something/v9", "envelopes": {}}, {}, {})

    def test_malformed_envelope_entry_rejected(self):
        with pytest.raises(SchemaError):
            check_envelope(
                {"format": MANIFEST_SCHEMA, "envelopes": {"x": 7}}, {}, {}
            )

    def test_dict_entry_with_bound_key_accepted(self):
        report = check_envelope(
            {
                "format": MANIFEST_SCHEMA,
                "envelopes": {"x": {"bound": "n", "note": "whatever"}},
            },
            {"x": 2},
            {"n": 3},
        )
        assert report.ok


class TestFormatDiff:
    def test_readable_failure_names_the_meter(self):
        report = check_envelope(
            manifest(
                **{
                    "bfs.max_depth": "k",
                    "halo.rows_per_round": "3 * halo_members",
                }
            ),
            {"bfs.max_depth": 9, "halo.rows_per_round": 5},
            {"k": 3, "halo_members": 7},
        )
        text = report.format_diff()
        assert "FAIL bfs.max_depth" in text
        assert "measured=9" in text and "bound=3" in text
        assert "ok   halo.rows_per_round" in text
        assert "envelope violated: bfs.max_depth" in text

    def test_pass_output_has_no_violation_banner(self):
        report = EnvelopeReport(
            rows=[EnvelopeRow("m", 1, "n", 2, True)], params={"n": 2}
        )
        assert "envelope violated" not in report.format_diff()

    def test_margins_entry_round_trips(self):
        report = EnvelopeReport(rows=[EnvelopeRow("m", 1, "n", 2, True)])
        label, payload = margins_entry(report, "fig2-smoke")
        assert label == "fig2-smoke"
        assert payload["ok"] is True
        assert payload["rows"][0]["margin"] == 1


# ----------------------------------------------------------------------
# Measured-meter helpers
# ----------------------------------------------------------------------
class TestMeasuredHelpers:
    def test_runtime_stats_meters(self):
        stats = RuntimeStats()
        stats.record_send("priority", deliveries=2, count=3)
        stats.record_send("delete", deliveries=1)
        assert measured_from_runtime_stats(stats) == {
            "messages.delete.sent": 1,
            "messages.priority.sent": 3,
        }

    def test_max_bfs_depth_from_tracer(self):
        tracer = Tracer()
        with tracer.trace("kernel.ball_bfs", radius=2):
            pass
        with tracer.trace("kernel.ball_bfs", radius=3):
            pass
        with tracer.trace("other.span", radius=99):
            pass
        assert max_bfs_depth_from_tracer(tracer) == 3

    def test_max_bfs_depth_none_when_unobserved(self):
        assert max_bfs_depth_from_tracer(Tracer()) is None

"""Unit tests for the chaos-order sanitizer (REPRO_CHAOS).

The determinism contract says pool outputs never depend on *when* tasks
complete, only on submission-order consumption of their results.  The
chaos harness makes that claim falsifiable: with ``REPRO_CHAOS=1``
every pool barrier waits/drains in a seeded-permuted order and workers
self-delay, and the tests here assert results stay identical to the
unperturbed runs.  The worker-crash tests pin the shm cleanup
guarantee: a killed worker surfaces as a deterministic RuntimeError and
never leaks a /dev/shm segment.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

import pytest

from repro.core.scheduler import dcc_schedule
from repro.network.graph import NetworkGraph
from repro.parallel import runner
from repro.parallel.runner import (
    ChaosSchedule,
    ShardWorkerPool,
    chaos_summary,
    current_chaos,
    parallel_starmap,
)
from repro.parallel.shm import shm_available
from repro.shard import build_shard_plan, sharded_dcc_schedule

SHM_DIR = Path("/dev/shm")


@pytest.fixture(autouse=True)
def _fresh_chaos(monkeypatch):
    """Each case starts with chaos off and no harness carried over."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_SEED", raising=False)
    monkeypatch.setattr(runner, "_CHAOS", None)


def _random_graph(seed: int, nodes: int = 36, density: float = 0.2) -> NetworkGraph:
    rng = random.Random(seed)
    graph = NetworkGraph(range(nodes))
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


def _shm_segments() -> set:
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
class TestChaosSchedule:
    def test_same_seed_same_permutations(self):
        items = list(range(12))
        first = ChaosSchedule(7)
        second = ChaosSchedule(7)
        for _ in range(5):
            assert first.permuted(items) == second.permuted(items)
        assert first.permutations == second.permutations == 5

    def test_different_seeds_diverge(self):
        items = list(range(50))
        a = ChaosSchedule(0).permuted(items)
        b = ChaosSchedule(1).permuted(items)
        assert sorted(a) == sorted(b) == items
        assert a != b

    def test_gated_on_env(self, monkeypatch):
        assert current_chaos() is None
        monkeypatch.setenv("REPRO_CHAOS", "1")
        chaos = current_chaos()
        assert chaos is not None
        # One harness per process: the counter spans the run.
        assert current_chaos() is chaos

    def test_seed_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        chaos = current_chaos()
        assert chaos is not None and chaos.seed == 42

    def test_summary_line(self, monkeypatch):
        assert chaos_summary() is None
        monkeypatch.setenv("REPRO_CHAOS", "1")
        chaos = current_chaos()
        chaos.permuted([1, 2, 3])
        chaos.permuted([4, 5])
        assert chaos_summary() == "chaos: 2 perturbed orders (seed 0)"


# ----------------------------------------------------------------------
# Pool barriers stay order-invariant under chaos
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


class TestChaosInvariance:
    def test_parallel_starmap_identical_under_chaos(self, monkeypatch):
        tasks = [(i,) for i in range(40)]
        plain = parallel_starmap(_square, tasks, workers=2)
        monkeypatch.setattr(runner, "_CHAOS", None)
        monkeypatch.setenv("REPRO_CHAOS", "1")
        chaotic = parallel_starmap(_square, tasks, workers=2)
        assert chaotic == plain == [i * i for i in range(40)]
        chaos = runner._CHAOS
        assert chaos is not None and chaos.permutations > 0

    def test_sharded_schedule_identical_under_chaos(self, monkeypatch):
        graph = _random_graph(23)
        protected = set(sorted(graph.vertices())[:3])
        serial = dcc_schedule(
            graph, protected, 4, rng=random.Random(5), workers=1
        )
        monkeypatch.setenv("REPRO_CHAOS", "1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "3")
        chaotic = sharded_dcc_schedule(
            graph, protected, 4, random.Random(5), shards=2, workers=2
        )
        assert chaotic.removed == serial.removed
        assert chaotic.deletions_per_round == serial.deletions_per_round
        assert sorted(chaotic.active.vertices()) == sorted(
            serial.active.vertices()
        )
        chaos = runner._CHAOS
        assert chaos is not None and chaos.permutations > 0
        assert chaos_summary() == (
            f"chaos: {chaos.permutations} perturbed orders (seed 3)"
        )


# ----------------------------------------------------------------------
# Worker crash: deterministic error, no /dev/shm leak
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
class TestWorkerCrashCleanup:
    def test_killed_worker_raises_and_segments_unlink(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "1")
        graph = _random_graph(29, nodes=30, density=0.25)
        plan = build_shard_plan(graph, tau=3, shards=2, seed=0)
        before = _shm_segments()
        pool = ShardWorkerPool(graph, plan.specs, tau=3, workers=2)
        try:
            assert _shm_segments() - before, "expected published segments"
            pool._procs[0].kill()
            pool._procs[0].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died mid-schedule"):
                pool.finish()
        finally:
            pool.close()
        assert _shm_segments() - before == set()

    def test_mid_schedule_kill_through_scheduler(self, monkeypatch):
        """A worker killed mid-schedule still leaves /dev/shm clean.

        The scheduler's ``finally: backend.close()`` owns the unlink;
        the kill is injected through the halo-exchange barrier so the
        schedule is genuinely in flight when the worker dies.
        """
        monkeypatch.setenv("REPRO_SHM", "1")
        graph = _random_graph(31, nodes=30, density=0.25)
        before = _shm_segments()
        real_roundtrip = ShardWorkerPool._roundtrip
        calls = {"n": 0}

        def killing_roundtrip(self, kind, payloads):
            calls["n"] += 1
            if calls["n"] == 3:
                self._procs[0].kill()
                self._procs[0].join(timeout=5.0)
            return real_roundtrip(self, kind, payloads)

        monkeypatch.setattr(ShardWorkerPool, "_roundtrip", killing_roundtrip)
        with pytest.raises(RuntimeError, match="died mid-schedule"):
            sharded_dcc_schedule(
                graph, set(), 3, random.Random(1), shards=2, workers=2
            )
        assert calls["n"] >= 3
        assert _shm_segments() - before == set()

    def test_pool_init_failure_unlinks_published_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "1")
        graph = _random_graph(37, nodes=24, density=0.25)
        plan = build_shard_plan(graph, tau=3, shards=2, seed=0)
        before = _shm_segments()

        def boom(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(runner.multiprocessing, "Process", boom)
        with pytest.raises(OSError, match="no processes"):
            ShardWorkerPool(graph, plan.specs, tau=3, workers=2)
        assert _shm_segments() - before == set()

"""Unit tests for barrier coverage as a confine-coverage instance."""

import pytest

from repro.core.barrier import (
    barrier_exists,
    barrier_strength,
    schedule_barrier,
)
from repro.network.graph import NetworkGraph
from repro.network.topologies import triangulated_grid


def belt(columns=7, rows=4):
    """A triangulated belt with left/right anchor columns."""
    mesh = triangulated_grid(columns, rows)
    left = [r * columns for r in range(rows)]
    right = [r * columns + columns - 1 for r in range(rows)]
    return mesh.graph, left, right


class TestExistence:
    def test_belt_has_barrier(self):
        graph, left, right = belt()
        assert barrier_exists(graph, left, right, gamma=2.0)

    def test_cut_belt_has_none(self):
        graph, left, right = belt(columns=7, rows=4)
        # remove a full column in the middle: the belt is severed
        for r in range(4):
            graph.remove_vertex(r * 7 + 3)
        assert not barrier_exists(graph, left, right, gamma=2.0)

    def test_empty_anchor(self):
        graph, left, right = belt()
        assert not barrier_exists(graph, [], right, gamma=1.0)

    def test_gamma_validation(self):
        graph, left, right = belt()
        with pytest.raises(ValueError):
            barrier_exists(graph, left, right, gamma=2.5)
        with pytest.raises(ValueError):
            barrier_exists(graph, left, right, gamma=0.0)

    def test_overlapping_anchors_trivially_covered(self):
        graph = NetworkGraph([1, 2], [(1, 2)])
        assert barrier_exists(graph, [1], [1, 2], gamma=1.0)


class TestStrength:
    def test_belt_strength_matches_rows(self):
        graph, left, right = belt(columns=7, rows=4)
        result = barrier_strength(graph, left, right, gamma=2.0)
        # a 4-row triangulated belt supports 4 disjoint chains
        assert result.strength == 4
        assert result.provides(4)
        assert not result.provides(5)

    def test_single_path_strength_one(self):
        graph = NetworkGraph(range(5), [(0, 1), (1, 2), (2, 3), (3, 4)])
        result = barrier_strength(graph, [0], [4], gamma=1.0)
        assert result.strength == 1
        assert result.chains == [[0, 1, 2, 3, 4]]

    def test_disconnected_strength_zero(self):
        graph = NetworkGraph(range(4), [(0, 1), (2, 3)])
        result = barrier_strength(graph, [0], [3], gamma=1.0)
        assert result.strength == 0
        assert not result.covered

    def test_chains_are_vertex_disjoint(self):
        graph, left, right = belt(columns=8, rows=5)
        result = barrier_strength(graph, left, right, gamma=1.5)
        seen = set()
        for chain in result.chains:
            assert seen.isdisjoint(chain)
            seen.update(chain)
            # consecutive chain members are communication neighbours
            for a, b in zip(chain, chain[1:]):
                assert graph.has_edge(a, b)


class TestScheduling:
    def test_schedule_activates_k_chains(self):
        graph, left, right = belt(columns=8, rows=5)
        active = schedule_barrier(graph, left, right, gamma=1.5, k=2)
        assert active is not None
        # sparse: a couple of chains, not the whole belt
        assert len(active) < len(graph) / 2
        sub = graph.induced_subgraph(active)
        assert barrier_exists(sub, set(left) & active, set(right) & active, 1.5)

    def test_infeasible_k_returns_none(self):
        graph = NetworkGraph(range(3), [(0, 1), (1, 2)])
        assert schedule_barrier(graph, [0], [2], gamma=1.0, k=2) is None

    def test_k_validation(self):
        graph, left, right = belt()
        with pytest.raises(ValueError):
            schedule_barrier(graph, left, right, gamma=1.0, k=0)

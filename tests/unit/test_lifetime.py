"""Unit tests for energy-aware scheduling and rotation lifetime."""

import random

import pytest

from repro.core.criterion import is_tau_partitionable
from repro.core.lifetime import (
    energy_aware_schedule,
    rotation_simulation,
)
from repro.core.vpt import deletable_vertices
from repro.network.energy import EnergyModel
from repro.network.topologies import triangulated_grid


class TestEnergyAwareSchedule:
    def test_reaches_valid_fixpoint(self):
        mesh = triangulated_grid(7, 7)
        boundary = set(mesh.outer_boundary)
        residual = {v: 1.0 for v in mesh.graph.vertices()}
        result = energy_aware_schedule(
            mesh.graph, boundary, 6, residual, rng=random.Random(0)
        )
        assert deletable_vertices(result.active, 6, exclude=boundary) == []
        assert is_tau_partitionable(result.active, [mesh.outer_boundary], 6)

    def test_low_energy_nodes_rest_first(self):
        """With two redundant apexes, the tired one sleeps."""
        from repro.network.graph import NetworkGraph

        g = NetworkGraph(range(3), [(0, 1), (1, 2), (2, 0)])
        for apex in (3, 4):
            g.add_vertex(apex)
            for v in (0, 1, 2):
                g.add_edge(apex, v)
        residual = {0: 9.0, 1: 9.0, 2: 9.0, 3: 1.0, 4: 9.0}
        result = energy_aware_schedule(
            g, [0, 1, 2], 3, residual, rng=random.Random(1)
        )
        assert 3 in result.removed  # the tired apex rests

    def test_missing_protected_raises(self):
        mesh = triangulated_grid(4, 4)
        with pytest.raises(KeyError):
            energy_aware_schedule(mesh.graph, [999], 4, {})


class TestRotation:
    @pytest.fixture
    def mesh(self):
        return triangulated_grid(7, 7)

    def test_rotation_beats_always_on(self, mesh):
        model = EnergyModel(battery_capacity=8.0, active_cost=1.0, sleep_cost=0.1)
        report = rotation_simulation(
            mesh.graph,
            [mesh.outer_boundary],
            mesh.outer_boundary,
            tau=6,
            model=model,
            rng=random.Random(2),
        )
        assert report.shifts_survived >= report.always_on_shifts
        assert report.lifetime_gain >= 1.0
        assert report.cause_of_death in (
            "criterion lost",
            "protected node depleted",
            "max shifts reached",
        )

    def test_mortal_boundary_ends_at_capacity(self, mesh):
        model = EnergyModel(battery_capacity=5.0, active_cost=1.0, sleep_cost=0.0)
        report = rotation_simulation(
            mesh.graph,
            [mesh.outer_boundary],
            mesh.outer_boundary,
            tau=6,
            model=model,
            rng=random.Random(3),
            boundary_immortal=False,
        )
        # boundary is always active, so it dies exactly at capacity
        assert report.shifts_survived == model.always_on_shifts
        assert report.cause_of_death == "protected node depleted"

    def test_max_shifts_cap(self, mesh):
        model = EnergyModel(battery_capacity=100.0, active_cost=1.0)
        report = rotation_simulation(
            mesh.graph,
            [mesh.outer_boundary],
            mesh.outer_boundary,
            tau=6,
            model=model,
            rng=random.Random(4),
            max_shifts=3,
        )
        assert report.shifts_survived == 3
        assert report.cause_of_death == "max shifts reached"

    def test_records_and_formatting(self, mesh):
        model = EnergyModel(battery_capacity=4.0, active_cost=1.0, sleep_cost=0.1)
        report = rotation_simulation(
            mesh.graph,
            [mesh.outer_boundary],
            mesh.outer_boundary,
            tau=6,
            model=model,
            rng=random.Random(5),
            record_every=2,
        )
        assert report.records
        table = report.format_table()
        assert "Lifetime:" in table
        assert "shift" in table

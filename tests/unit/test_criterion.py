"""Unit tests for the cycle-partition coverage criterion."""

import pytest

from repro.core.criterion import (
    boundary_edge_sum,
    cycle_edges,
    find_cycle_partition,
    is_tau_partitionable,
    partition_is_valid,
    verify_confine_coverage,
)
from repro.cycles.horton import ShortCycleSpan


class TestCycleEdges:
    def test_closing_edge_implicit(self):
        assert sorted(cycle_edges([0, 1, 2])) == [(0, 1), (0, 2), (1, 2)]

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            cycle_edges([0, 1])


class TestBoundaryEdgeSum:
    def test_single_cycle(self):
        assert sorted(boundary_edge_sum([[0, 1, 2]])) == [(0, 1), (0, 2), (1, 2)]

    def test_shared_edges_cancel(self):
        # two triangles sharing edge (0,2): the shared edge disappears
        total = boundary_edge_sum([[0, 1, 2], [0, 2, 3]])
        assert (0, 2) not in total
        assert sorted(total) == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_identical_cycles_cancel_entirely(self):
        assert boundary_edge_sum([[0, 1, 2], [0, 1, 2]]) == []


class TestPartitionability:
    def test_grid_boundary(self, grid5):
        assert is_tau_partitionable(grid5.graph, [grid5.outer_boundary], 4)
        assert not is_tau_partitionable(grid5.graph, [grid5.outer_boundary], 3)

    def test_triangulated_grid_boundary(self, trigrid6):
        assert is_tau_partitionable(trigrid6.graph, [trigrid6.outer_boundary], 3)

    def test_mobius_is_3_partitionable(self, mobius):
        assert is_tau_partitionable(mobius.graph, [mobius.outer_boundary], 3)

    def test_annulus_multi_boundary(self, annulus):
        cycles = [annulus.outer_boundary, annulus.inner_boundary]
        assert is_tau_partitionable(annulus.graph, cycles, 3)
        # with only the outer boundary the inner hole is a genuine void
        assert not is_tau_partitionable(annulus.graph, [annulus.outer_boundary], 3)

    def test_monotone_in_tau(self, grid5):
        results = [
            is_tau_partitionable(grid5.graph, [grid5.outer_boundary], tau)
            for tau in range(3, 8)
        ]
        # once partitionable, larger tau stays partitionable
        assert results == sorted(results)

    def test_requires_boundary(self, grid5):
        with pytest.raises(ValueError):
            is_tau_partitionable(grid5.graph, [], 4)

    def test_prebuilt_span_reuse(self, grid5):
        span = ShortCycleSpan(grid5.graph, 4)
        assert is_tau_partitionable(
            grid5.graph, [grid5.outer_boundary], 4, span=span
        )

    def test_mismatched_span_rejected(self, grid5):
        span = ShortCycleSpan(grid5.graph, 5)
        with pytest.raises(ValueError):
            is_tau_partitionable(grid5.graph, [grid5.outer_boundary], 4, span=span)

    def test_boundary_edge_missing_from_subgraph(self, grid5):
        # delete a boundary edge: the boundary cycle no longer exists there
        thinner = grid5.graph.copy()
        a, b = grid5.outer_boundary[0], grid5.outer_boundary[1]
        thinner.remove_edge(a, b)
        assert not is_tau_partitionable(thinner, [grid5.outer_boundary], 4)


class TestVerdict:
    def test_verdict_fields(self, grid5):
        verdict = verify_confine_coverage(grid5.graph, [grid5.outer_boundary], 4)
        assert verdict.achieves_confine_coverage
        assert verdict.tau == 4
        assert verdict.short_cycle_rank == verdict.cycle_space_rank == 16

    def test_failed_verdict(self, grid5):
        verdict = verify_confine_coverage(grid5.graph, [grid5.outer_boundary], 3)
        assert not verdict.achieves_confine_coverage
        assert verdict.short_cycle_rank == 0  # grid has no triangles


class TestExplicitPartition:
    def test_partition_of_grid_boundary(self, grid5):
        partition = find_cycle_partition(grid5.graph, [grid5.outer_boundary], 4)
        assert partition is not None
        assert all(c.length <= 4 for c in partition)
        assert partition_is_valid(
            grid5.graph, [grid5.outer_boundary], partition, 4
        )

    def test_partition_of_mobius_boundary(self, mobius):
        partition = find_cycle_partition(mobius.graph, [mobius.outer_boundary], 3)
        assert partition is not None
        assert partition_is_valid(
            mobius.graph, [mobius.outer_boundary], partition, 3
        )

    def test_no_partition_returns_none(self, grid5):
        assert find_cycle_partition(grid5.graph, [grid5.outer_boundary], 3) is None

    def test_partition_invalid_when_too_long(self, grid5):
        partition = find_cycle_partition(grid5.graph, [grid5.outer_boundary], 4)
        assert not partition_is_valid(
            grid5.graph, [grid5.outer_boundary], partition, 3
        )

    def test_partition_with_missing_edges_is_none(self, grid5):
        thinner = grid5.graph.copy()
        a, b = grid5.outer_boundary[0], grid5.outer_boundary[1]
        thinner.remove_edge(a, b)
        assert find_cycle_partition(thinner, [grid5.outer_boundary], 4) is None

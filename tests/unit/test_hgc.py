"""Unit tests for the HGC baseline (verification and scheduling)."""

import math
import random

import pytest

from repro.homology.hgc import (
    HGC_MAX_SENSING_RATIO,
    hgc_schedule,
    hgc_verify,
)
from repro.network.graph import NetworkGraph


class TestVerification:
    def test_wheel_verifies(self, wheel8):
        verification = hgc_verify(wheel8, [list(range(8))])
        assert verification.verified
        assert verification.relative_betti_1 == 0
        assert verification.num_triangles == 8

    def test_triangulated_grid_verifies(self, trigrid6):
        assert hgc_verify(trigrid6.graph, [trigrid6.outer_boundary]).verified

    def test_square_grid_fails(self, grid5):
        # no triangles at all: every inner square is a potential hole
        assert not hgc_verify(grid5.graph, [grid5.outer_boundary]).verified

    def test_mobius_false_negative(self, mobius):
        """The paper's Figure 1: covered network rejected by HGC."""
        assert not hgc_verify(mobius.graph, [mobius.outer_boundary]).verified

    def test_sensing_ratio_constant(self):
        assert HGC_MAX_SENSING_RATIO == pytest.approx(math.sqrt(3))


class TestScheduling:
    def test_wheel_hub_removed(self, wheel8):
        result = hgc_schedule(wheel8, [list(range(8))], range(8))
        # the hub is needed: without it no triangles remain
        assert result.removed == []
        assert result.num_active == 9

    def test_redundant_apex_removed(self):
        # two stacked apexes over a triangle: one is redundant
        g = NetworkGraph(range(3), [(0, 1), (1, 2), (2, 0)])
        for apex in (3, 4):
            g.add_vertex(apex)
            for v in (0, 1, 2):
                g.add_edge(apex, v)
        result = hgc_schedule(g, [[0, 1, 2]], [0, 1, 2], rng=random.Random(0))
        assert len(result.removed) >= 1
        assert hgc_verify(result.active, [[0, 1, 2]]).verified

    def test_triangulated_grid_keeps_verification(self, trigrid6):
        boundary = trigrid6.outer_boundary
        result = hgc_schedule(
            trigrid6.graph, [boundary], boundary, rng=random.Random(1)
        )
        assert hgc_verify(result.active, [boundary]).verified
        assert result.initial_betti_1 == result.final_betti_1 == 0
        assert result.verifications > len(result.removed)

    def test_preserve_mode_on_unverified_network(self, grid5):
        boundary = grid5.outer_boundary
        initial = hgc_verify(grid5.graph, [boundary]).relative_betti_1
        result = hgc_schedule(
            grid5.graph, [boundary], boundary, rng=random.Random(2)
        )
        assert result.initial_betti_1 == initial
        assert result.final_betti_1 == initial

    def test_require_verified_raises(self, grid5):
        with pytest.raises(ValueError):
            hgc_schedule(
                grid5.graph,
                [grid5.outer_boundary],
                grid5.outer_boundary,
                require_verified=True,
            )

    def test_protected_nodes_survive(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = hgc_schedule(
            trigrid6.graph,
            [trigrid6.outer_boundary],
            boundary,
            rng=random.Random(3),
        )
        assert boundary <= result.coverage_set

    def test_input_graph_untouched(self, wheel8):
        before = wheel8.num_edges()
        hgc_schedule(wheel8, [list(range(8))], range(8))
        assert wheel8.num_edges() == before


class TestHGCvsDCC:
    def test_hgc_never_sparser_than_dcc_tau3_on_disk(self, trigrid6):
        """HGC's criterion is strictly stronger, so DCC saves nodes."""
        from repro.core.scheduler import dcc_schedule

        boundary = trigrid6.outer_boundary
        hgc = hgc_schedule(
            trigrid6.graph, [boundary], boundary, rng=random.Random(4)
        )
        dcc = dcc_schedule(
            trigrid6.graph, set(boundary), 6, rng=random.Random(4)
        )
        assert dcc.num_active <= hgc.num_active

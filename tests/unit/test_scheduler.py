"""Unit tests for the DCC scheduler (maximal vertex deletion + MIS)."""

import random

import pytest

from repro.core.criterion import is_tau_partitionable
from repro.core.scheduler import (
    dcc_schedule,
    is_non_redundant,
    mis_by_distance,
)
from repro.core.vpt import deletable_vertices
from repro.network.topologies import wheel_graph


class TestMIS:
    def test_pairwise_separation(self, trigrid6):
        rng = random.Random(0)
        candidates = trigrid6.graph.vertices()
        selected = mis_by_distance(trigrid6.graph, candidates, 3, rng)
        for i, u in enumerate(selected):
            dist = trigrid6.graph.bfs_distances(u)
            for v in selected[i + 1:]:
                assert dist[v] >= 3

    def test_empty_candidates(self, trigrid6):
        assert mis_by_distance(trigrid6.graph, [], 3, random.Random(0)) == []

    def test_single_candidate_selected(self, trigrid6):
        assert mis_by_distance(trigrid6.graph, [14], 3, random.Random(0)) == [14]

    def test_maximality_every_candidate_near_winner(self, trigrid6):
        rng = random.Random(1)
        candidates = trigrid6.graph.vertices()
        m = 4
        selected = set(mis_by_distance(trigrid6.graph, candidates, m, rng))
        for v in candidates:
            dist = trigrid6.graph.bfs_distances(v, cutoff=m - 1)
            assert selected & set(dist), f"candidate {v} has no nearby winner"


class TestSchedule:
    def test_wheel_hub_removed_at_tau_equal_rim(self):
        wheel = wheel_graph(6)
        rim = list(range(6))
        result = dcc_schedule(wheel, rim, 6, rng=random.Random(0))
        assert result.removed == [6]
        assert result.num_active == 6

    def test_wheel_hub_kept_at_small_tau(self):
        wheel = wheel_graph(6)
        result = dcc_schedule(wheel, range(6), 5, rng=random.Random(0))
        assert result.removed == []

    def test_protected_nodes_survive(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = dcc_schedule(trigrid6.graph, boundary, 6, rng=random.Random(2))
        assert boundary <= result.coverage_set

    def test_missing_protected_raises(self, trigrid6):
        with pytest.raises(KeyError):
            dcc_schedule(trigrid6.graph, [999], 4)

    def test_unknown_mode_rejected(self, trigrid6):
        with pytest.raises(ValueError):
            dcc_schedule(trigrid6.graph, [], 4, mode="turbo")

    def test_fixpoint_no_deletable_left(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = dcc_schedule(trigrid6.graph, boundary, 6, rng=random.Random(3))
        assert deletable_vertices(result.active, 6, exclude=boundary) == []

    def test_partitionability_preserved(self, trigrid6):
        boundary = trigrid6.outer_boundary
        assert is_tau_partitionable(trigrid6.graph, [boundary], 6)
        result = dcc_schedule(
            trigrid6.graph, set(boundary), 6, rng=random.Random(4)
        )
        assert is_tau_partitionable(result.active, [boundary], 6)

    def test_sequential_mode_matches_quality(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        par = dcc_schedule(trigrid6.graph, boundary, 6, rng=random.Random(5))
        seq = dcc_schedule(
            trigrid6.graph, boundary, 6, rng=random.Random(5), mode="sequential"
        )
        # both reach a fixpoint; sizes may differ slightly but not wildly
        assert deletable_vertices(seq.active, 6, exclude=boundary) == []
        assert abs(par.num_active - seq.num_active) <= 5

    def test_result_accounting(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = dcc_schedule(trigrid6.graph, boundary, 6, rng=random.Random(6))
        assert result.num_removed == len(result.removed)
        assert result.num_active + result.num_removed == len(trigrid6.graph)
        assert sum(result.deletions_per_round) == result.num_removed
        assert result.rounds == len(result.deletions_per_round)
        assert result.deletability_tests > 0

    def test_input_graph_untouched(self, trigrid6):
        before = trigrid6.graph.num_edges()
        dcc_schedule(
            trigrid6.graph, set(trigrid6.outer_boundary), 6, rng=random.Random(7)
        )
        assert trigrid6.graph.num_edges() == before


class TestNonRedundancy:
    def test_wheel_result_non_redundant(self):
        wheel = wheel_graph(6)
        rim = list(range(6))
        result = dcc_schedule(wheel, rim, 6, rng=random.Random(0))
        assert is_non_redundant(result.active, [rim], 6, rim)

    def test_wheel_with_hub_is_redundant(self):
        wheel = wheel_graph(6)
        rim = list(range(6))
        # the hub can be spared, so the full wheel is redundant for tau=6
        assert not is_non_redundant(wheel, [rim], 6, rim)

    def test_unpartitionable_graph_is_not_a_coverage_set(self, grid5):
        assert not is_non_redundant(
            grid5.graph, [grid5.outer_boundary], 3, grid5.outer_boundary
        )

"""Unit tests for the geometric coverage referee."""


import pytest

from repro.geometry.coverage_eval import (
    coverage_fraction,
    coverage_grid,
    evaluate_coverage,
)
from repro.network.deployment import Rectangle


@pytest.fixture
def unit_target():
    return Rectangle(0.0, 0.0, 4.0, 4.0)


class TestCoverageGrid:
    def test_full_cover_by_big_disk(self, unit_target):
        covered, xs, ys = coverage_grid([(2.0, 2.0)], 4.0, unit_target, 40)
        assert covered.all()

    def test_no_nodes_nothing_covered(self, unit_target):
        covered, __, __ = coverage_grid([], 1.0, unit_target, 20)
        assert not covered.any()

    def test_resolution_validation(self, unit_target):
        with pytest.raises(ValueError):
            coverage_grid([], 1.0, unit_target, 1)


class TestEvaluateCoverage:
    def test_blanket_report(self, unit_target):
        report = evaluate_coverage([(2.0, 2.0)], 4.0, unit_target, 40)
        assert report.is_blanket
        assert report.covered_fraction == pytest.approx(1.0)
        assert report.max_hole_diameter == 0.0
        assert report.total_hole_area == 0.0

    def test_single_central_hole(self, unit_target):
        # four corner disks leave an uncovered pocket in the middle
        corners = [(0, 0), (4, 0), (0, 4), (4, 4)]
        report = evaluate_coverage(corners, 2.4, unit_target, 80)
        assert not report.is_blanket
        assert len(report.holes) == 1
        hole = report.holes[0]
        # the central pocket is around (2,2); measured diameter positive
        assert hole.diameter > 0
        assert hole.area > 0

    def test_hole_diameter_overestimates_raster(self, unit_target):
        """The half-cell slack means raster error cannot shrink holes."""
        corners = [(0, 0), (4, 0), (0, 4), (4, 4)]
        coarse = evaluate_coverage(corners, 2.4, unit_target, 40)
        fine = evaluate_coverage(corners, 2.4, unit_target, 160)
        assert coarse.max_hole_diameter >= fine.max_hole_diameter * 0.9

    def test_two_disjoint_holes(self):
        target = Rectangle(0, 0, 10, 2)
        # cover the middle band only: holes on the left and right
        nodes = [(5.0, 1.0)]
        report = evaluate_coverage(nodes, 2.2, target, 100)
        assert len(report.holes) == 2

    def test_covered_fraction_monotone_in_rs(self, unit_target):
        nodes = [(1.0, 1.0), (3.0, 3.0)]
        fractions = [
            coverage_fraction(nodes, rs, unit_target, 50)
            for rs in (0.5, 1.0, 2.0, 4.0)
        ]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

"""The CSR kernel: compact-adjacency primitives against the dict oracle.

Every primitive the kernel fast-paths (BFS distances, hop balls,
punctured balls, signatures, span verdicts) has a dict-based reference
implementation that stays in the tree as the oracle; these tests pin
the kernel to it, including across incremental mutations and on the
non-monotone slot path (vertices added out of id order).
"""

import random

import pytest

from repro.cycles.horton import ShortCycleSpan
from repro.network.graph import NetworkGraph
from repro.topology import LocalTopologyEngine


def _random_graph(seed, n=24, p=0.25):
    rng = random.Random(seed)
    g = NetworkGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def _dict_ball(graph, v, radius):
    return frozenset(graph.bfs_distances(v, cutoff=radius))


def test_csr_mirror_tracks_mutations():
    g = _random_graph(3)
    csr = g.csr()
    csr.delete_vertex(5)
    csr.delete_edge(*next(iter(g.edges())))
    csr.add_vertex(100)
    csr.add_edge(100, 7)
    assert g.csr() is csr  # still in lock-step, no rebuild
    for v in g.vertices():
        want = g.bfs_distances(v)
        got = csr.bfs_distances(v)
        assert got == want


def test_out_of_band_mutation_triggers_rebuild():
    g = _random_graph(4)
    csr = g.csr()
    g.remove_vertex(2)  # bypasses the mirror
    rebuilt = g.csr()
    assert rebuilt is not csr
    assert 2 not in rebuilt.index


def test_ball_primitives_match_dict_bfs():
    g = _random_graph(5)
    csr = g.csr()
    for v in g.vertices():
        for radius in (1, 2, 3):
            ball = csr.ball_ids(v, radius)
            assert ball == _dict_ball(g, v, radius)
            slots = csr.punctured_ball_slots(v, radius)
            assert csr.index[v] not in slots
            assert frozenset(csr.ids[i] for i in slots) == ball - {v}


def test_ball_intersects_agrees_with_ball_ids():
    g = _random_graph(6)
    csr = g.csr()
    rng = random.Random(0)
    for v in g.vertices():
        blockers = {u for u in g.vertices() if rng.random() < 0.15}
        hit, _ = csr.ball_intersects(v, 2, blockers)
        assert hit == (not blockers.isdisjoint(csr.ball_ids(v, 2)))


def test_signatures_match_subgraph_view():
    g = _random_graph(7)
    csr = g.csr()
    rng = random.Random(1)
    for _ in range(10):
        members_ids = sorted(
            v for v in g.vertices() if rng.random() < 0.5
        )
        view_sig = g.subgraph_view(frozenset(members_ids)).signature()
        slots = csr.member_slots(members_ids)
        assert csr.subgraph_signature(slots) == view_sig
        mrows, sig = csr.member_rows_signature(slots)
        assert sig == view_sig
        for slot in slots:
            assert mrows[slot] == [j for j in csr.adj[slot] if j in set(slots)]


def test_signatures_match_on_non_monotone_slots():
    g = NetworkGraph([10, 20, 30, 40])
    g.add_edge(10, 20)
    g.add_edge(20, 30)
    csr = g.csr()
    csr.add_vertex(15)  # id between existing ids -> slot order != id order
    csr.add_edge(15, 30)
    csr.add_edge(15, 10)
    assert not csr.monotone_ids
    members_ids = [10, 15, 20, 30]
    view_sig = g.subgraph_view(frozenset(members_ids)).signature()
    slots = csr.member_slots(members_ids)
    assert csr.subgraph_signature(slots) == view_sig
    _, sig = csr.member_rows_signature(slots)
    assert sig == view_sig


@pytest.mark.parametrize("tau", [3, 4, 5, 6])
def test_span_connected_verdict_matches_oracle(tau):
    g = _random_graph(8, n=18, p=0.3)
    csr = g.csr()
    rng = random.Random(2)
    for _ in range(12):
        members_ids = frozenset(v for v in g.vertices() if rng.random() < 0.6)
        if not members_ids:
            continue
        view = g.subgraph_view(members_ids)
        want = view.is_connected() and ShortCycleSpan(view, tau).spans_cycle_space()
        slots = csr.member_slots(members_ids)
        assert csr.span_connected_verdict(slots, tau) == want


def test_engine_kernel_matches_oracle_across_deletions():
    g = _random_graph(9, n=30)
    kernel_engine = LocalTopologyEngine(g.copy(), 4, use_kernel=True)
    oracle_engine = LocalTopologyEngine(g.copy(), 4, use_kernel=False)
    rng = random.Random(3)
    for _ in range(6):
        for v in sorted(kernel_engine.graph.vertices()):
            assert kernel_engine.deletable(v) == oracle_engine.deletable(v)
        alive = sorted(kernel_engine.graph.vertices())
        if len(alive) <= 4:
            break
        victim = rng.choice(alive)
        kernel_engine.delete_vertex(victim)
        oracle_engine.delete_vertex(victim)

"""Unit tests for the observability layer: tracer, metrics, export.

The layer's contracts, each pinned here:

* spans record at *exit* in child-before-parent order (the nesting
  invariant every consumer relies on);
* the ring buffer drops the *oldest* spans and counts the drops;
* the null tracer is free-ish and structurally inert;
* metric merging is associative and submission-ordered;
* run-reports are schema-stable and, after :func:`strip_volatile`,
  deterministic.
"""

import json
import time

import pytest

from repro.obs import (
    ATTRIBUTION_SCHEMA,
    MetricsRegistry,
    NULL_TRACER,
    RUN_REPORT_SCHEMA,
    SchemaError,
    TRACE_SCHEMA,
    Tracer,
    attribute_spans,
    attribution_from_tracer,
    attribution_summary,
    build_run_report,
    current_metrics,
    current_tracer,
    lane_timeline_from_tracer,
    load_run_report,
    merge_json_entry,
    observe,
    phase_aggregates,
    profile_summary,
    read_trace_jsonl,
    render_lane_timeline,
    render_timeline,
    strip_volatile,
    timeline_from_tracer,
    traced,
    validate_run_report,
    write_run_report,
    write_trace_jsonl,
)
from repro.obs.tracer import Span
from repro.runtime.stats import RuntimeStats
from repro.topology import TopologyCounters


def _span(name, depth, wall_s, start_s=0.0, cpu_s=0.0, **attrs):
    return Span(name, depth, start_s, wall_s, cpu_s, attrs)


class TestTracer:
    def test_exit_order_nesting(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
            with tracer.trace("inner"):
                pass
        names = [(s.name, s.depth) for s in tracer.spans()]
        assert names == [("inner", 1), ("inner", 1), ("outer", 0)]

    def test_attrs_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.trace("phase", fixed=1) as handle:
            handle.set(discovered=2)
        (span,) = tracer.spans()
        assert span.attrs == {"fixed": 1, "discovered": 2}

    def test_wall_time_measures_the_block(self):
        tracer = Tracer()
        with tracer.trace("sleep"):
            time.sleep(0.01)
        (span,) = tracer.spans()
        assert span.wall_s >= 0.009

    def test_depth_property_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.trace("a"):
            assert tracer.depth == 1
            with tracer.trace("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.add_span(f"s{i}", 0.0)
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2
        assert tracer.last_span().name == "s4"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_add_span_records_at_current_depth(self):
        tracer = Tracer()
        with tracer.trace("round"):
            tracer.add_span("leaf", 0.5, cpu_s=0.25, round=3)
        leaf, parent = tracer.spans()
        assert (leaf.name, leaf.depth, leaf.wall_s, leaf.cpu_s) == (
            "leaf",
            1,
            0.5,
            0.25,
        )
        assert leaf.attrs == {"round": 3}
        assert parent.depth == 0

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.add_span(f"s{i}", 0.0)
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.dropped == 0
        assert tracer.last_span() is None

    def test_export_import_round_trip_offsets_depth(self):
        worker = Tracer()
        with worker.trace("work", task=1):
            worker.add_span("step", 0.1)
        payload = worker.export_spans()

        merged = Tracer()
        with merged.trace("fanout.task"):
            merged.import_spans(payload)
        spans = merged.spans()
        # Imported spans nest under the open fanout.task span.
        assert [(s.name, s.depth) for s in spans] == [
            ("step", 2),
            ("work", 1),
            ("fanout.task", 0),
        ]
        assert spans[1].attrs == {"task": 1}

    def test_import_accumulates_dropped(self):
        source = Tracer(capacity=1)
        source.add_span("a", 0.0)
        source.add_span("b", 0.0)
        sink = Tracer()
        sink.import_spans(source.export_spans())
        assert sink.dropped == 1


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.trace("anything", key=1) as handle:
            handle.set(more=2)
        NULL_TRACER.add_span("leaf", 1.0)
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.last_span() is None
        assert NULL_TRACER.export_spans() == ([], 0)

    def test_shared_handle(self):
        # One no-op handle is shared; trace() allocates nothing per call.
        assert NULL_TRACER.trace("a") is NULL_TRACER.trace("b")


class TestAmbientObservation:
    def test_defaults(self):
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None

    def test_observe_installs_and_restores(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        with observe(tracer, metrics):
            assert current_tracer() is tracer
            assert current_metrics() is metrics
            inner = Tracer()
            with observe(inner):
                assert current_tracer() is inner
                assert current_metrics() is None
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None

    def test_observe_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with observe(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER

    def test_traced_decorator(self):
        @traced("unit.fn", layer="test")
        def fn(x):
            return x + 1

        # Disabled ambient tracer: plain call, nothing recorded.
        assert fn(1) == 2
        tracer = Tracer()
        with observe(tracer):
            assert fn(2) == 3
        (span,) = tracer.spans()
        assert span.name == "unit.fn"
        assert span.attrs == {"layer": "test"}

    def test_traced_default_name(self):
        @traced()
        def named_fn():
            return None

        tracer = Tracer()
        with observe(tracer):
            named_fn()
        assert "named_fn" in tracer.spans()[0].name


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        assert reg.counter("c").value == 5
        assert reg.gauge("g").value == 2.5
        assert reg.histogram("h").count == 2
        assert reg.names() == ["c", "g", "h"]
        assert "c" in reg and "missing" not in reg
        assert len(reg) == 3

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError):
            reg.observe("x", 1.0)
        with pytest.raises(TypeError):
            reg.set_gauge("x", 1.0)

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        for v in (4.0, 1.0, 3.0, 2.0):
            reg.observe("h", v)
        out = reg.as_dict()["h"]
        assert out["min"] == 1.0 and out["max"] == 4.0
        assert out["mean"] == 2.5 and out["total"] == 10.0
        assert out["p50"] in (2.0, 3.0)

    def test_volatile_flag_sticks(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.observe("h", 2.0, volatile=True)
        assert reg.histogram("h").volatile is True

    def test_merge_is_associative(self):
        def make(seed_values):
            reg = MetricsRegistry()
            for v in seed_values:
                reg.inc("count", v)
                reg.observe("dist", float(v))
            reg.set_gauge("last", seed_values[-1])
            return reg

        a, b, c = make([1, 2]), make([3]), make([4, 5])
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        left.merge(c)

        bc = make([3])
        bc.merge(make([4, 5]))
        right = MetricsRegistry()
        right.merge(make([1, 2]))
        right.merge(bc)
        assert left.as_dict() == right.as_dict()

    def test_merge_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x")
        b.observe("x", 1.0)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_gauge_merge_is_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.gauge("g")  # present but never set: must not clobber
        a.merge(b)
        assert a.gauge("g").value == 1.0
        c = MetricsRegistry()
        c.set_gauge("g", 9.0)
        a.merge(c)
        assert a.gauge("g").value == 9.0

    def test_payload_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7.0)
        reg.observe("h", 1.5, volatile=True)
        other = MetricsRegistry()
        other.merge_payload(reg.to_payload())
        assert other.as_dict() == reg.as_dict()

    def test_payload_merge_matches_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c")
        a.observe("h", 1.0)
        b.inc("c", 2)
        b.observe("h", 2.0)
        via_merge = MetricsRegistry()
        via_merge.merge(a)
        via_merge.merge(b)
        via_payload = MetricsRegistry()
        via_payload.merge_payload(a.to_payload())
        via_payload.merge_payload(b.to_payload())
        assert via_merge.as_dict() == via_payload.as_dict()

    def test_absorb_topology_skips_zeros(self):
        reg = MetricsRegistry()
        reg.absorb_topology(TopologyCounters(deletability_tests=3))
        assert reg.names() == ["topology.deletability_tests"]
        assert reg.counter("topology.deletability_tests").value == 3

    def test_absorb_runtime(self):
        stats = RuntimeStats()
        stats.rounds = 2
        stats.record_send("hello", deliveries=3)
        stats.topology.span_computations = 5
        reg = MetricsRegistry()
        reg.absorb_runtime(stats)
        out = reg.as_dict()
        assert out["runtime.rounds"]["value"] == 2
        assert out["runtime.messages_sent"]["value"] == 1
        assert out["runtime.messages_delivered"]["value"] == 3
        assert out["runtime.messages_by_kind.hello"]["value"] == 1
        assert out["topology.span_computations"]["value"] == 5


class TestRuntimeStatsSemantics:
    def test_record_send_counts_broadcasts_and_receptions(self):
        stats = RuntimeStats()
        stats.record_send("probe", deliveries=4)
        stats.record_send("probe", deliveries=0, count=2)
        assert stats.messages_sent == 3
        assert stats.messages_delivered == 4
        assert stats.messages_by_kind == {"probe": 3}

    def test_summary_omits_empty_breakdown(self):
        stats = RuntimeStats()
        assert "[]" not in stats.summary()
        stats.record_send("probe", deliveries=1)
        assert "[probe=1]" in stats.summary()


class TestPhaseAggregates:
    def test_exclusive_time_subtracts_children(self):
        spans = [
            _span("child", 1, 0.3),
            _span("child", 1, 0.2),
            _span("parent", 0, 1.0),
        ]
        out = phase_aggregates(spans)
        assert out["parent"]["calls"] == 1
        assert out["parent"]["wall_s"] == pytest.approx(1.0)
        assert out["parent"]["exclusive_s"] == pytest.approx(0.5)
        assert out["child"]["calls"] == 2
        assert out["child"]["exclusive_s"] == pytest.approx(0.5)

    def test_deep_nesting_attributes_to_direct_parent(self):
        spans = [
            _span("leaf", 2, 0.1),
            _span("mid", 1, 0.4),
            _span("root", 0, 1.0),
        ]
        out = phase_aggregates(spans)
        assert out["mid"]["exclusive_s"] == pytest.approx(0.3)
        assert out["root"]["exclusive_s"] == pytest.approx(0.6)

    def test_names_sorted(self):
        spans = [_span("b", 0, 0.1), _span("a", 0, 0.1)]
        assert list(phase_aggregates(spans)) == ["a", "b"]


class TestExport:
    def test_trace_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.trace("outer", key="v"):
            tracer.add_span("inner", 0.25)
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(tracer, str(path))
        assert count == 2
        header, records = read_trace_jsonl(str(path))
        assert header == {"schema": TRACE_SCHEMA, "spans": 2, "dropped": 0}
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[1]["attrs"] == {"key": "v"}

    def test_read_trace_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "nope"}) + "\n")
        with pytest.raises(SchemaError):
            read_trace_jsonl(str(path))

    def test_build_run_report_shape(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        tracer.add_span("phase", 0.1)
        metrics.inc("c")
        report = build_run_report("unit", tracer, metrics, meta={"seed": 0})
        assert report["schema"] == RUN_REPORT_SCHEMA
        assert set(report) == {
            "schema",
            "name",
            "meta",
            "phases",
            "metrics",
            "spans_dropped",
        }
        assert report["meta"] == {"seed": 0}
        validate_run_report(report)

    def test_validate_rejects_drift(self):
        tracer = Tracer()
        tracer.add_span("phase", 0.1)
        report = build_run_report("unit", tracer)
        validate_run_report(report)
        for mutate in (
            lambda r: r.pop("phases"),
            lambda r: r.update(schema="repro.run_report/v2"),
            lambda r: r["phases"]["phase"].pop("calls"),
            lambda r: r.update(metrics={"m": {"type": "mystery"}}),
            lambda r: r.update(spans_dropped="0"),
        ):
            broken = json.loads(json.dumps(report))
            mutate(broken)
            with pytest.raises(SchemaError):
                validate_run_report(broken)

    def test_write_and_load_run_report(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("phase", 0.1)
        report = build_run_report("unit", tracer)
        path = tmp_path / "report.json"
        write_run_report(report, str(path))
        assert load_run_report(str(path)) == report

    def test_strip_volatile(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        tracer.add_span("phase", 0.123)
        metrics.observe("walls", 0.5, volatile=True)
        metrics.observe("sizes", 7.0)
        metrics.inc("count")
        report = build_run_report(
            "unit", tracer, metrics, meta={"seed": 0, "workers": 4, "wall_s": 1.0}
        )
        stripped = strip_volatile(report)
        assert stripped["meta"] == {"seed": 0}
        assert stripped["phases"] == {"phase": {"calls": 1}}
        assert stripped["metrics"]["walls"] == {
            "type": "histogram",
            "count": 1,
            "volatile": True,
        }
        # Deterministic metrics keep their full statistics.
        assert stripped["metrics"]["sizes"]["mean"] == 7.0
        assert stripped["metrics"]["count"] == {"type": "counter", "value": 1}
        # The original report is untouched.
        assert report["meta"]["workers"] == 4

    def test_merge_json_entry(self, tmp_path):
        path = tmp_path / "merged.json"
        merge_json_entry(path, "a", {"x": 1})
        merge_json_entry(path, "b", {"y": 2})
        merge_json_entry(path, "a", {"x": 3})
        data = json.loads(path.read_text())
        assert data == {"a": {"x": 3}, "b": {"y": 2}}

    def test_merge_json_entry_recovers_from_garbage(self, tmp_path):
        path = tmp_path / "merged.json"
        path.write_text("not json")
        merge_json_entry(path, "a", {"x": 1})
        assert json.loads(path.read_text()) == {"a": {"x": 1}}

    def test_profile_summary(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        text = profile_summary(tracer)
        assert "outer" in text and "inner" in text
        assert "top" in text
        assert profile_summary(Tracer()) == "profile: no spans recorded"

    def test_profile_summary_reports_drops(self):
        tracer = Tracer(capacity=1)
        tracer.add_span("a", 0.1)
        tracer.add_span("b", 0.1)
        assert "dropped" in profile_summary(tracer)


class TestTimeline:
    def test_round_attributed_spans_render(self):
        tracer = Tracer()
        for rnd in range(3):
            tracer.add_span("scheduler.round", 0.1 * (rnd + 1), round=rnd)
            tracer.add_span(
                "runtime.round", 0.05, round=rnd, messages=10 * (rnd + 1)
            )
        canvas = timeline_from_tracer(tracer, title="unit")
        svg = canvas.render()
        assert svg.startswith("<?xml") or "<svg" in svg
        assert "scheduler.round" in svg
        assert "messages/round" in svg

    def test_no_round_spans_still_renders(self):
        canvas = render_timeline([_span("loose", 0, 0.1)])
        assert "no round-attributed spans" in canvas.render()


# ----------------------------------------------------------------------
# v2 aligned payloads
# ----------------------------------------------------------------------
class TestAlignedPayload:
    def test_export_payload_shape(self):
        tracer = Tracer()
        tracer.add_span("work", 0.1)
        payload = tracer.export_payload(process="shard1")
        assert payload["version"] == 2
        assert payload["process"] == "shard1"
        assert payload["dropped"] == 0
        assert len(payload["spans"]) == 1
        assert isinstance(payload["epoch_unix"], float)

    def test_import_aligns_epochs_and_tags_proc(self):
        worker = Tracer()
        worker.add_span("shard.subround", 0.1, shard=0, round=0, subround=0)
        payload = worker.export_payload(process="shard0")
        worker_start = payload["spans"][0][2]

        coordinator = Tracer()
        # Pretend the worker's clock origin is 5s later than ours: the
        # importer must shift its spans forward by exactly that much.
        payload["epoch_unix"] = coordinator._epoch_unix + 5.0
        coordinator.import_spans(payload)
        (span,) = coordinator.spans()
        assert span.attrs["proc"] == "shard0"
        assert span.attrs["shard"] == 0
        assert span.start_s == pytest.approx(worker_start + 5.0)

    def test_import_preserves_existing_proc_tag(self):
        worker = Tracer()
        worker.add_span("step", 0.1, proc="original")
        sink = Tracer()
        sink.import_spans(worker.export_payload(process="relay"))
        assert sink.spans()[0].attrs["proc"] == "original"

    def test_legacy_tuple_payload_has_no_proc(self):
        worker = Tracer()
        worker.add_span("step", 0.1)
        sink = Tracer()
        sink.import_spans(worker.export_spans())
        assert "proc" not in sink.spans()[0].attrs

    def test_payload_import_accumulates_dropped(self):
        source = Tracer(capacity=1)
        source.add_span("a", 0.0)
        source.add_span("b", 0.0)
        sink = Tracer()
        sink.import_spans(source.export_payload(process="w"))
        assert sink.dropped == 1

    def test_null_tracer_payload_is_empty_v2(self):
        payload = NULL_TRACER.export_payload(process="w")
        assert payload["version"] == 2
        assert payload["spans"] == []
        assert payload["dropped"] == 0


# ----------------------------------------------------------------------
# Wall-clock attribution
# ----------------------------------------------------------------------
def _sharded_segment():
    """A synthetic one-round sharded trace with known lane quantities."""
    return [
        _span(
            "shard.config", 0, 0.0, shards=2, workers=2, assignment=[[0], [1]]
        ),
        _span(
            "shard.subround", 1, 0.3,
            start_s=0.05, shard=0, round=0, subround=0, proc="shard0",
        ),
        _span(
            "shard.subround", 1, 0.4,
            start_s=0.05, shard=1, round=0, subround=0, proc="shard1",
        ),
        _span("shard.barrier", 1, 0.5, start_s=0.02, round=0, subround=0),
        _span(
            "halo.route", 1, 0.05,
            start_s=0.52, round=0, kind="status", rows=10, bytes=100,
        ),
        _span("scheduler.round", 0, 0.65, start_s=0.0, round=0, mode="sharded"),
    ]


class TestAttribution:
    def test_sharded_lane_decomposition(self):
        attribution = attribute_spans(_sharded_segment())
        assert attribution["schema"] == ATTRIBUTION_SCHEMA
        assert attribution["mode"] == "sharded"
        (run,) = attribution["runs"]
        (row,) = run["rounds"]
        # Two single-shard workers: compute is the straggler's busy time.
        assert row["compute_s"] == pytest.approx(0.4)
        assert row["barrier_wait_s"] == pytest.approx(0.1)
        assert row["halo_s"] == pytest.approx(0.05)
        assert row["merge_s"] == pytest.approx(0.1)
        lanes = (
            row["compute_s"]
            + row["barrier_wait_s"]
            + row["halo_s"]
            + row["merge_s"]
        )
        assert lanes == pytest.approx(row["wall_s"])
        assert row["straggler_spread_s"] == pytest.approx(0.1)
        assert (row["halo_rows"], row["halo_bytes"]) == (10, 100)
        assert run["critical_path_s"] == pytest.approx(0.4)
        assert run["per_shard"][0]["busy_s"] == pytest.approx(0.3)
        assert run["per_shard"][1]["busy_s"] == pytest.approx(0.4)

    def test_single_worker_compute_is_summed_busy(self):
        spans = _sharded_segment()
        spans[0] = _span(
            "shard.config", 0, 0.0, shards=2, workers=1, assignment=[[0, 1]]
        )
        (run,) = attribute_spans(spans)["runs"]
        (row,) = run["rounds"]
        # One worker hosts both shards: their busy times serialise.
        assert row["compute_s"] == pytest.approx(0.7)
        assert row["barrier_wait_s"] == pytest.approx(0.0)

    def test_apply_folds_into_subround_zero(self):
        spans = _sharded_segment()
        spans.insert(
            1,
            _span(
                "shard.apply", 1, 0.2,
                shard=0, round=0, deletions=3, proc="shard0",
            ),
        )
        (run,) = attribute_spans(spans)["runs"]
        (row,) = run["rounds"]
        # Worker 0's lane grows to 0.5 and overtakes worker 1's 0.4.
        assert row["compute_s"] == pytest.approx(0.5)

    def test_multiple_runs_split_on_config_markers(self):
        spans = _sharded_segment() + _sharded_segment()
        attribution = attribute_spans(spans)
        assert len(attribution["runs"]) == 2
        assert attribution["totals"]["rounds"] == 2
        assert attribution["totals"]["wall_s"] == pytest.approx(1.3)

    def test_unsharded_fallback(self):
        spans = [
            _span("scheduler.candidates", 1, 0.2, round=0),
            _span("fanout.barrier", 2, 0.15, round=0),
            _span("scheduler.mis_draw", 1, 0.1, round=0),
            _span("scheduler.deletion", 1, 0.05, round=0),
            _span("scheduler.round", 0, 0.4, round=0, mode="parallel"),
        ]
        attribution = attribute_spans(spans)
        assert attribution["mode"] == "parallel"
        (row,) = attribution["runs"][0]["rounds"]
        assert row["barrier_wait_s"] == pytest.approx(0.15)
        assert row["compute_s"] == pytest.approx(0.2)
        assert row["merge_s"] == pytest.approx(0.05)
        assert row["wall_s"] == pytest.approx(
            row["compute_s"]
            + row["barrier_wait_s"]
            + row["halo_s"]
            + row["merge_s"]
        )

    def test_no_rounds_returns_none(self):
        assert attribute_spans([_span("loose", 0, 0.1)]) is None
        assert attribute_spans([]) is None

    def test_attribution_from_tracer_respects_null(self):
        assert attribution_from_tracer(NULL_TRACER) is None

    def test_summary_renders(self):
        text = attribution_summary(attribute_spans(_sharded_segment()))
        assert "wall-clock attribution" in text
        assert "barrier-wait" in text
        assert "per-shard busy" in text
        assert "critical path" in text

    def test_report_embeds_and_strips(self):
        tracer = Tracer()
        tracer.add_span("phase", 0.1)
        attribution = attribute_spans(_sharded_segment())
        report = build_run_report(
            "unit", tracer, attribution=attribution, meta={"seed": 0}
        )
        validate_run_report(report)
        assert report["attribution"]["totals"]["rounds"] == 1
        stripped = strip_volatile(report)
        run = stripped["attribution"]["runs"][0]
        # Every *_s field and the worker count are gone; the structural
        # skeleton survives for worker-invariance comparisons.
        assert "workers" not in run
        assert run["rounds"] == [
            {"round": 0, "subrounds": 1, "halo_rows": 10, "halo_bytes": 100}
        ]
        assert run["per_shard"] == [
            {"shard": 0, "subrounds": 1},
            {"shard": 1, "subrounds": 1},
        ]
        # Reports without the analysis keep the exact v1 key set.
        bare = build_run_report("unit", tracer)
        assert "attribution" not in bare

    def test_validate_rejects_bad_attribution(self):
        tracer = Tracer()
        tracer.add_span("phase", 0.1)
        report = build_run_report(
            "unit", tracer, attribution=attribute_spans(_sharded_segment())
        )
        for mutate in (
            lambda r: r["attribution"].pop("runs"),
            lambda r: r["attribution"].update(schema="repro.attribution/v0"),
            lambda r: r.update(attribution=[1, 2]),
        ):
            broken = json.loads(json.dumps(report))
            mutate(broken)
            with pytest.raises(SchemaError):
                validate_run_report(broken)

    def test_metrics_absorb_attribution(self):
        metrics = MetricsRegistry()
        metrics.absorb_attribution(attribute_spans(_sharded_segment()))
        assert metrics.get("attribution.rounds").value == 1
        walls = metrics.get("attribution.wall_s")
        assert walls.volatile and walls.count == 1


# ----------------------------------------------------------------------
# Multi-lane timeline
# ----------------------------------------------------------------------
class TestLaneTimeline:
    def test_lanes_render_with_shading_and_overlay(self):
        canvas = render_lane_timeline(_sharded_segment(), title="unit")
        svg = canvas.render()
        assert "coordinator" in svg
        assert "shard0" in svg and "shard1" in svg
        assert "halo rows/route" in svg
        assert "aligned wall-clock seconds" in svg

    def test_no_distributed_spans_message(self):
        canvas = render_lane_timeline([])
        assert "no distributed spans" in canvas.render()

    def test_from_tracer_wrapper(self):
        tracer = Tracer()
        tracer.add_span("halo.route", 0.1, round=0, kind="status", rows=3, bytes=30)
        svg = lane_timeline_from_tracer(tracer, title="t").render()
        assert "coordinator" in svg

    def test_many_spans_coalesce(self):
        spans = [
            _span("engine.verdict", 0, 0.002, start_s=i * 0.002, proc="chunk0")
            for i in range(500)
        ]
        svg = render_lane_timeline(spans).render()
        # Contiguous spans coalesce into busy blocks: far fewer rects.
        assert svg.count("<rect") < 50
        assert "chunk0" in svg


# ----------------------------------------------------------------------
# Attribution edge cases: degenerate schedules and skewed clocks
# ----------------------------------------------------------------------
class TestAttributionEdgeCases:
    def test_zero_round_sharded_stream_returns_none(self):
        # A run that configured shards but never scheduled a round
        # (e.g. every vertex protected before round 0 opened) carries a
        # config marker and setup spans but no lanes to attribute.
        spans = [
            _span(
                "shard.config", 0, 0.0,
                shards=2, workers=2, assignment=[[0], [1]],
            ),
            _span("shm.attach", 1, 0.01, proc="shard0"),
        ]
        assert attribute_spans(spans) is None

    def test_zero_round_run_does_not_poison_siblings(self):
        # Two back-to-back runs where the first is empty: the empty one
        # is filtered, the real one attributes normally.
        empty = [
            _span(
                "shard.config", 0, 0.0,
                shards=2, workers=2, assignment=[[0], [1]],
            )
        ]
        attribution = attribute_spans(empty + _sharded_segment())
        assert attribution is not None
        assert len(attribution["runs"]) == 1
        assert attribution["totals"]["rounds"] == 1

    def test_single_shard_run_has_no_halo_or_wait(self):
        spans = [
            _span("shard.config", 0, 0.0, shards=1, workers=1, assignment=[[0]]),
            _span(
                "shard.subround", 1, 0.3,
                start_s=0.05, shard=0, round=0, subround=0, proc="shard0",
            ),
            _span("shard.barrier", 1, 0.35, start_s=0.02, round=0, subround=0),
            _span("scheduler.round", 0, 0.4, start_s=0.0, round=0, mode="sharded"),
        ]
        attribution = attribute_spans(spans)
        (run,) = attribution["runs"]
        (row,) = run["rounds"]
        assert row["compute_s"] == pytest.approx(0.3)
        assert row["barrier_wait_s"] == pytest.approx(0.05)
        assert row["halo_s"] == 0.0
        assert (row["halo_rows"], row["halo_bytes"]) == (0, 0)
        assert row["straggler_spread_s"] == 0.0
        assert run["per_shard"] == [
            {"shard": 0, "busy_s": pytest.approx(0.3), "subrounds": 1}
        ]
        lanes = (
            row["compute_s"]
            + row["barrier_wait_s"]
            + row["halo_s"]
            + row["merge_s"]
        )
        assert lanes == pytest.approx(row["wall_s"])

    def test_clock_skewed_epochs_keep_lanes_nonnegative(self):
        # A worker whose per-process epoch ran fast reports busy time
        # exceeding the coordinator's barrier (and even round) wall.
        # The clamps absorb the skew: wait and merge floor at zero, no
        # lane ever goes negative.
        spans = [
            _span(
                "shard.config", 0, 0.0,
                shards=2, workers=2, assignment=[[0], [1]],
            ),
            _span(
                "shard.subround", 1, 9.0,
                start_s=0.05, shard=0, round=0, subround=0, proc="shard0",
            ),
            _span(
                "shard.subround", 1, 0.4,
                start_s=0.05, shard=1, round=0, subround=0, proc="shard1",
            ),
            _span("shard.barrier", 1, 0.5, start_s=0.02, round=0, subround=0),
            _span(
                "halo.route", 1, 0.05,
                start_s=0.52, round=0, kind="status", rows=10, bytes=100,
            ),
            _span("scheduler.round", 0, 0.65, start_s=0.0, round=0, mode="sharded"),
        ]
        (run,) = attribute_spans(spans)["runs"]
        (row,) = run["rounds"]
        assert row["compute_s"] == pytest.approx(9.0)
        assert row["barrier_wait_s"] == 0.0
        assert row["merge_s"] == pytest.approx(0.1)
        for lane in ("compute_s", "barrier_wait_s", "halo_s", "merge_s"):
            assert row[lane] >= 0.0
        assert row["straggler_spread_s"] == pytest.approx(8.6)

    def test_end_to_end_fully_protected_schedule(self):
        # A real sharded schedule in which every vertex is protected:
        # zero deletions, one empty-draw round.  Attribution must not
        # crash and every lane it reports must be non-negative.
        import random

        from repro.network.graph import NetworkGraph
        from repro.shard import sharded_dcc_schedule

        rng = random.Random(3)
        graph = NetworkGraph(range(20))
        for u in range(20):
            for v in range(u + 1, 20):
                if rng.random() < 0.25:
                    graph.add_edge(u, v)
        tracer = Tracer()
        result = sharded_dcc_schedule(
            graph, set(graph.vertices()), 3, random.Random(0),
            shards=2, tracer=tracer,
        )
        assert result.removed == []
        attribution = attribution_from_tracer(tracer)
        if attribution is not None:
            for run in attribution["runs"]:
                for row in run["rounds"]:
                    for lane in (
                        "compute_s", "barrier_wait_s", "halo_s", "merge_s"
                    ):
                        assert row[lane] >= 0.0

"""Unit tests for minimum enclosing circles (Welzl)."""

import math
import random

import pytest

from repro.geometry.holes import (
    Circle,
    minimum_enclosing_circle,
    point_set_diameter,
)


class TestCircle:
    def test_contains_with_slack(self):
        circle = Circle((0, 0), 1.0)
        assert circle.contains((1.0, 0.0))
        assert not circle.contains((1.1, 0.0))
        assert circle.diameter == pytest.approx(2.0)


class TestMinimumEnclosingCircle:
    def test_single_point(self):
        circle = minimum_enclosing_circle([(2, 3)])
        assert circle.center == (2, 3)
        assert circle.radius == 0.0

    def test_two_points(self):
        circle = minimum_enclosing_circle([(0, 0), (2, 0)])
        assert circle.center == pytest.approx((1.0, 0.0))
        assert circle.radius == pytest.approx(1.0)

    def test_equilateral_triangle(self):
        pts = [(0, 0), (1, 0), (0.5, math.sqrt(3) / 2)]
        circle = minimum_enclosing_circle(pts)
        assert circle.radius == pytest.approx(1 / math.sqrt(3))

    def test_obtuse_triangle_uses_diameter(self):
        # nearly collinear: circle defined by the two far points
        pts = [(0, 0), (4, 0), (2, 0.1)]
        circle = minimum_enclosing_circle(pts)
        assert circle.radius == pytest.approx(2.0, abs=0.02)

    def test_collinear_points(self):
        circle = minimum_enclosing_circle([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert circle.radius == pytest.approx(1.5)

    def test_duplicate_points(self):
        circle = minimum_enclosing_circle([(1, 1)] * 5 + [(3, 1)])
        assert circle.radius == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            minimum_enclosing_circle([])

    def test_contains_all_points_random(self):
        rng = random.Random(7)
        for trial in range(20):
            pts = [(rng.uniform(-5, 5), rng.uniform(-5, 5)) for __ in range(30)]
            circle = minimum_enclosing_circle(pts, seed=trial)
            assert all(circle.contains(p) for p in pts)

    def test_minimality_versus_brute_force(self):
        """Welzl's radius equals the best 2- or 3-point support circle."""
        from itertools import combinations

        from repro.geometry.holes import _circle_from_two, _trivial_circle

        rng = random.Random(3)
        pts = [(rng.uniform(0, 4), rng.uniform(0, 4)) for __ in range(12)]
        best = math.inf
        for a, b in combinations(pts, 2):
            circle = _circle_from_two(a, b)
            if all(circle.contains(p) for p in pts):
                best = min(best, circle.radius)
        for a, b, c in combinations(pts, 3):
            circle = _trivial_circle([a, b, c])
            if all(circle.contains(p) for p in pts):
                best = min(best, circle.radius)
        ours = minimum_enclosing_circle(pts).radius
        assert ours == pytest.approx(best, rel=1e-9)


class TestDiameter:
    def test_point_set_diameter(self):
        assert point_set_diameter([(0, 0), (0, 4)]) == pytest.approx(4.0)

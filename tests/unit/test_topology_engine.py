"""Unit tests for the local topology engine and subgraph views."""

import pytest

from repro.network.graph import NetworkGraph, SubgraphView
from repro.network.topologies import triangulated_grid
from repro.topology import (
    LocalTopologyEngine,
    SpanMemo,
    TopologyCounters,
    graph_signature,
    neighborhood_radius,
    punctured_deletable,
)


def path_graph(n):
    graph = NetworkGraph(range(n))
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


class TestNeighborhoodRadius:
    def test_matches_definition_5(self):
        assert neighborhood_radius(3) == 2
        assert neighborhood_radius(4) == 2
        assert neighborhood_radius(5) == 3
        assert neighborhood_radius(6) == 3

    def test_rejects_small_tau(self):
        with pytest.raises(ValueError):
            neighborhood_radius(2)


class TestSubgraphView:
    def test_matches_induced_subgraph(self):
        mesh = triangulated_grid(4, 4).graph
        keep = set(list(sorted(mesh.vertices()))[:10])
        view = mesh.subgraph_view(keep)
        copy = mesh.induced_subgraph(keep)
        assert view.vertex_set() == copy.vertex_set()
        assert set(view.edges()) == set(copy.edges())
        assert view.num_edges() == copy.num_edges()
        assert view.is_connected() == copy.is_connected()
        for v in keep:
            assert view.neighbors(v) == copy.neighbors(v)
            assert view.degree(v) == copy.degree(v)

    def test_view_is_lazy_over_live_graph(self):
        graph = path_graph(5)
        view = graph.subgraph_view({0, 1, 2})
        assert isinstance(view, SubgraphView)
        assert len(view) == 3
        assert view.has_edge(0, 1) and not view.has_edge(2, 3)

    def test_signature_is_canonical(self):
        graph = path_graph(4)
        view = graph.subgraph_view({1, 2, 3})
        vs, es = view.signature()
        assert vs == (1, 2, 3)
        assert es == ((1, 2), (2, 3))
        assert graph_signature(view) == view.signature()


class TestEngineCaching:
    def test_repeat_query_hits_cache(self):
        mesh = triangulated_grid(5, 5).graph
        engine = LocalTopologyEngine(mesh, 4)
        v = sorted(mesh.vertices())[12]
        first = engine.deletable(v)
        tests_after_first = engine.counters.deletability_tests
        assert engine.deletable(v) == first
        assert engine.counters.deletability_tests == tests_after_first
        assert engine.counters.deletability_cache_hits == 1

    def test_far_deletion_preserves_cached_verdict(self):
        graph = path_graph(12)
        # Extend the path into a lollipop so middle vertices see cycles.
        engine = LocalTopologyEngine(graph, 4)
        engine.deletable(1)
        tests = engine.counters.deletability_tests
        # Vertex 11 is > k hops from 1's ball: verdict must survive.
        engine.delete_vertex(11)
        engine.deletable(1)
        assert engine.counters.deletability_tests == tests

    def test_near_deletion_invalidates(self):
        graph = path_graph(12)
        engine = LocalTopologyEngine(graph, 4)
        engine.deletable(5)
        tests = engine.counters.deletability_tests
        engine.delete_vertex(6)  # inside 5's k-ball
        engine.deletable(5)
        assert engine.counters.deletability_tests == tests + 1

    def test_external_mutation_detected_by_version(self):
        mesh = triangulated_grid(4, 4).graph
        engine = LocalTopologyEngine(mesh, 4)
        v = sorted(mesh.vertices())[5]
        engine.deletable(v)
        u = sorted(mesh.vertices())[6]
        mesh.remove_vertex(u)  # behind the engine's back
        assert engine.deletable(v) == punctured_deletable(mesh.copy(), v, 4)

    def test_ball_caching_counts(self):
        mesh = triangulated_grid(4, 4).graph
        engine = LocalTopologyEngine(mesh, 4, cache_balls=True)
        v = sorted(mesh.vertices())[0]
        a = engine.ball(v, 2)
        b = engine.ball(v, 2)
        assert a == b
        assert engine.counters.ball_cache_hits == 1
        assert v in a

    def test_fork_shares_counters_but_not_graph(self):
        mesh = triangulated_grid(4, 4).graph
        engine = LocalTopologyEngine(mesh, 4)
        v = sorted(mesh.vertices())[7]
        engine.deletable(v)
        fork = engine.fork()
        assert fork.counters is engine.counters
        assert fork.graph is not engine.graph
        fork.delete_vertex(v)
        assert v in engine.graph and v not in fork.graph
        # Fork inherited the warm verdict cache.
        before = engine.counters.deletability_tests
        other = engine.fork()
        other.deletable(v)
        assert engine.counters.deletability_tests == before


class TestSpanMemo:
    def test_identical_neighborhoods_share_verdicts(self):
        memo = SpanMemo()
        counters = TopologyCounters()
        mesh = triangulated_grid(5, 5).graph
        a = LocalTopologyEngine(
            mesh.copy(), 4, span_memo=memo, counters=counters
        )
        b = LocalTopologyEngine(
            mesh.copy(), 4, span_memo=memo, counters=counters
        )
        v = sorted(mesh.vertices())[12]
        assert a.deletable(v) == b.deletable(v)
        assert counters.span_memo_hits >= 1

    def test_memo_is_tau_scoped(self):
        memo = SpanMemo()
        graph = triangulated_grid(4, 4).graph
        e3 = LocalTopologyEngine(graph.copy(), 3, span_memo=memo)
        e6 = LocalTopologyEngine(graph.copy(), 6, span_memo=memo)
        v = sorted(graph.vertices())[5]
        assert e3.deletable(v) == punctured_deletable(graph.copy(), v, 3)
        assert e6.deletable(v) == punctured_deletable(graph.copy(), v, 6)


class TestCounters:
    def test_merge_and_dict(self):
        a = TopologyCounters(deletability_queries=2, span_computations=1)
        b = TopologyCounters(deletability_queries=3, bfs_expansions=7)
        a.merge(b)
        assert a.deletability_queries == 5
        assert a.bfs_expansions == 7
        assert a.as_dict()["span_computations"] == 1
        assert "span" in a.summary()

"""Unit tests for multi-boundary cone filling."""

import pytest

from repro.core.boundary_repair import (
    fill_boundary_cone,
    repair_inner_boundaries,
)
from repro.core.criterion import is_tau_partitionable


class TestConeFilling:
    def test_apex_connected_to_all(self, annulus):
        graph = annulus.graph.copy()
        apex = max(graph.vertices()) + 1
        fill_boundary_cone(graph, annulus.inner_boundary, apex)
        assert graph.degree(apex) == len(annulus.inner_boundary)

    def test_empty_boundary_rejected(self, annulus):
        graph = annulus.graph.copy()
        with pytest.raises(ValueError):
            fill_boundary_cone(graph, [], 999)

    def test_existing_apex_rejected(self, annulus):
        graph = annulus.graph.copy()
        with pytest.raises(ValueError):
            fill_boundary_cone(graph, annulus.inner_boundary, 0)


class TestRepair:
    def test_repair_adds_one_apex_per_inner_boundary(self, annulus):
        repaired = repair_inner_boundaries(
            annulus.graph, [annulus.outer_boundary, annulus.inner_boundary]
        )
        assert len(repaired.apexes) == 1
        apex = repaired.apexes[0]
        assert repaired.graph.degree(apex) == len(annulus.inner_boundary)

    def test_original_untouched(self, annulus):
        before = len(annulus.graph)
        repair_inner_boundaries(
            annulus.graph, [annulus.outer_boundary, annulus.inner_boundary]
        )
        assert len(annulus.graph) == before

    def test_protected_contains_boundaries_and_apexes(self, annulus):
        repaired = repair_inner_boundaries(
            annulus.graph, [annulus.outer_boundary, annulus.inner_boundary]
        )
        assert set(annulus.outer_boundary) <= repaired.protected
        assert set(annulus.inner_boundary) <= repaired.protected
        assert set(repaired.apexes) <= repaired.protected

    def test_repair_makes_outer_boundary_partitionable(self, annulus):
        """Cone filling reduces the multi-boundary case to Proposition 2."""
        assert not is_tau_partitionable(
            annulus.graph, [annulus.outer_boundary], 3
        )
        repaired = repair_inner_boundaries(
            annulus.graph, [annulus.outer_boundary, annulus.inner_boundary]
        )
        assert is_tau_partitionable(
            repaired.graph, [annulus.outer_boundary], 3
        )

    def test_outer_index_selection(self, annulus):
        repaired = repair_inner_boundaries(
            annulus.graph,
            [annulus.outer_boundary, annulus.inner_boundary],
            outer_index=1,
        )
        apex = repaired.apexes[0]
        # now the outer boundary got the cone instead
        assert repaired.graph.degree(apex) == len(annulus.outer_boundary)

    def test_validation(self, annulus):
        with pytest.raises(ValueError):
            repair_inner_boundaries(annulus.graph, [])
        with pytest.raises(IndexError):
            repair_inner_boundaries(
                annulus.graph, [annulus.outer_boundary], outer_index=5
            )

"""Unit tests for the chord-space internals of the Horton machinery."""


from repro.cycles.cycle_space import cycle_space_dimension
from repro.cycles.horton import _ChordSpace
from repro.network.graph import NetworkGraph
from repro.network.topologies import cycle_graph


class TestChordSpace:
    def test_nu_matches_cycle_space_dimension(self, k4, trigrid6):
        for graph in (k4, trigrid6.graph):
            chords = _ChordSpace(graph)
            assert chords.nu == cycle_space_dimension(graph)

    def test_forest_has_no_chords(self):
        g = NetworkGraph(range(5), [(0, 1), (1, 2), (3, 4)])
        assert _ChordSpace(g).nu == 0

    def test_chord_masks_stored_both_orientations(self, k4):
        chords = _ChordSpace(k4)
        for (u, v), mask in list(chords.chord_mask.items()):
            assert chords.chord_mask[(v, u)] == mask

    def test_single_cycle_has_one_chord(self):
        chords = _ChordSpace(cycle_graph(7))
        assert chords.nu == 1
        cycle = list(range(7))
        assert chords.project_vertex_cycle(cycle) == 1

    def test_tree_edges_project_to_zero(self, trigrid6):
        chords = _ChordSpace(trigrid6.graph)
        # a path (no closing chord usage) projects through tree edges only
        # when none of its edges are chords; verify at least that the
        # projection of a cycle equals the XOR of its chord-edge masks
        cycle = trigrid6.outer_boundary
        expected = 0
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            expected ^= chords.chord_mask.get((a, b), 0)
        assert chords.project_vertex_cycle(cycle) == expected

    def test_projection_is_linear(self, k4):
        chords = _ChordSpace(k4)
        t1 = chords.project_vertex_cycle([0, 1, 2])
        t2 = chords.project_vertex_cycle([0, 2, 3])
        square = chords.project_vertex_cycle([0, 1, 2, 3])
        # triangles share edge (0,2): sum of projections = square's
        assert t1 ^ t2 == square

    def test_distinct_cycles_project_distinctly(self, k4):
        chords = _ChordSpace(k4)
        projections = {
            chords.project_vertex_cycle(c)
            for c in ([0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3])
        }
        assert len(projections) == 4

    def test_project_edges_matches_vertex_projection(self, k4):
        chords = _ChordSpace(k4)
        cycle = [0, 1, 2]
        edges = [(0, 1), (1, 2), (2, 0)]
        assert chords.project_edges(edges) == chords.project_vertex_cycle(cycle)

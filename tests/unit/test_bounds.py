"""Unit tests for the repro-bounds front: symbolic radii, capacities, CLI."""

from __future__ import annotations

import json
import math
import textwrap
from pathlib import Path

from repro.checks.bounds import (
    DECLARED_FLOODS,
    TAU_SAMPLES,
    SymExpr,
    _points,
    _radius_env,
    _ttl_points,
    check_floods,
    run_bounds,
)
from repro.checks.bounds_cli import main as bounds_main
from repro.checks.protocol import FloodSpec, ProtocolContract, extract_contract

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BATCH = SRC / "repro" / "cycles" / "batch.py"


def run_tree(tmp_path: Path, sources: dict) -> tuple:
    """Write ``{rel: source}`` under tmp_path and run the bounds passes."""
    for rel, source in sources.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_bounds([tmp_path], tmp_path)


def rules_of(findings) -> set:
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Symbolic expressions
# ----------------------------------------------------------------------
class TestSymbolic:
    def test_radius_env_matches_paper(self):
        for tau in TAU_SAMPLES:
            env = _radius_env(tau)
            assert env["k"] == math.ceil(tau / 2)
            assert env["m"] == env["k"] + 1

    def test_canonicalization_is_pointwise(self):
        drifted = SymExpr(
            "mis_separation(tau) - 1", _points(lambda env: env["m"] - 1)
        )
        assert drifted.canonical() == "k"

    def test_le_and_eq_are_pointwise(self):
        k = SymExpr("k", _points(lambda env: env["k"]))
        m = SymExpr("m", _points(lambda env: env["m"]))
        assert k.le(m) and not m.le(k)
        assert k.eq(SymExpr("other spelling", k.values))
        assert not k.eq(m)


# ----------------------------------------------------------------------
# REPRO401/402: the radius pass on fixture trees
# ----------------------------------------------------------------------
class TestRadiusPass:
    def test_derived_radius_is_proven(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/topology/fix.py": """
                def verdict(engine, v, tau):
                    return engine.ball(v, neighborhood_radius(tau))
                """
            },
        )
        assert findings == []
        (site,) = manifest.radius_sites
        assert site.status == "proven"
        assert site.radius == "k"  # the derivation canonicalizes

    def test_literal_radius_flagged(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/topology/fix.py": """
                def verdict(graph, v):
                    return graph.bfs_distances(v, cutoff=3)
                """
            },
        )
        assert rules_of(findings) == {"REPRO401"}
        assert "literal" in findings[0].message
        (site,) = manifest.radius_sites
        assert site.status == "unproven"

    def test_unbounded_traversal_flagged(self, tmp_path):
        findings, __ = run_tree(
            tmp_path,
            {
                "repro/core/fix.py": """
                def sweep(graph, v):
                    return graph.bfs_distances(v)
                """
            },
        )
        assert rules_of(findings) == {"REPRO401"}
        assert "unbounded" in findings[0].message

    def test_radius_beyond_k_flagged(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/topology/fix.py": """
                def too_far(engine, v, tau):
                    return engine.ball(v, mis_separation(tau))
                """
            },
        )
        assert rules_of(findings) == {"REPRO402"}
        (site,) = manifest.radius_sites
        assert site.status == "exceeds"
        assert site.radius == "m"

    def test_files_outside_scan_dirs_are_exempt(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/analysis/fix.py": """
                def probe(graph, v):
                    return graph.bfs_distances(v, cutoff=99)
                """
            },
        )
        assert findings == []
        assert manifest.radius_sites == []

    def test_allow_comment_marks_site_allowed(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/shard/fix.py": """
                def plan_sweep(graph, seeds):
                    # repro: allow[radius-unproven]
                    return graph.bfs_distances(seeds, cutoff=None)
                """
            },
        )
        assert findings == []
        (site,) = manifest.radius_sites
        assert site.status == "allowed"

    def test_parameter_radius_proven_through_caller(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/core/fix.py": """
                def helper(graph, v, sep):
                    return graph.bfs_distances(v, cutoff=sep - 1)

                def caller(graph, v, tau):
                    return helper(graph, v, mis_separation(tau))
                """
            },
        )
        assert findings == []
        (site,) = manifest.radius_sites
        assert site.status == "proven"
        assert site.radius == "k"  # m - 1 canonicalizes to k
        assert "helper(sep)" in site.via

    def test_uncalled_parameter_radius_is_delegated(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path,
            {
                "repro/core/fix.py": """
                def public_api(graph, v, radius):
                    return graph.bfs_distances(v, cutoff=radius)
                """
            },
        )
        assert findings == []
        (site,) = manifest.radius_sites
        assert site.status == "delegated"
        assert site.radius == "radius"


# ----------------------------------------------------------------------
# REPRO403: halo band radius
# ----------------------------------------------------------------------
class TestHaloBand:
    def test_drifted_shard_plan_radius_flagged(self, tmp_path):
        findings, __ = run_tree(
            tmp_path,
            {
                "repro/shard/plan.py": """
                def build(graph, tau):
                    return ShardPlan(halo_radius=neighborhood_radius(tau) + 1)
                """
            },
        )
        assert "REPRO403" in rules_of(findings)

    def test_exact_k_band_is_clean(self, tmp_path):
        findings, __ = run_tree(
            tmp_path,
            {
                "repro/shard/plan.py": """
                def build(graph, tau):
                    return ShardPlan(halo_radius=halo_radius(tau))
                """
            },
        )
        assert findings == []


# ----------------------------------------------------------------------
# REPRO404: flood TTLs
# ----------------------------------------------------------------------
class TestFloodTTL:
    def test_ttl_points_parse_symbolic_text(self):
        assert _ttl_points("k - 1") == tuple(
            _radius_env(tau)["k"] - 1 for tau in TAU_SAMPLES
        )
        assert _ttl_points("self.m - 1") == tuple(
            _radius_env(tau)["m"] - 1 for tau in TAU_SAMPLES
        )
        assert _ttl_points("mystery()") is None

    def _contract(self, spec: FloodSpec) -> ProtocolContract:
        return ProtocolContract(kinds=(spec.kind,), floods={spec.kind: spec})

    def test_correct_flood_is_clean(self):
        spec = FloodSpec("DELETE", "k - 1", "k", True, True, True)
        findings, manifest = check_floods(self._contract(spec), [])
        assert findings == []
        assert manifest["DELETE"]["declared_radius"] == "k"

    def test_over_covering_ttl_flagged(self):
        spec = FloodSpec("DELETE", "k", "k", True, True, True)
        findings, __ = check_floods(self._contract(spec), [])
        assert rules_of(findings) == {"REPRO404"}
        assert "declared radius - 1" in findings[0].message

    def test_missing_guard_flagged(self):
        spec = FloodSpec("PRIORITY", "m - 1", "m", True, False, True)
        findings, __ = check_floods(self._contract(spec), [])
        assert rules_of(findings) == {"REPRO404"}
        assert "guarded" in findings[0].message

    def test_undeclared_flood_kind_flagged(self):
        spec = FloodSpec("MYSTERY", "k - 1", "k", True, True, True)
        contract = ProtocolContract(
            kinds=("MYSTERY",), floods={"MYSTERY": spec}
        )
        findings, __ = check_floods(contract, [])
        assert any("no declared paper radius" in f.message for f in findings)

    def test_real_floods_agree_with_repro_verify(self):
        """The acceptance handshake: the FloodSpecs repro-bounds certifies
        are the same objects repro-verify model-checks."""
        contract, __ = extract_contract(
            [SRC / "repro" / "runtime"], root=REPO_ROOT
        )
        __, manifest = run_bounds([SRC / "repro"], REPO_ROOT)
        for kind, symbol in DECLARED_FLOODS.items():
            assert contract.floods[kind].radius_symbol == symbol
            assert manifest.floods[kind]["radius_symbol"] == symbol
            assert (
                manifest.floods[kind]["initial_ttl"]
                == contract.floods[kind].initial_ttl
            )


# ----------------------------------------------------------------------
# REPRO405/406: packed capacities
# ----------------------------------------------------------------------
class TestCapacities:
    def test_real_batch_is_clean(self, tmp_path):
        findings, manifest = run_tree(
            tmp_path, {"repro/cycles/batch.py": BATCH.read_text()}
        )
        assert findings == []
        assert manifest.capacities["BATCH_MAX_MEMBERS"] == 64
        assert manifest.capacities["chord_capacity"] == 64 * 4
        assert manifest.capacities["width_classes"][0][0] == 1

    def test_drifted_member_capacity_flagged(self, tmp_path):
        source = BATCH.read_text().replace(
            "BATCH_MAX_MEMBERS = 64", "BATCH_MAX_MEMBERS = 128", 1
        )
        findings, __ = run_tree(tmp_path, {"repro/cycles/batch.py": source})
        assert "REPRO405" in rules_of(findings)

    def test_literal_bypass_guard_flagged(self, tmp_path):
        source = BATCH.read_text().replace(
            "tau <= PACKED_TAU_MAX", "tau <= 4", 1
        )
        findings, __ = run_tree(tmp_path, {"repro/cycles/batch.py": source})
        assert "REPRO406" in rules_of(findings)

    def test_drifted_stage_cutoff_flagged(self, tmp_path):
        findings, __ = run_tree(
            tmp_path,
            {
                "repro/cycles/kernel.py": """
                def stage3(tau):
                    cutoff = tau // 2 + 1
                    return cutoff
                """
            },
        )
        assert "REPRO405" in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO407: traffic envelopes
# ----------------------------------------------------------------------
class TestEnvelopes:
    def test_unknown_routing_category_flagged(self, tmp_path):
        findings, __ = run_tree(
            tmp_path,
            {
                "repro/shard/scheduler.py": """
                def run_round(exchange):
                    exchange.route(1)
                    exchange.side_channel(2)
                """
            },
        )
        assert "REPRO407" in rules_of(findings)
        assert any("side_channel" in f.message for f in findings)

    def test_known_categories_produce_halo_envelopes(self, tmp_path):
        __, manifest = run_tree(
            tmp_path,
            {
                "repro/shard/scheduler.py": """
                def run_round(exchange):
                    exchange.account_broadcast(1)
                    exchange.route(2)
                    exchange.route_deletions(3)
                    exchange.end_round()
                """
            },
        )
        assert manifest.envelopes["halo.rows_per_round"] == "3 * halo_members"
        assert manifest.envelopes["halo.subrounds_per_round"] == "n"


# ----------------------------------------------------------------------
# The real tree and the CLI
# ----------------------------------------------------------------------
class TestRealTree:
    def test_source_tree_is_fully_certified(self):
        findings, manifest = run_bounds([SRC / "repro"], REPO_ROOT)
        assert findings == []
        statuses = {site.status for site in manifest.radius_sites}
        assert statuses <= {"proven", "delegated", "allowed"}
        assert "bfs.max_depth" in manifest.envelopes
        assert "halo.rows_per_round" in manifest.envelopes
        assert "messages.priority.sent" in manifest.envelopes

    def test_manifest_serializes_deterministically(self):
        __, manifest = run_bounds([SRC / "repro"], REPO_ROOT)
        first = json.dumps(manifest.as_dict(), sort_keys=True)
        __, again = run_bounds([SRC / "repro"], REPO_ROOT)
        assert json.dumps(again.as_dict(), sort_keys=True) == first


class TestCLI:
    def test_list_rules(self, capsys):
        assert bounds_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REPRO401", "REPRO404", "REPRO407"):
            assert rule_id in out

    def test_clean_tree_exits_zero(self, capsys):
        code = bounds_main([str(SRC / "repro"), "--root", str(REPO_ROOT)])
        assert code == 0
        assert "repro-bounds: 0 finding(s)" in capsys.readouterr().out

    def test_json_report_and_baseline_flow(self, tmp_path, capsys):
        fixture = tmp_path / "repro" / "topology" / "fix.py"
        fixture.parent.mkdir(parents=True)
        fixture.write_text("def f(g, v):\n    return g.bfs_distances(v, cutoff=9)\n")
        argv = [str(tmp_path), "--root", str(tmp_path)]

        assert bounds_main(argv + ["--no-baseline", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-bounds/v1"
        assert report["count"] == 1
        assert report["findings"][0]["rule"] == "REPRO401"
        assert report["manifest"]["format"] == "repro-bounds-manifest/v1"

        assert bounds_main(argv + ["--update-baseline"]) == 0
        capsys.readouterr()
        assert bounds_main(argv) == 0
        assert "(1 baselined)" in capsys.readouterr().out

    def test_manifest_flag_writes_document(self, tmp_path, capsys):
        fixture = tmp_path / "repro" / "core" / "fix.py"
        fixture.parent.mkdir(parents=True)
        fixture.write_text(
            "def f(e, v, tau):\n    return e.ball(v, deletion_radius(tau))\n"
        )
        out = tmp_path / "manifest.json"
        code = bounds_main(
            [str(tmp_path), "--root", str(tmp_path), "--no-baseline",
             "--manifest", str(out)]
        )
        assert code == 0
        manifest = json.loads(out.read_text())
        assert manifest["format"] == "repro-bounds-manifest/v1"
        assert manifest["radius_sites"][0]["status"] == "proven"

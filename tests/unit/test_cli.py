"""Unit tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_defaults_are_unset(self):
        args = build_parser().parse_args(["fig3"])
        assert args.nodes is None
        assert args.degree is None
        assert args.runs is None
        assert args.seed is None
        assert not args.paper_scale

    def test_overrides_parse(self):
        args = build_parser().parse_args(
            ["fig3", "--nodes", "99", "--degree", "7.5", "--runs", "4"]
        )
        assert (args.nodes, args.degree, args.runs) == (99, 7.5, 4)


class TestMain:
    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Moebius" in out
        assert "false negative" in out

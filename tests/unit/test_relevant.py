"""Unit tests for relevant (irreducible) cycle enumeration."""

import pytest

from repro.cycles.horton import irreducible_cycle_bounds
from repro.cycles.relevant import (
    is_relevant_cycle,
    relevant_cycle_lengths,
    relevant_cycles,
    relevant_cycles_exact,
)
from repro.network.graph import NetworkGraph

from tests.conftest import random_graph


class TestKnownGraphs:
    def test_k4_relevant_cycles_are_the_triangles(self, k4):
        cycles = relevant_cycles(k4)
        assert sorted(c.length for c in cycles) == [3, 3, 3, 3]

    def test_single_cycle_is_relevant(self, c6):
        cycles = relevant_cycles(c6)
        assert [c.length for c in cycles] == [6]

    def test_wheel_rim_is_reducible(self, wheel8):
        cycles = relevant_cycles(wheel8)
        # only the hub triangles are irreducible; the rim is their sum
        assert all(c.length == 3 for c in cycles)

    def test_square_grid(self, grid5):
        lengths = relevant_cycle_lengths(grid5.graph)
        assert set(lengths) == {4}
        assert len(lengths) == 16

    def test_forest_has_none(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        assert relevant_cycles(g) == []
        assert relevant_cycles_exact(g) == []

    def test_max_length_cap(self, wheel8):
        capped = relevant_cycles(wheel8, max_length=3)
        assert sorted(c.length for c in capped) == [3] * 8


class TestDefinitionChecks:
    def test_is_relevant_on_wheel(self, wheel8):
        assert is_relevant_cycle(wheel8, [0, 1, 8])
        assert not is_relevant_cycle(wheel8, list(range(8)))  # rim = sum

    def test_is_relevant_validates_input(self, wheel8):
        with pytest.raises(ValueError):
            is_relevant_cycle(wheel8, [0, 1])


class TestAgainstExact:
    @pytest.mark.parametrize("seed", range(10))
    def test_candidate_set_is_subset_of_exact(self, seed):
        graph = random_graph(7, 0.45, seed + 500)
        fast = {c.mask for c in relevant_cycles(graph)}
        exact = {c.mask for c in relevant_cycles_exact(graph)}
        assert fast <= exact

    @pytest.mark.parametrize("seed", range(10))
    def test_extreme_lengths_match_algorithm1(self, seed):
        graph = random_graph(7, 0.45, seed + 500)
        cycles = relevant_cycles(graph)
        bounds = irreducible_cycle_bounds(graph)
        if not cycles:
            assert bounds.maximum == 0
            return
        lengths = [c.length for c in cycles]
        assert min(lengths) == bounds.minimum
        assert max(lengths) == bounds.maximum

    @pytest.mark.parametrize("seed", range(6))
    def test_every_exact_relevant_cycle_passes_definition(self, seed):
        graph = random_graph(6, 0.5, seed + 900)
        for cycle in relevant_cycles_exact(graph):
            assert is_relevant_cycle(graph, list(cycle.vertices))

"""Unit tests for regions, deployments and network construction."""


import pytest

from repro.network.deployment import (
    Rectangle,
    build_network,
    deploy_grid,
    deploy_poisson,
    deploy_uniform,
    network_for_average_degree,
)


class TestRectangle:
    def test_dimensions(self):
        rect = Rectangle(0, 0, 4, 3)
        assert rect.width == 4 and rect.height == 3
        assert rect.area == 12
        assert rect.center == (2.0, 1.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rectangle(0, 0, 0, 1)

    def test_contains(self):
        rect = Rectangle(0, 0, 2, 2)
        assert rect.contains((1, 1)) and rect.contains((0, 0))
        assert not rect.contains((3, 1))

    def test_distance_to_border(self):
        rect = Rectangle(0, 0, 10, 10)
        assert rect.distance_to_border((5, 5)) == 5
        assert rect.distance_to_border((1, 5)) == 1

    def test_shrink(self):
        rect = Rectangle(0, 0, 10, 10).shrink(2)
        assert (rect.x0, rect.y0, rect.x1, rect.y1) == (2, 2, 8, 8)

    def test_shrink_too_much(self):
        with pytest.raises(ValueError):
            Rectangle(0, 0, 2, 2).shrink(1)

    def test_sample_inside(self, rng):
        rect = Rectangle(1, 2, 3, 4)
        for __ in range(50):
            assert rect.contains(rect.sample(rng))

    def test_perimeter_parameter_monotone_on_bottom_edge(self):
        rect = Rectangle(0, 0, 10, 10)
        params = [rect.perimeter_parameter((x, 0.1)) for x in (1, 4, 8)]
        assert params == sorted(params)

    def test_perimeter_parameter_covers_all_sides(self):
        rect = Rectangle(0, 0, 10, 10)
        bottom = rect.perimeter_parameter((5, 0.01))
        right = rect.perimeter_parameter((9.99, 5))
        top = rect.perimeter_parameter((5, 9.99))
        left = rect.perimeter_parameter((0.01, 5))
        assert bottom < right < top < left


class TestDeployments:
    def test_uniform_count_and_bounds(self, rng):
        rect = Rectangle(0, 0, 5, 5)
        positions = deploy_uniform(40, rect, rng)
        assert len(positions) == 40
        assert all(rect.contains(p) for p in positions.values())

    def test_uniform_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            deploy_uniform(0, Rectangle(0, 0, 1, 1), rng)

    def test_poisson_mean(self, rng):
        rect = Rectangle(0, 0, 10, 10)
        counts = [len(deploy_poisson(0.5, rect, rng)) for __ in range(30)]
        assert 35 <= sum(counts) / len(counts) <= 65  # mean 50

    def test_grid_layout(self, rng):
        rect = Rectangle(0, 0, 3, 3)
        positions = deploy_grid(4, 4, rect, rng)
        assert len(positions) == 16
        assert positions[0] == (0, 0)
        assert positions[15] == (3, 3)

    def test_grid_jitter_stays_in_region(self, rng):
        rect = Rectangle(0, 0, 3, 3)
        positions = deploy_grid(4, 4, rect, rng, jitter=0.5)
        assert all(rect.contains(p) for p in positions.values())

    def test_grid_too_small(self, rng):
        with pytest.raises(ValueError):
            deploy_grid(1, 4, Rectangle(0, 0, 1, 1), rng)


class TestNetworkConstruction:
    def test_build_network_basics(self):
        net = build_network(
            120, Rectangle(0, 0, 6, 6), rc=1.0, rs=1.0, seed=1
        )
        assert net.graph.is_connected()
        assert net.gamma == pytest.approx(1.0)
        assert net.boundary_nodes
        assert net.internal_nodes
        assert net.boundary_nodes | net.internal_nodes == net.graph.vertex_set()

    def test_boundary_labelling_matches_band(self):
        net = build_network(120, Rectangle(0, 0, 6, 6), rc=1.0, rs=0.8, seed=2)
        for v in net.boundary_nodes:
            assert net.region.distance_to_border(net.positions[v]) <= net.rc

    def test_target_area_is_shrunk_region(self):
        net = build_network(120, Rectangle(0, 0, 6, 6), rc=1.0, rs=1.0, seed=3)
        assert net.target_area.width == pytest.approx(4.0)

    def test_nodes_view(self):
        net = build_network(80, Rectangle(0, 0, 5, 5), rc=1.0, rs=1.0, seed=4)
        nodes = net.nodes()
        assert len(nodes) == len(net.graph)
        flagged = {n.id for n in nodes if n.is_boundary}
        assert flagged == net.boundary_nodes

    def test_average_degree_targeting(self):
        net = network_for_average_degree(300, 18.0, seed=5)
        assert 13.0 <= net.graph.average_degree() <= 23.0

    def test_degree_must_be_positive(self):
        with pytest.raises(ValueError):
            network_for_average_degree(100, 0.0)

    def test_impossible_connectivity_raises(self):
        with pytest.raises(RuntimeError):
            # far too sparse to ever connect
            build_network(
                5,
                Rectangle(0, 0, 100, 100),
                rc=1.0,
                rs=1.0,
                seed=6,
                max_attempts=3,
            )

"""The documented public API surface imports and is complete."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__

    def test_key_entry_points_are_callable(self):
        for name in (
            "dcc_schedule",
            "is_tau_partitionable",
            "network_for_average_degree",
            "outer_boundary_cycle",
            "hgc_verify",
            "evaluate_coverage",
            "generate_greenorbs_trace",
            "distributed_dcc_schedule",
        ):
            assert callable(getattr(repro, name))


SUBPACKAGES = [
    "repro.core",
    "repro.cycles",
    "repro.homology",
    "repro.network",
    "repro.runtime",
    "repro.topology",
    "repro.geometry",
    "repro.boundary",
    "repro.traces",
    "repro.analysis",
    "repro.viz",
    "repro.cli",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        [m for m in SUBPACKAGES if m != "repro.cli"],
    )
    def test_declared_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

"""Unit tests for the void preserving transformation (Definition 5)."""

import pytest

from repro.core.vpt import (
    VoidPreservingTransformation,
    deletable_vertices,
    deletion_radius,
    edge_deletable,
    vertex_deletable,
)
from repro.network.graph import NetworkGraph
from repro.network.topologies import triangulated_grid, wheel_graph


class TestDeletionRadius:
    @pytest.mark.parametrize(
        "tau,expected", [(3, 2), (4, 2), (5, 3), (6, 3), (7, 4), (9, 5)]
    )
    def test_ceil_tau_over_two(self, tau, expected):
        assert deletion_radius(tau) == expected

    def test_rejects_small_tau(self):
        with pytest.raises(ValueError):
            deletion_radius(2)


class TestVertexDeletable:
    def test_hub_of_wheel_is_deletable_at_rim_size(self):
        # removing the hub leaves the rim cycle: fine iff tau >= rim length
        wheel = wheel_graph(6)
        assert vertex_deletable(wheel, 6, 6)
        assert not vertex_deletable(wheel, 6, 5)

    def test_isolated_vertex_deletable(self):
        g = NetworkGraph([0, 1, 2], [(1, 2)])
        assert vertex_deletable(g, 0, 3)

    def test_pendant_vertex_deletable(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 0), (2, 3)])
        assert vertex_deletable(g, 3, 3)

    def test_cut_vertex_not_deletable(self):
        # two triangles joined only through vertex 2
        g = NetworkGraph(
            range(5), [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]
        )
        assert not vertex_deletable(g, 2, 3)

    def test_interior_of_triangular_lattice_not_deletable_at_3(self):
        mesh = triangulated_grid(5, 5)
        center = 12  # row 2, col 2
        # deleting it leaves a hexagonal hole of size > 3
        assert not vertex_deletable(mesh.graph, center, 3)
        assert vertex_deletable(mesh.graph, center, 6)

    def test_redundant_apex_deletable_at_3(self):
        # a triangle plus an apex over it: apex removal leaves the triangle
        g = NetworkGraph(
            range(4), [(0, 1), (1, 2), (2, 0), (3, 0), (3, 1), (3, 2)]
        )
        assert vertex_deletable(g, 3, 3)


class TestEdgeDeletable:
    def test_chord_of_triangulated_square_deletable(self):
        # square with both diagonals: one diagonal is redundant for tau=3
        g = NetworkGraph(
            range(4), [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]
        )
        assert edge_deletable(g, 0, 2, 3)

    def test_bare_cycle_edge_is_technically_deletable(self):
        # Deleting (0,1) from a bare 4-cycle leaves a path.  Any boundary
        # whose GF(2) sum avoids (0,1) stays partitionable, so the VPT rule
        # permits it; protecting boundary *edges* is the scheduler's job.
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert edge_deletable(g, 0, 1, 4)

    def test_edge_whose_removal_leaves_long_void_not_deletable(self):
        # two squares sharing edge (1, 4); removing the shared edge merges
        # them into a 6-cycle, which exceeds tau = 4
        g = NetworkGraph(
            range(6),
            [(0, 1), (1, 4), (4, 5), (5, 0), (1, 2), (2, 3), (3, 4)],
        )
        assert not edge_deletable(g, 1, 4, 4)
        assert edge_deletable(g, 1, 4, 6)

    def test_missing_edge_raises(self):
        g = NetworkGraph(range(3), [(0, 1)])
        with pytest.raises(KeyError):
            edge_deletable(g, 1, 2, 3)

    def test_bridge_not_deletable(self):
        g = NetworkGraph(
            range(6),
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
        )
        assert not edge_deletable(g, 2, 3, 3)


class TestTransformationObject:
    def test_checked_deletion_applies(self):
        g = NetworkGraph(
            range(4), [(0, 1), (1, 2), (2, 0), (3, 0), (3, 1), (3, 2)]
        )
        vpt = VoidPreservingTransformation(g, 3)
        vpt.delete_vertex(3)
        assert 3 not in vpt.graph
        assert 3 in g  # original untouched
        assert [step.kind for step in vpt.steps] == ["vertex"]

    def test_illegal_deletion_raises(self):
        mesh = triangulated_grid(5, 5)
        vpt = VoidPreservingTransformation(mesh.graph, 3)
        with pytest.raises(ValueError):
            vpt.delete_vertex(12)

    def test_try_delete_reports(self):
        g = NetworkGraph(
            range(4), [(0, 1), (1, 2), (2, 0), (3, 0), (3, 1), (3, 2)]
        )
        vpt = VoidPreservingTransformation(g, 3)
        assert vpt.try_delete_vertex(3)
        assert not vpt.try_delete_vertex(3)  # already gone
        mesh = triangulated_grid(5, 5)
        lattice = VoidPreservingTransformation(mesh.graph, 3)
        assert not lattice.try_delete_vertex(12)  # would open a 6-hole

    def test_rejects_small_tau(self):
        with pytest.raises(ValueError):
            VoidPreservingTransformation(NetworkGraph([0]), 2)

    def test_edge_deletion_step(self):
        g = NetworkGraph(
            range(4), [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]
        )
        vpt = VoidPreservingTransformation(g, 3)
        vpt.delete_edge(0, 2)
        assert not vpt.graph.has_edge(0, 2)


class TestDeletableVertices:
    def test_exclusion(self):
        g = NetworkGraph(
            range(4), [(0, 1), (1, 2), (2, 0), (3, 0), (3, 1), (3, 2)]
        )
        assert 3 in deletable_vertices(g, 3)
        assert 3 not in deletable_vertices(g, 3, exclude={3})

    def test_lattice_has_none_at_tau3(self):
        mesh = triangulated_grid(5, 5)
        boundary = set(mesh.outer_boundary)
        assert deletable_vertices(mesh.graph, 3, exclude=boundary) == []

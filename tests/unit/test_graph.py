"""Unit tests for the NetworkGraph adjacency structure."""

import pytest

from repro.network.graph import NetworkGraph, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestBasicMutation:
    def test_add_edge_creates_vertices(self):
        g = NetworkGraph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g
        assert g.has_edge(2, 1)

    def test_add_edge_rejects_self_loop(self):
        g = NetworkGraph([1])
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_remove_vertex_cleans_neighbors(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        g.remove_vertex(1)
        assert 1 not in g
        assert not g.has_edge(0, 1)
        assert g.degree(0) == 0 and g.degree(2) == 0

    def test_remove_missing_vertex_raises(self):
        g = NetworkGraph([0])
        with pytest.raises(KeyError):
            g.remove_vertex(7)

    def test_remove_missing_edge_raises(self):
        g = NetworkGraph([0, 1])
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_parallel_edges_collapse(self):
        g = NetworkGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.num_edges() == 1


class TestQueries:
    def test_len_iter_contains(self):
        g = NetworkGraph(range(4), [(0, 1)])
        assert len(g) == 4
        assert sorted(g) == [0, 1, 2, 3]
        assert 3 in g and 9 not in g

    def test_edges_are_canonical_and_unique(self):
        g = NetworkGraph(range(3), [(2, 0), (1, 2)])
        assert sorted(g.edges()) == [(0, 2), (1, 2)]

    def test_average_degree(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.average_degree() == pytest.approx(2.0)
        assert NetworkGraph().average_degree() == 0.0


class TestTraversal:
    def test_bfs_distances(self):
        g = NetworkGraph(range(5), [(0, 1), (1, 2), (2, 3), (3, 4)])
        dist = g.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_cutoff(self):
        g = NetworkGraph(range(5), [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert set(g.bfs_distances(0, cutoff=2)) == {0, 1, 2}

    def test_k_hop_excludes_self(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        assert g.k_hop_neighborhood(0, 2) == {1, 2}

    def test_k_hop_negative_raises(self):
        g = NetworkGraph([0])
        with pytest.raises(ValueError):
            g.k_hop_neighborhood(0, -1)

    def test_punctured_neighborhood_excludes_center(self, trigrid6):
        gamma = trigrid6.graph.punctured_neighborhood_graph(14, 2)
        assert 14 not in gamma
        assert len(gamma) > 0

    def test_shortest_path_endpoints(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        assert g.shortest_path(0, 3) == [0, 1, 2, 3]
        assert g.shortest_path(0, 0) == [0]

    def test_shortest_path_disconnected_is_none(self):
        g = NetworkGraph(range(4), [(0, 1), (2, 3)])
        assert g.shortest_path(0, 3) is None

    def test_connected_components(self):
        g = NetworkGraph(range(5), [(0, 1), (2, 3)])
        comps = sorted(g.connected_components(), key=len)
        assert [len(c) for c in comps] == [1, 2, 2]
        assert not g.is_connected()
        assert NetworkGraph().is_connected()


class TestSubgraphsAndCopies:
    def test_induced_subgraph(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = g.induced_subgraph([0, 1, 2])
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_induced_subgraph_missing_vertex_raises(self):
        g = NetworkGraph(range(2))
        with pytest.raises(KeyError):
            g.induced_subgraph([0, 9])

    def test_copy_is_independent(self):
        g = NetworkGraph(range(3), [(0, 1)])
        clone = g.copy()
        clone.remove_vertex(0)
        assert 0 in g and g.has_edge(0, 1)

    def test_networkx_roundtrip(self):
        g = NetworkGraph(range(4), [(0, 1), (2, 3)])
        back = NetworkGraph.from_networkx(g.to_networkx())
        assert back.edge_set() == g.edge_set()
        assert back.vertex_set() == g.vertex_set()

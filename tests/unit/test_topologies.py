"""Unit tests for the canonical synthetic topologies."""

import pytest

from repro.cycles.cycle_space import cycle_space_dimension
from repro.homology.simplicial import enumerate_triangles
from repro.network.topologies import (
    annulus_network,
    cycle_graph,
    geometric_graph,
    grid_neighbor_pairs,
    mobius_band_network,
    triangulated_grid,
)


class TestMobius:
    def test_counts(self, mobius):
        assert len(mobius.graph) == 12
        assert mobius.graph.num_edges() == 28
        assert len(mobius.triangles) == 16

    def test_rips_triangles_match_declared(self, mobius):
        assert set(enumerate_triangles(mobius.graph)) == set(mobius.triangles)

    def test_triangle_sum_is_outer_boundary(self, mobius):
        """Each interior edge lies in exactly two triangles, rim edges in one."""
        from collections import Counter

        from repro.network.graph import canonical_edge

        count = Counter()
        for a, b, c in mobius.triangles:
            for e in ((a, b), (a, c), (b, c)):
                count[canonical_edge(*e)] += 1
        rim_edges = {
            canonical_edge(a, b)
            for a, b in zip(
                mobius.outer_boundary,
                mobius.outer_boundary[1:] + mobius.outer_boundary[:1],
            )
        }
        for edge, times in count.items():
            assert times == (1 if edge in rim_edges else 2)

    def test_larger_rim(self):
        big = mobius_band_network(12)
        assert len(big.graph) == 18
        assert len(big.core_cycle) == 6

    def test_invalid_rim_rejected(self):
        with pytest.raises(ValueError):
            mobius_band_network(7)
        with pytest.raises(ValueError):
            mobius_band_network(6)


class TestGrids:
    def test_triangulated_grid_structure(self):
        mesh = triangulated_grid(4, 5)
        assert len(mesh.graph) == 20
        # edges: horizontal 4*... h = (4-1)*5, v = 4*(5-1), diag = 3*4
        assert mesh.graph.num_edges() == 15 + 16 + 12
        assert len(mesh.outer_boundary) == 14

    def test_boundary_is_simple_cycle(self):
        mesh = triangulated_grid(5, 5)
        boundary = mesh.outer_boundary
        assert len(set(boundary)) == len(boundary)
        for a, b in zip(boundary, boundary[1:] + boundary[:1]):
            assert mesh.graph.has_edge(a, b)

    def test_square_grid_has_no_triangles(self, grid5):
        assert enumerate_triangles(grid5.graph) == []

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            triangulated_grid(2, 5)


class TestAnnulus:
    def test_structure(self, annulus):
        assert len(annulus.graph) == 48  # 3 rings of 16
        assert len(annulus.outer_boundary) == 16
        assert len(annulus.inner_boundary) == 16
        assert annulus.graph.is_connected()

    def test_cycle_space(self, annulus):
        assert cycle_space_dimension(annulus.graph) == (
            annulus.graph.num_edges() - 48 + 1
        )

    def test_boundaries_are_cycles(self, annulus):
        for ring in (annulus.outer_boundary, annulus.inner_boundary):
            for a, b in zip(ring, ring[1:] + ring[:1]):
                assert annulus.graph.has_edge(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            annulus_network(outer_size=3)
        with pytest.raises(ValueError):
            annulus_network(rings=1)


class TestSimpleShapes:
    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert len(g) == 5 and g.num_edges() == 5
        assert all(g.degree(v) == 2 for v in g)

    def test_cycle_too_short(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_wheel_graph(self, wheel8):
        assert wheel8.degree(8) == 8
        # rim vertices: two rim neighbours plus the hub
        assert all(wheel8.degree(v) == 3 for v in range(8))


class TestGridNeighborPairs:
    def _positions(self, seed, count, side):
        import random

        rng = random.Random(seed)
        return {
            v: (rng.uniform(0, side), rng.uniform(0, side))
            for v in range(count)
        }

    def test_matches_all_pairs_scan(self):
        from repro.network.node import distance

        positions = self._positions(3, 200, 30.0)
        radius = 4.0
        brute = sorted(
            (u, v)
            for u in positions
            for v in positions
            if u < v and distance(positions[u], positions[v]) <= radius
        )
        assert grid_neighbor_pairs(positions, radius) == brute
        assert brute  # the instance actually exercises the index

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            grid_neighbor_pairs({0: (0.0, 0.0)}, 0.0)

    def test_geometric_graph_edges(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (5.0, 0.0)}
        graph = geometric_graph(positions, 1.5)
        assert sorted(graph.vertices()) == [0, 1, 2]
        assert sorted(graph.edges()) == [(0, 1)]

    def test_scales_to_twenty_thousand_nodes(self):
        # The point of the spatial index: an all-pairs scan at this size
        # is ~200M distance tests; the grid finishes in about a second.
        positions = self._positions(11, 20_000, 1000.0)
        graph = geometric_graph(positions, 10.0)
        assert len(graph) == 20_000
        assert graph.num_edges() > 0

    @pytest.mark.slow
    def test_scales_to_one_hundred_thousand_nodes(self):
        positions = self._positions(13, 100_000, 2000.0)
        graph = geometric_graph(positions, 10.0)
        assert len(graph) == 100_000
        assert graph.num_edges() > 0

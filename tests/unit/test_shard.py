"""Unit tests for the shard subsystem: plan, halo exchange, runtime.

The correctness story has three mechanical legs, each pinned here:

* the partitioner is a pure function of ``(graph, tau, shards, seed)``
  and its halo bands are wide enough that every owned verdict can be
  answered from the partition alone;
* the halo exchange routes boundary rows to exactly the subscribing
  shards (never back to the owner) and meters the traffic;
* the owned-region guard turns any out-of-region verdict read into a
  hard :class:`~repro.topology.OwnedRegionError` instead of a silently
  wrong answer.
"""

import random

import pytest

from repro.core.scheduler import dcc_schedule
from repro.network.graph import NetworkGraph
from repro.network.topologies import triangulated_grid
from repro.shard import (
    HaloExchange,
    ShardPlan,
    build_shard_plan,
    partition_blob,
    sharded_dcc_schedule,
)
from repro.shard.runtime import LocalShard
from repro.topology import (
    LocalTopologyEngine,
    OwnedRegionError,
    neighborhood_radius,
)


def _random_graph(seed: int, nodes: int = 40, density: float = 0.15) -> NetworkGraph:
    rng = random.Random(seed)
    graph = NetworkGraph(range(nodes))
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# Partition plan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_same_seed_same_plan(self):
        graph = _random_graph(7)
        first = build_shard_plan(graph, tau=4, shards=3, seed=5)
        second = build_shard_plan(graph, tau=4, shards=3, seed=5)
        assert isinstance(first, ShardPlan)
        assert first.signature() == second.signature()

    def test_owned_regions_partition_the_vertex_set(self):
        graph = _random_graph(11)
        plan = build_shard_plan(graph, tau=3, shards=4, seed=1)
        owned = [v for spec in plan.specs for v in spec.owned]
        assert sorted(owned) == sorted(graph.vertices())
        assert len(owned) == len(set(owned))
        for spec in plan.specs:
            assert not set(spec.owned) & set(spec.halo)
            assert plan.owner[spec.owned[0]] == spec.index

    def test_halo_radius_matches_the_verdict_radius(self):
        graph = _random_graph(3)
        for tau in (3, 4, 5):
            plan = build_shard_plan(graph, tau=tau, shards=2, seed=0)
            assert plan.halo_radius == neighborhood_radius(tau)

    def test_halo_band_covers_every_owned_k_ball(self):
        graph = _random_graph(13, nodes=50, density=0.12)
        tau = 4
        plan = build_shard_plan(graph, tau=tau, shards=3, seed=2)
        k = plan.halo_radius
        for spec in plan.specs:
            members = set(spec.members)
            for v in spec.owned:
                ball = {v}
                frontier = [v]
                for _ in range(k):
                    nxt = []
                    for u in frontier:
                        for w in graph.neighbors(u):
                            if w not in ball:
                                ball.add(w)
                                nxt.append(w)
                    frontier = nxt
                assert ball <= members

    def test_subscribers_mirror_the_halo_bands(self):
        graph = _random_graph(17)
        plan = build_shard_plan(graph, tau=3, shards=3, seed=3)
        for spec in plan.specs:
            for v in spec.halo:
                assert spec.index in plan.subscribers[v]
            assert set(spec.boundary) == {
                v for v in spec.owned if v in plan.subscribers
            }

    def test_single_shard_has_empty_halo(self):
        graph = _random_graph(19)
        plan = build_shard_plan(graph, tau=4, shards=1, seed=0)
        assert plan.shard_count == 1
        assert plan.specs[0].halo == ()
        assert plan.specs[0].boundary == ()
        assert plan.subscribers == {}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_shard_plan(_random_graph(1), tau=3, shards=0)
        with pytest.raises(ValueError):
            build_shard_plan(NetworkGraph(), tau=3, shards=2)


# ----------------------------------------------------------------------
# Halo exchange
# ----------------------------------------------------------------------
class TestHaloExchange:
    def test_routes_to_subscribers_but_never_the_source(self):
        exchange = HaloExchange({10: (0, 1), 11: (1, 2)})
        deliveries = exchange.route({0: [(10, True)], 1: [(11, False)]})
        assert deliveries == {1: [(10, True)], 2: [(11, False)]}

    def test_unsubscribed_rows_are_dropped(self):
        exchange = HaloExchange({})
        assert exchange.route({0: [(5, True)]}) == {}
        assert exchange.end_round() == (0, 0)

    def test_deletion_rows_reach_every_subscriber(self):
        exchange = HaloExchange({7: (0, 2)})
        assert exchange.route_deletions([7, 8]) == {0: [7], 2: [7]}

    def test_metering_accumulates_and_resets_per_round(self):
        exchange = HaloExchange({10: (0, 1)})
        exchange.route({0: [(10, True)]})
        rows, nbytes = exchange.end_round()
        assert rows == 1 and nbytes > 0
        assert exchange.end_round() == (0, 0)
        assert exchange.rows_total == 1
        assert exchange.bytes_total == nbytes
        assert exchange.rows_per_round == [1, 0]


# ----------------------------------------------------------------------
# Owned-region guard and the shard-local runtime
# ----------------------------------------------------------------------
class TestOwnedRegionGuard:
    def test_engine_guard_rejects_out_of_region_verdicts(self):
        mesh = triangulated_grid(5, 5)
        owned = frozenset(sorted(mesh.graph.vertices())[:10])
        engine = LocalTopologyEngine(mesh.graph, 3, owned=owned)
        inside = min(owned)
        outside = max(mesh.graph.vertices())
        assert outside not in owned
        engine.deletable(inside)  # owned: allowed
        with pytest.raises(OwnedRegionError):
            engine.deletable(outside)

    def test_local_shard_verdicts_stay_inside_owned(self):
        graph = _random_graph(23)
        plan = build_shard_plan(graph, tau=3, shards=2, seed=0)
        spec = plan.specs[0]
        shard = LocalShard(0, 3, partition_blob(graph, spec))
        assert shard.owned == spec.owned
        assert shard.halo == spec.halo
        # Slots are ranks in the sorted member list, disjoint and total.
        assert not shard.owned_slots & shard.halo_slots
        assert len(shard.owned_slots | shard.halo_slots) == len(spec.members)
        if spec.halo:
            with pytest.raises(OwnedRegionError):
                shard.engine.deletable(spec.halo[0])

    def test_subrounds_export_only_boundary_rows(self):
        graph = _random_graph(29)
        plan = build_shard_plan(graph, tau=3, shards=2, seed=1)
        spec = plan.specs[0]
        shard = LocalShard(0, 3, partition_blob(graph, spec))
        owned_rows = [(v, i) for i, v in enumerate(spec.owned)]
        shard.begin_round(owned_rows, [])
        while True:
            winners, exported, undecided = shard.mis_subround()
            assert {v for v, _ in exported} <= set(spec.boundary)
            if undecided == 0:
                break


# ----------------------------------------------------------------------
# Sharded scheduling end to end
# ----------------------------------------------------------------------
class TestShardedSchedule:
    def test_matches_unsharded_and_reports_stats(self):
        graph = _random_graph(31, nodes=36, density=0.2)
        protected = set(sorted(graph.vertices())[:4])
        serial = dcc_schedule(
            graph, protected, 4, rng=random.Random(9), workers=1
        )
        sharded = sharded_dcc_schedule(
            graph, protected, 4, random.Random(9), shards=3
        )
        assert sharded.removed == serial.removed
        assert sharded.deletions_per_round == serial.deletions_per_round
        assert sorted(sharded.active.vertices()) == sorted(
            serial.active.vertices()
        )
        stats = sharded.shard_stats
        assert stats.shard_count == 3
        assert sum(stats.owned_sizes) == 36
        assert stats.halo_rows_total > 0
        assert stats.halo_rows_total == sum(stats.halo_rows_per_round)
        assert stats.halo_bytes_total == sum(stats.halo_bytes_per_round)
        # One subround count per round, including the final empty draw.
        assert len(stats.subrounds_per_round) == sharded.rounds + 1

    def test_single_shard_exchanges_nothing(self):
        graph = _random_graph(37, nodes=24, density=0.25)
        result = sharded_dcc_schedule(
            graph, set(), 3, random.Random(4), shards=1
        )
        assert result.shard_stats.halo_rows_total == 0
        assert result.shard_stats.halo_bytes_total == 0

    def test_dcc_schedule_routes_shards_argument(self):
        graph = _random_graph(41, nodes=24, density=0.25)
        protected = set(sorted(graph.vertices())[:3])
        plain = dcc_schedule(
            graph, protected, 3, rng=random.Random(2), workers=1
        )
        via_api = dcc_schedule(
            graph, protected, 3, rng=random.Random(2), workers=1, shards=2
        )
        assert via_api.removed == plain.removed
        assert via_api.shard_stats is not None
        assert plain.shard_stats is None

    def test_shards_require_parallel_mode_without_prebuilt_engine(self):
        graph = _random_graph(43, nodes=12, density=0.3)
        with pytest.raises(ValueError):
            dcc_schedule(graph, set(), 3, mode="serial", shards=2)
        engine = LocalTopologyEngine(graph.copy(), 3)
        with pytest.raises(ValueError):
            dcc_schedule(graph, set(), 3, engine=engine, shards=2)
        with pytest.raises(ValueError):
            sharded_dcc_schedule(
                graph,
                set(),
                4,
                random.Random(0),
                shards=2,
                plan=build_shard_plan(graph, tau=3, shards=2),
            )

    def test_protected_vertices_must_exist(self):
        graph = _random_graph(47, nodes=10, density=0.3)
        with pytest.raises(KeyError):
            sharded_dcc_schedule(
                graph, {999}, 3, random.Random(0), shards=2
            )

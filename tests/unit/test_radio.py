"""Unit tests for radio models."""

import random

import pytest

from repro.network.radio import (
    LogNormalShadowingRadio,
    QuasiUnitDiskRadio,
    UnitDiskRadio,
)


class TestUnitDisk:
    def test_link_iff_within_range(self, rng):
        radio = UnitDiskRadio(1.0)
        assert radio.link_exists((0, 0), (0.9, 0), rng)
        assert radio.link_exists((0, 0), (1.0, 0), rng)
        assert not radio.link_exists((0, 0), (1.1, 0), rng)

    def test_rc_must_be_positive(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.0)

    def test_build_graph_matches_pairwise(self, rng):
        radio = UnitDiskRadio(1.0)
        positions = {0: (0.0, 0.0), 1: (0.5, 0.0), 2: (2.0, 0.0), 3: (2.4, 0.0)}
        graph = radio.build_graph(positions, rng)
        assert graph.edge_set() == {frozenset({0, 1}), frozenset({2, 3})}

    def test_build_graph_spatial_index_equivalence(self, rng):
        """Grid-bucketed construction equals the brute-force O(n^2) one."""
        from repro.network.node import distance

        deploy_rng = random.Random(9)
        positions = {
            i: (deploy_rng.uniform(0, 8), deploy_rng.uniform(0, 8))
            for i in range(120)
        }
        graph = UnitDiskRadio(1.0).build_graph(positions, rng)
        expected = {
            frozenset({u, v})
            for u in positions
            for v in positions
            if u < v and distance(positions[u], positions[v]) <= 1.0
        }
        assert graph.edge_set() == expected


class TestQuasiUnitDisk:
    def test_certain_zone(self, rng):
        radio = QuasiUnitDiskRadio(1.0, alpha=0.6)
        assert radio.link_exists((0, 0), (0.5, 0), rng)

    def test_forbidden_zone(self, rng):
        radio = QuasiUnitDiskRadio(1.0, alpha=0.6)
        assert not radio.link_exists((0, 0), (1.2, 0), rng)

    def test_grey_zone_probability(self):
        radio = QuasiUnitDiskRadio(1.0, alpha=0.5, grey_link_probability=0.5)
        rng = random.Random(0)
        hits = sum(
            radio.link_exists((0, 0), (0.8, 0), rng) for __ in range(500)
        )
        assert 180 <= hits <= 320

    def test_grey_zone_extremes(self, rng):
        always = QuasiUnitDiskRadio(1.0, alpha=0.5, grey_link_probability=1.0)
        never = QuasiUnitDiskRadio(1.0, alpha=0.5, grey_link_probability=0.0)
        assert always.link_exists((0, 0), (0.9, 0), rng)
        assert not never.link_exists((0, 0), (0.9, 0), rng)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QuasiUnitDiskRadio(1.0, alpha=1.5)
        with pytest.raises(ValueError):
            QuasiUnitDiskRadio(1.0, alpha=0.5, grey_link_probability=2.0)


class TestLogNormalShadowing:
    def test_mean_rssi_monotone_decreasing(self):
        radio = LogNormalShadowingRadio(rc=10.0)
        values = [radio.mean_rssi(d) for d in (1.0, 2.0, 5.0, 9.0)]
        assert values == sorted(values, reverse=True)

    def test_hard_range_cap(self, rng):
        radio = LogNormalShadowingRadio(rc=2.0, sensitivity_dbm=-500.0)
        assert radio.link_exists((0, 0), (1.9, 0), rng)
        assert not radio.link_exists((0, 0), (2.1, 0), rng)

    def test_sensitivity_threshold(self):
        radio = LogNormalShadowingRadio(
            rc=100.0,
            tx_power_dbm=-40.0,
            shadowing_sigma_db=0.0,
            sensitivity_dbm=-70.0,
            path_loss_exponent=3.0,
        )
        rng = random.Random(0)
        # -40 - 30*log10(d) >= -70  <=>  d <= 10
        assert radio.link_exists((0, 0), (9.0, 0), rng)
        assert not radio.link_exists((0, 0), (11.0, 0), rng)

    def test_shadowing_randomises_marginal_links(self):
        radio = LogNormalShadowingRadio(
            rc=100.0,
            tx_power_dbm=-40.0,
            shadowing_sigma_db=6.0,
            sensitivity_dbm=-70.0,
            path_loss_exponent=3.0,
        )
        rng = random.Random(1)
        outcomes = {radio.link_exists((0, 0), (10.0, 0), rng) for __ in range(60)}
        assert outcomes == {True, False}

"""The process-parallel execution layer: contracts and determinism.

Everything here runs at tiny scale — the point is the *equivalence*
guarantees (parallel output byte-identical to serial), not throughput.
"""

import os
import random

import pytest

from repro.analysis.sweeps import parameter_grid, run_sweep
from repro.core.scheduler import dcc_schedule
from repro.network.deployment import Rectangle, build_network
from repro.parallel import (
    chunk_evenly,
    compact_graph_blob,
    fanout_crossover,
    fanout_worthwhile,
    graph_from_blob,
    parallel_starmap,
    resolve_workers,
)
from repro.parallel.runner import SCHEDULE_FANOUT_MIN_NODES


def test_resolve_workers_contract():
    assert resolve_workers(1) == 1
    assert resolve_workers(5) == 5
    auto = os.cpu_count() or 1
    assert resolve_workers(None) == auto
    assert resolve_workers(0) == auto
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_chunk_evenly_is_deterministic_and_ordered():
    items = list(range(10))
    chunks = chunk_evenly(items, 3)
    assert [len(c) for c in chunks] == [4, 3, 3]
    assert [x for chunk in chunks for x in chunk] == items
    # More chunks than items: one item each, no empties.
    assert chunk_evenly([7, 8], 5) == [[7], [8]]
    assert chunk_evenly([], 4) == []
    # Same inputs, same boundaries.
    assert chunk_evenly(items, 3) == chunks


def _square(x):
    return x * x


def _record_init(value):
    # Runs in the worker (or inline for the serial path); _square does
    # not read it — the test only checks the initializer is invoked on
    # the inline path too.
    global _INIT_SEEN
    _INIT_SEEN = value


def test_parallel_starmap_matches_inline():
    tasks = [(i,) for i in range(7)]
    assert parallel_starmap(_square, tasks, workers=1) == [i * i for i in range(7)]
    assert parallel_starmap(_square, tasks, workers=3) == [i * i for i in range(7)]
    # Inline path still runs the initializer.
    parallel_starmap(_square, [(2,)], workers=1, initializer=_record_init, initargs=(9,))
    assert _INIT_SEEN == 9


def _sweep_probe(count, bias, seed):
    if count == 13:
        raise ValueError("unlucky cell")
    rng = random.Random(seed)
    return {"value": count * bias + rng.randrange(100)}


def test_run_sweep_parallel_rows_identical_to_serial():
    grid = parameter_grid(count=(5, 9), bias=(2, 3))
    serial = run_sweep(_sweep_probe, grid, seeds=(0, 1), workers=1)
    fanned = run_sweep(_sweep_probe, grid, seeds=(0, 1), workers=2)
    assert fanned.rows == serial.rows


def test_run_sweep_parallel_error_rows_identical_to_serial():
    grid = parameter_grid(count=(5, 13), bias=(2,))
    serial = run_sweep(_sweep_probe, grid, seeds=(0,), on_error="skip", workers=1)
    fanned = run_sweep(_sweep_probe, grid, seeds=(0,), on_error="skip", workers=2)
    assert serial.rows[1]["error"] == "ValueError('unlucky cell')"
    assert fanned.rows == serial.rows


def test_compact_graph_blob_roundtrip():
    net = build_network(40, Rectangle(0, 0, 3.0, 3.0), 1.0, 1.0, seed=5)
    clone = graph_from_blob(compact_graph_blob(net.graph))
    assert clone.vertex_set() == net.graph.vertex_set()
    assert sorted(clone.edges()) == sorted(net.graph.edges())


def test_fanout_crossover_contract(monkeypatch):
    monkeypatch.delenv("REPRO_FANOUT_MIN_NODES", raising=False)
    assert fanout_crossover() == SCHEDULE_FANOUT_MIN_NODES
    # Small jobs never fan out; the env knob overrides for tests/benches.
    assert not fanout_worthwhile(SCHEDULE_FANOUT_MIN_NODES - 1, 2)
    assert fanout_worthwhile(SCHEDULE_FANOUT_MIN_NODES, 2)
    assert not fanout_worthwhile(10**6, 1)
    monkeypatch.setenv("REPRO_FANOUT_MIN_NODES", "0")
    assert fanout_crossover() == 0
    assert fanout_worthwhile(1, 2)


def test_dcc_schedule_fanout_matches_serial(monkeypatch):
    # Force the pool below the crossover so the test exercises it.
    monkeypatch.setenv("REPRO_FANOUT_MIN_NODES", "0")
    net = build_network(60, Rectangle(0, 0, 3.6, 3.6), 1.0, 1.0, seed=7)
    protected = set(net.boundary_nodes)
    serial = dcc_schedule(net.graph, protected, 4, rng=random.Random(0), workers=1)
    fanned = dcc_schedule(net.graph, protected, 4, rng=random.Random(0), workers=2)
    assert fanned.removed == serial.removed
    assert fanned.deletions_per_round == serial.deletions_per_round
    assert fanned.active.vertex_set() == serial.active.vertex_set()
    # The fan-out tests every candidate eagerly, so it does at least the
    # serial path's verdict work — and its counters must account for it.
    assert (
        fanned.counters.deletability_tests
        > serial.counters.deletability_tests
    )


def test_small_jobs_skip_the_pool_but_match():
    # Below the crossover a workers=2 request silently runs serial:
    # identical schedule, identical (lazy) verdict accounting.
    net = build_network(60, Rectangle(0, 0, 3.6, 3.6), 1.0, 1.0, seed=7)
    protected = set(net.boundary_nodes)
    serial = dcc_schedule(net.graph, protected, 4, rng=random.Random(0), workers=1)
    gated = dcc_schedule(net.graph, protected, 4, rng=random.Random(0), workers=2)
    assert gated.removed == serial.removed
    assert (
        gated.counters.deletability_tests
        == serial.counters.deletability_tests
    )

"""Unit tests for the declared knob registry (repro.knobs).

The registry is the single source of truth for every ``REPRO_*``
environment variable: the accessors parse through it, the bench
fingerprint derives its knob set from it, the README/EXPERIMENTS table
is generated from it, and the drift tests here keep all three in sync
with the source tree.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import knobs

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_sorted_unique_names(self):
        names = [k.name for k in knobs.KNOBS]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_every_entry_is_complete(self):
        for k in knobs.KNOBS:
            assert k.name.startswith("REPRO_")
            assert k.kind in ("flag", "int", "str")
            assert k.layer
            assert k.description

    def test_lookup_and_unknown_hint(self):
        assert knobs.knob("REPRO_SHM").kind == "flag"
        with pytest.raises(KeyError, match="REPRO308"):
            knobs.knob("REPRO_NOPE")

    def test_knob_names_filters(self):
        assert knobs.knob_names() == tuple(k.name for k in knobs.KNOBS)
        fingerprinted = knobs.knob_names(fingerprint=True)
        assert "REPRO_SHM" in fingerprinted
        assert "REPRO_CHAOS" in fingerprinted
        assert "REPRO_BENCH_SCALE" not in fingerprinted
        assert set(knobs.knob_names(layer="parallel")) <= set(
            knobs.knob_names()
        )


class TestAccessors:
    def test_flag_false_words(self, monkeypatch):
        for word in ("", "0", "false", "off", "no", "False", "OFF"):
            monkeypatch.setenv("REPRO_SHM", word)
            assert knobs.get_flag("REPRO_SHM") is False
        monkeypatch.delenv("REPRO_SHM")
        assert knobs.get_flag("REPRO_SHM") is False
        for word in ("1", "true", "yes", "warn"):
            monkeypatch.setenv("REPRO_SHM", word)
            assert knobs.get_flag("REPRO_SHM") is True

    def test_int_default_and_parse(self, monkeypatch):
        monkeypatch.delenv("REPRO_FANOUT_MIN_NODES", raising=False)
        assert knobs.get_int("REPRO_FANOUT_MIN_NODES") == 2000
        monkeypatch.setenv("REPRO_FANOUT_MIN_NODES", "17")
        assert knobs.get_int("REPRO_FANOUT_MIN_NODES") == 17
        monkeypatch.setenv("REPRO_FANOUT_MIN_NODES", "not-a-number")
        assert knobs.get_int("REPRO_FANOUT_MIN_NODES") == 2000

    def test_int_without_declared_default_raises_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SHARDS", raising=False)
        with pytest.raises(ValueError):
            knobs.get_int("REPRO_BENCH_SHARDS")
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "3")
        assert knobs.get_int("REPRO_BENCH_SHARDS") == 3

    def test_str_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert knobs.get_str("REPRO_BENCH_SCALE") == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert knobs.get_str("REPRO_BENCH_SCALE") == "smoke"


class TestConsumersAgree:
    def test_fanout_crossover_reads_the_registry(self, monkeypatch):
        from repro.parallel.runner import (
            SCHEDULE_FANOUT_MIN_NODES,
            fanout_crossover,
        )

        declared = int(knobs.knob("REPRO_FANOUT_MIN_NODES").default)
        assert SCHEDULE_FANOUT_MIN_NODES == declared == 2000
        monkeypatch.delenv("REPRO_FANOUT_MIN_NODES", raising=False)
        assert fanout_crossover() == declared
        monkeypatch.setenv("REPRO_FANOUT_MIN_NODES", "0")
        assert fanout_crossover() == 0

    def test_bench_fingerprint_derives_from_registry(self):
        from repro.obs.bench import KNOB_NAMES

        assert KNOB_NAMES == knobs.knob_names(fingerprint=True)


class TestDrift:
    def test_every_env_token_in_tree_is_declared(self):
        """No REPRO_* env name appears in src/benchmarks undeclared."""
        token = re.compile(r"\bREPRO_[A-Z][A-Z_]*\b")
        declared = set(knobs.knob_names())
        undeclared = {}
        for base in ("src", "benchmarks"):
            for path in sorted((REPO_ROOT / base).rglob("*.py")):
                for name in token.findall(path.read_text()):
                    if name not in declared:
                        undeclared.setdefault(name, path.name)
        assert not undeclared, f"undeclared knob tokens: {undeclared}"

    def test_docs_tables_are_current(self):
        """README/EXPERIMENTS carry the generated table verbatim."""
        block = knobs.docs_block()
        for name in ("README.md", "EXPERIMENTS.md"):
            text = (REPO_ROOT / name).read_text()
            assert block in text, (
                f"{name} knob table is stale: run `python -m repro.knobs "
                "--write`"
            )
        assert (
            knobs.update_docs(
                [REPO_ROOT / "README.md", REPO_ROOT / "EXPERIMENTS.md"],
                check=True,
            )
            == []
        )

    def test_update_docs_requires_markers(self, tmp_path):
        target = tmp_path / "DOC.md"
        target.write_text("no markers here\n")
        with pytest.raises(ValueError):
            knobs.update_docs([target])

    def test_update_docs_rewrites_stale_block(self, tmp_path):
        target = tmp_path / "DOC.md"
        target.write_text(
            f"prefix\n{knobs.DOCS_BEGIN}\nstale\n{knobs.DOCS_END}\nsuffix\n"
        )
        assert knobs.update_docs([target]) == [target]
        assert knobs.docs_block() in target.read_text()
        assert knobs.update_docs([target], check=True) == []

    def test_cli_check_mode(self, tmp_path, capsys):
        target = tmp_path / "DOC.md"
        target.write_text(f"{knobs.DOCS_BEGIN}\nstale\n{knobs.DOCS_END}\n")
        assert knobs.main(["--check", str(target)]) == 1
        assert knobs.main(["--write", str(target)]) == 0
        assert knobs.main(["--check", str(target)]) == 0

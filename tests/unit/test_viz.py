"""Unit tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.network.topologies import triangulated_grid
from repro.viz.svg import (
    SvgCanvas,
    render_coverage_report,
    render_network,
    render_schedule,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_empty_canvas_is_valid_svg(self):
        root = parse(SvgCanvas().render())
        assert root.tag == f"{SVG_NS}svg"

    def test_elements_rendered(self):
        canvas = SvgCanvas()
        canvas.line((0, 0), (1, 1))
        canvas.circle((0.5, 0.5))
        canvas.square((1, 0))
        canvas.label((0, 1), "hello <&>")
        root = parse(canvas.render())
        tags = [child.tag.replace(SVG_NS, "") for child in root]
        assert tags.count("line") == 1
        assert tags.count("circle") == 1
        assert tags.count("rect") == 2  # background + square
        assert tags.count("text") == 1
        text = [c for c in root if c.tag == f"{SVG_NS}text"][0]
        assert text.text == "hello <&>"

    def test_coordinates_fit_viewport(self):
        canvas = SvgCanvas(width=400, height=300, margin=10)
        canvas.circle((-100, 50))
        canvas.circle((900, -70))
        root = parse(canvas.render())
        for circle in root.iter(f"{SVG_NS}circle"):
            assert 0 <= float(circle.get("cx")) <= 400
            assert 0 <= float(circle.get("cy")) <= 300

    def test_save(self, tmp_path):
        canvas = SvgCanvas()
        canvas.circle((0, 0))
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<svg")


class TestRenderers:
    @pytest.fixture
    def mesh(self):
        return triangulated_grid(4, 4)

    def test_render_network_counts(self, mesh):
        svg = render_network(
            mesh.graph, mesh.positions, mesh.outer_boundary, title="net"
        ).render()
        root = parse(svg)
        circles = list(root.iter(f"{SVG_NS}circle"))
        rects = list(root.iter(f"{SVG_NS}rect"))
        boundary = set(mesh.outer_boundary)
        assert len(circles) == len(mesh.graph) - len(boundary)
        assert len(rects) == len(boundary) + 1  # + background
        lines = list(root.iter(f"{SVG_NS}line"))
        assert len(lines) == mesh.graph.num_edges()

    def test_render_schedule_fades_sleepers(self, mesh):
        active = mesh.graph.induced_subgraph(mesh.outer_boundary)
        svg = render_schedule(
            mesh.graph, active, mesh.positions, mesh.outer_boundary
        ).render()
        root = parse(svg)
        faded = [
            c
            for c in root.iter(f"{SVG_NS}circle")
            if c.get("fill") == "#dddddd"
        ]
        interior = len(mesh.graph) - len(set(mesh.outer_boundary))
        assert len(faded) == interior

    def test_render_coverage_report(self):
        svg = render_coverage_report(
            [(0, 0), (1, 1)], 0.5, [[(0.5, 0.5)], [(2, 2), (2.1, 2)]],
            title="holes",
        ).render()
        root = parse(svg)
        squares = [r for r in root.iter(f"{SVG_NS}rect")][1:]
        assert len(squares) == 3

"""Unit tests for GF(2) Betti numbers and relative homology."""

import pytest

from repro.homology.boundary_ops import (
    boundary_1_columns,
    boundary_2_columns,
    edge_chain_basis,
    gf2_column_rank,
    vertex_chain_basis,
)
from repro.homology.homology import (
    betti_numbers,
    first_homology_trivial,
    relative_betti_1,
    relative_first_homology_trivial,
)
from repro.homology.simplicial import FenceSubcomplex, RipsComplex
from repro.network.graph import NetworkGraph


class TestBoundaryOperators:
    def test_rank_of_partial1_is_v_minus_c(self, wheel8):
        edge_basis = edge_chain_basis(wheel8)
        vertex_basis = vertex_chain_basis(wheel8)
        columns = boundary_1_columns(wheel8, edge_basis, vertex_basis)
        assert gf2_column_rank(columns) == len(wheel8) - 1

    def test_partial2_of_wheel(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        edge_basis = edge_chain_basis(wheel8)
        columns = boundary_2_columns(complex_, edge_basis)
        # 8 triangles, cycle space dim 8: triangles span it fully
        assert gf2_column_rank(columns) == 8

    def test_excluded_edges_are_dropped(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        rim = frozenset({(i, (i + 1) % 8 if i + 1 < 8 else 0) for i in range(8)})
        fence = FenceSubcomplex.from_cycle(list(range(8)))
        edge_basis = edge_chain_basis(wheel8, exclude=set(fence.edges))
        assert len(edge_basis) == 16 - 8


class TestAbsoluteHomology:
    def test_disk_is_trivial(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        betti = betti_numbers(complex_)
        assert (betti.b0, betti.b1) == (1, 0)
        assert first_homology_trivial(complex_)

    def test_circle_has_b1_one(self, c6):
        betti = betti_numbers(RipsComplex.from_graph(c6))
        assert (betti.b0, betti.b1) == (1, 1)

    def test_mobius_band_has_b1_one(self, mobius):
        betti = betti_numbers(RipsComplex.from_graph(mobius.graph))
        assert (betti.b0, betti.b1) == (1, 1)

    def test_two_components(self):
        # two disjoint 3-cliques: both triangles are filled in the Rips
        # complex, so each component is a disk
        g = NetworkGraph(range(6), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        betti = betti_numbers(RipsComplex.from_graph(g))
        assert betti.b0 == 2
        assert betti.b1 == 0

    def test_annulus_band(self, annulus):
        betti = betti_numbers(RipsComplex.from_graph(annulus.graph))
        assert (betti.b0, betti.b1) == (1, 1)


class TestRelativeHomology:
    def test_disk_rel_boundary_is_trivial_h1(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        fence = FenceSubcomplex.from_cycle(list(range(8)))
        assert relative_betti_1(complex_, fence) == 0
        assert relative_first_homology_trivial(complex_, fence)

    def test_annulus_rel_both_boundaries(self, annulus):
        complex_ = RipsComplex.from_graph(annulus.graph)
        fence = FenceSubcomplex.from_cycles(
            [annulus.outer_boundary, annulus.inner_boundary]
        )
        # H1(annulus, boundary) = Z over GF(2): dimension 1
        assert relative_betti_1(complex_, fence) == 1

    def test_annulus_rel_outer_only(self, annulus):
        complex_ = RipsComplex.from_graph(annulus.graph)
        fence = FenceSubcomplex.from_cycle(annulus.outer_boundary)
        # the outer circle generates H1 of the annulus, so rel H1 vanishes
        assert relative_betti_1(complex_, fence) == 0

    def test_mobius_rel_rim_is_nontrivial(self, mobius):
        complex_ = RipsComplex.from_graph(mobius.graph)
        fence = FenceSubcomplex.from_cycle(mobius.outer_boundary)
        assert relative_betti_1(complex_, fence) == 1

    def test_missing_fence_vertex_raises(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        fence = FenceSubcomplex.from_cycle([100, 101, 102])
        with pytest.raises(KeyError):
            relative_betti_1(complex_, fence)

    def test_free_component_contributes_cycles(self):
        # fence on one component; the other is a hollow square whose cycle
        # is a relative 1-cycle that nothing fills
        g = NetworkGraph(
            range(7),
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)],
        )
        complex_ = RipsComplex.from_graph(g)
        fence = FenceSubcomplex.from_cycle([0, 1, 2])
        assert relative_betti_1(complex_, fence) == 1

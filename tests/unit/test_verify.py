"""Unit tests for the repro-verify front: protocol, locality, model, CLI."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.checks.engine import LintEngine
from repro.checks.locality import default_locality_rules
from repro.checks.model import (
    _all_connected_graphs,
    _run_flood,
    _run_gossip,
    check_model,
    graph_catalog,
)
from repro.checks.protocol import (
    FloodSpec,
    ProtocolContract,
    check_constants,
    extract_contract,
)
from repro.checks.verify_cli import main as verify_main
from repro.obs.tracer import Tracer

REPO_ROOT = Path(__file__).resolve().parents[2]
RUNTIME = REPO_ROOT / "src" / "repro" / "runtime"


# ----------------------------------------------------------------------
# Fixture source: a minimal, *correct* one-kind flood protocol
# ----------------------------------------------------------------------
CLEAN_PROTO = '''
from dataclasses import dataclass
from enum import Enum


class MessageKind(Enum):
    PING = "ping"


@dataclass(frozen=True)
class PingPayload:
    origin: int
    ttl: int


def flood(sim, nodes, k, seen):
    for v in nodes:
        sim.send(Message(MessageKind.PING, src=v,
                         payload=PingPayload(origin=v, ttl=k - 1)))
    for __ in range(k):
        sim.step()
        for node in nodes:
            for msg in sim.inbox(node):
                if msg.kind is not MessageKind.PING:
                    sim.stats.record_drop(msg.kind.value)
                    continue
                payload = msg.payload
                if payload.ttl > 0 and payload.origin not in seen:
                    sim.send(Message(MessageKind.PING, src=node,
                                     payload=PingPayload(origin=payload.origin,
                                                         ttl=payload.ttl - 1)))
'''


def extract_source(tmp_path: Path, source: str, rel: str = "repro/runtime/proto.py"):
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return extract_contract([target], root=tmp_path)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# Contract extraction on the real runtime
# ----------------------------------------------------------------------
class TestRealRuntimeContract:
    @pytest.fixture(scope="class")
    def extracted(self):
        return extract_contract([RUNTIME], root=REPO_ROOT)

    def test_extraction_is_clean(self, extracted):
        __, findings = extracted
        assert findings == []

    def test_matrix_is_total(self, extracted):
        contract, __ = extracted
        assert set(contract.kinds) == {"TOPOLOGY", "PRIORITY", "DELETE"}
        for kind, cell in contract.matrix().items():
            assert cell["sent"] >= 1, kind
            assert cell["handled"] >= 1, kind

    def test_floods_fully_proven(self, extracted):
        contract, __ = extracted
        assert set(contract.floods) == {"PRIORITY", "DELETE"}
        assert contract.floods["DELETE"].radius_symbol == "k"
        assert contract.floods["PRIORITY"].radius_symbol == "m"
        for spec in contract.floods.values():
            assert spec.decrements and spec.guarded and spec.dedup_by_origin

    def test_topology_is_the_gossip_kind(self, extracted):
        contract, __ = extracted
        assert contract.gossip_kinds == ("TOPOLOGY",)

    def test_constants_consistent(self):
        assert check_constants(REPO_ROOT) == []


# ----------------------------------------------------------------------
# REPRO20x on synthetic fixtures
# ----------------------------------------------------------------------
class TestProtocolRules:
    def test_clean_fixture_has_no_findings(self, tmp_path):
        contract, findings = extract_source(tmp_path, CLEAN_PROTO)
        assert findings == []
        spec = contract.floods["PING"]
        assert spec.radius_symbol == "k"
        assert spec.decrements and spec.guarded and spec.dedup_by_origin

    def test_sent_unhandled(self, tmp_path):
        source = CLEAN_PROTO.replace(
            '    PING = "ping"',
            '    PING = "ping"\n    PONG = "pong"',
        ).replace(
            "    for __ in range(k):",
            "    sim.send(Message(MessageKind.PONG, src=0, payload=None))\n"
            "    for __ in range(k):",
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO201" in rules_of(findings)

    def test_dead_kind_is_handled_unsent(self, tmp_path):
        source = CLEAN_PROTO.replace(
            '    PING = "ping"',
            '    PING = "ping"\n    DEAD = "dead"',
        )
        __, findings = extract_source(tmp_path, source)
        assert rules_of(findings) == ["REPRO202"]
        assert "DEAD" in findings[0].message

    def test_handler_for_unsent_kind(self, tmp_path):
        source = CLEAN_PROTO.replace(
            '    PING = "ping"',
            '    PING = "ping"\n    PONG = "pong"',
        ).replace(
            "                payload = msg.payload",
            "                if msg.kind is MessageKind.PONG:\n"
            "                    pass\n"
            "                payload = msg.payload",
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO202" in rules_of(findings)

    def test_unknown_payload_field_read(self, tmp_path):
        source = CLEAN_PROTO.replace(
            "if payload.ttl > 0", "if payload.hops > 0"
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO203" in rules_of(findings)
        assert any("hops" in f.message for f in findings)

    def test_constructor_with_unknown_field(self, tmp_path):
        source = CLEAN_PROTO.replace(
            "PingPayload(origin=v, ttl=k - 1)",
            "PingPayload(origin=v, ttl=k - 1, color=3)",
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO203" in rules_of(findings)

    def test_constructor_missing_field(self, tmp_path):
        source = CLEAN_PROTO.replace(
            "PingPayload(origin=v, ttl=k - 1)", "PingPayload(origin=v)"
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO203" in rules_of(findings)
        assert any("ttl" in f.message for f in findings)

    def test_relay_without_decrement(self, tmp_path):
        source = CLEAN_PROTO.replace("ttl=payload.ttl - 1", "ttl=payload.ttl")
        contract, findings = extract_source(tmp_path, source)
        assert "REPRO204" in rules_of(findings)
        assert contract.floods["PING"].decrements is False

    def test_relay_without_guard(self, tmp_path):
        source = CLEAN_PROTO.replace(
            "if payload.ttl > 0 and payload.origin not in seen:",
            "if payload.origin not in seen:",
        )
        contract, findings = extract_source(tmp_path, source)
        assert "REPRO204" in rules_of(findings)
        assert contract.floods["PING"].guarded is False

    def test_silent_drop(self, tmp_path):
        source = CLEAN_PROTO.replace(
            "                    sim.stats.record_drop(msg.kind.value)\n", ""
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO205" in rules_of(findings)

    def test_silent_drop_suppressible(self, tmp_path):
        source = CLEAN_PROTO.replace(
            "                    sim.stats.record_drop(msg.kind.value)\n", ""
        ).replace(
            "                if msg.kind is not MessageKind.PING:",
            "                # repro: allow[silent-drop] fixture\n"
            "                if msg.kind is not MessageKind.PING:",
        )
        __, findings = extract_source(tmp_path, source)
        assert "REPRO205" not in rules_of(findings)


class TestConstantConsistency:
    def _write(self, tmp_path: Path, rel: str, source: str) -> None:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))

    def test_drifted_derivation_is_flagged(self, tmp_path):
        self._write(
            tmp_path,
            "src/repro/core/vpt.py",
            """
            def deletion_radius(tau):
                return neighborhood_radius(tau) + 1
            """,
        )
        findings = check_constants(tmp_path)
        assert rules_of(findings) == ["REPRO206"]
        assert "neighborhood_radius(tau) + 1" in findings[0].message

    def test_missing_site_is_flagged(self, tmp_path):
        self._write(
            tmp_path, "src/repro/core/vpt.py", "X = 1\n"
        )
        findings = check_constants(tmp_path)
        assert rules_of(findings) == ["REPRO206"]
        assert "not found" in findings[0].message

    def test_absent_modules_are_skipped(self, tmp_path):
        assert check_constants(tmp_path) == []


# ----------------------------------------------------------------------
# REPRO21x locality rules
# ----------------------------------------------------------------------
class TestLocalityRules:
    def lint(self, tmp_path: Path, source: str, rel="repro/runtime/logic.py"):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        engine = LintEngine(list(default_locality_rules()), root=tmp_path)
        return engine.lint([target])

    def test_real_runtime_is_clean(self):
        engine = LintEngine(list(default_locality_rules()), root=REPO_ROOT)
        assert engine.lint([RUNTIME]) == []

    def test_global_graph_read_flagged(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def decide(sim):
                for node in sim.active:
                    if sim.graph.degree(node) > 1:
                        pass
            """,
        )
        assert rules_of(findings) == ["REPRO210"]

    def test_allow_comment_suppresses(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def bootstrap(self, sim, node):
                # repro: allow[global-graph-read] bootstrap only
                return sim.graph.neighbors(node)
            """,
        )
        assert findings == []

    def test_foreign_view_access_flagged(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def peek(self, sim):
                for node in sim.active:
                    other = self.views[node + 1]
                    gone = self.views.pop(3, None)
            """,
        )
        assert rules_of(findings) == ["REPRO211"]
        assert len(findings) == 2

    def test_own_view_access_is_fine(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def read(self, sim, winner):
                for node in sim.active:
                    view = self.views[node]
                self.views.pop(winner, None)
            """,
        )
        assert findings == []

    def test_inbox_confinement_flagged(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def eavesdrop(sim):
                for node in sim.active:
                    for msg in sim.inbox(0):
                        pass
            """,
        )
        assert rules_of(findings) == ["REPRO212"]

    def test_substrate_files_are_exempt(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def deliver(sim):
                return sim.graph
            """,
            rel="repro/runtime/simulator.py",
        )
        assert findings == []

    def test_non_runtime_files_are_exempt(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def analyse(sim):
                return sim.graph
            """,
            rel="repro/analysis/report.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# REPRO22x bounded model checking
# ----------------------------------------------------------------------
def _contract_with(spec: FloodSpec) -> ProtocolContract:
    contract = ProtocolContract()
    contract.kinds = (spec.kind,)
    contract.floods = {spec.kind: spec}
    return contract


GOOD_SPEC = FloodSpec(
    kind="DELETE",
    initial_ttl="self.k - 1",
    radius_symbol="k",
    decrements=True,
    guarded=True,
    dedup_by_origin=True,
)


class TestModelChecker:
    def test_catalog_is_exhaustive_for_small_n(self):
        assert len(_all_connected_graphs(2)) == 1
        assert len(_all_connected_graphs(3)) == 4
        assert len(_all_connected_graphs(4)) == 38
        cases = graph_catalog(6)
        assert len(cases) == 1 + 4 + 38 + 6 + 8
        assert all(n <= 4 for n, __ in graph_catalog(4))

    def test_real_contract_verifies(self):
        contract, __ = extract_contract([RUNTIME], root=REPO_ROOT)
        report = check_model(contract, taus=(3,), max_n=4)
        assert report.findings == []
        assert report.flood_cases > 0
        assert report.gossip_cases > 0
        assert report.max_branch_width == 1  # the intact contract is
        # order-insensitive: every interleaving collapses to one outcome
        assert report.truncated_cases == 0

    def test_missing_decrement_breaks_coverage(self):
        spec = FloodSpec("DELETE", "self.k - 1", "k",
                         decrements=False, guarded=True, dedup_by_origin=True)
        report = check_model(_contract_with(spec), taus=(3,), max_n=4)
        assert rules_of(report.findings) == ["REPRO221"]

    def test_unbounded_flood_breaks_termination(self):
        spec = FloodSpec("DELETE", "self.k - 1", "k",
                         decrements=False, guarded=False, dedup_by_origin=False)
        report = check_model(_contract_with(spec), taus=(3,), max_n=3)
        assert "REPRO220" in rules_of(report.findings)

    def test_missing_guard_overshoots_by_one_hop(self):
        spec = FloodSpec("DELETE", "self.k - 1", "k",
                         decrements=True, guarded=False, dedup_by_origin=True)
        report = check_model(_contract_with(spec), taus=(3,), max_n=4)
        assert "REPRO221" in rules_of(report.findings)

    def test_underivable_radius_is_reported(self):
        spec = FloodSpec("DELETE", "budget", None,
                         decrements=True, guarded=True, dedup_by_origin=True)
        report = check_model(_contract_with(spec), taus=(3,), max_n=2)
        assert "REPRO221" in rules_of(report.findings)
        assert "unverifiable" in report.findings[0].message

    def test_counterexamples_reach_the_tracer(self):
        spec = FloodSpec("DELETE", "self.k - 1", "k",
                         decrements=False, guarded=True, dedup_by_origin=True)
        tracer = Tracer()
        check_model(_contract_with(spec), taus=(3,), max_n=4, tracer=tracer)
        spans = [s for s in tracer.spans() if s.name == "verify.counterexample"]
        assert spans
        attrs = spans[0].attrs
        assert attrs["rule"] == "REPRO221"
        assert {"graph", "origin", "tau", "got", "expected"} <= set(attrs)

    def test_gossip_round_budget_is_sharp(self):
        # path 0-1-2-3-4: after k=2 rounds node 0 knows exactly its 2-ball;
        # one round fewer and the far rows are missing.
        adj = {0: frozenset({1}), 1: frozenset({0, 2}),
               2: frozenset({1, 3}), 3: frozenset({2, 4}), 4: frozenset({3})}
        views, converged, __ = _run_gossip(adj, rounds=2)
        assert converged
        assert set(views[0]) == {0, 1, 2}
        assert views[0][2] == adj[2]
        short_views, __, __ = _run_gossip(adj, rounds=1)
        assert set(short_views[0]) == {0, 1}

    def test_view_divergence_is_reported(self, monkeypatch):
        # First-writer-wins over *consistent* rows is confluent, so a
        # divergence can only come from a broken merge; fake one to pin
        # the REPRO222 reporting path.
        import repro.checks.model as model_mod

        def broken_gossip(adj, rounds):
            views = {v: {v: adj[v]} for v in adj}
            return views, False, 0

        monkeypatch.setattr(model_mod, "_run_gossip", broken_gossip)
        contract = ProtocolContract()
        contract.gossip_kinds = ("TOPOLOGY",)
        report = check_model(contract, taus=(3,), max_n=2)
        assert "REPRO222" in rules_of(report.findings)

    def test_flood_execution_matches_bfs_ball(self):
        # prism graph, radius 2: coverage must equal the 2-ball (origin
        # included — a neighbour echoes the notice back).
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5),
                 (0, 3), (1, 4), (2, 5)]
        adj = {v: frozenset(u for a, b in edges for u in (a, b)
                            if v in (a, b) and u != v) for v in range(6)}
        res = _run_flood(adj, 0, 2, GOOD_SPEC, max_rounds=4)
        assert res.terminated
        assert res.coverages == {frozenset(range(6))}


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------
class TestVerifyCli:
    def test_list_rules(self, capsys):
        assert verify_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REPRO201", "REPRO206", "REPRO210", "REPRO212",
                        "REPRO220", "REPRO222"):
            assert rule_id in out

    def test_repo_verifies_clean(self, capsys):
        code = verify_main(
            ["src/repro/runtime", "--root", str(REPO_ROOT),
             "--max-n", "4", "--tau", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out
        assert "model checked" in out

    def test_json_report_shape(self, capsys):
        code = verify_main(
            ["src/repro/runtime", "--root", str(REPO_ROOT),
             "--json", "--max-n", "3", "--tau", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-verify/v1"
        assert payload["count"] == 0
        matrix = payload["contract"]["matrix"]
        assert set(matrix) == {"TOPOLOGY", "PRIORITY", "DELETE"}
        assert payload["model"]["graphs_checked"] > 0
        assert payload["contract"]["floods"]["DELETE"]["decrements"] is True

    def test_skip_model_omits_model_section(self, capsys):
        code = verify_main(
            ["src/repro/runtime", "--root", str(REPO_ROOT),
             "--json", "--skip-model"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] is None

    def test_violations_fail_and_baseline_parks_them(self, tmp_path, capsys):
        target = tmp_path / "repro" / "runtime" / "proto.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            CLEAN_PROTO.replace("ttl=payload.ttl - 1", "ttl=payload.ttl")
        )
        argv = [str(target), "--root", str(tmp_path), "--skip-model"]
        assert verify_main(argv) == 1
        assert "REPRO204" in capsys.readouterr().out
        assert verify_main(argv + ["--update-baseline"]) == 0
        capsys.readouterr()
        assert verify_main(argv) == 0
        assert "baselined" in capsys.readouterr().out

"""Unit tests for the REPRO3xx concurrency rules and the repro-race CLI.

Each rule gets a positive fixture (the violation fires) and a negative
fixture (the sanctioned idiom passes).  The sweep test at the bottom
encodes the acceptance criterion: the real source tree is clean under
every rule with an empty baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.checks.concurrency import CONCURRENCY_RULES, concurrency_rules
from repro.checks.engine import lint_paths
from repro.checks.race_cli import main as race_main

REPO_ROOT = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def race_source(tmp_path: Path, source: str, rel: str = "repro/parallel/mod.py"):
    """Write ``source`` under ``tmp_path`` and run the REPRO3xx rules."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    findings, _ = lint_paths([target], concurrency_rules(), root=tmp_path)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# REPRO301: shm-create-scope
# ----------------------------------------------------------------------
class TestShmCreateScope:
    def test_flags_create_outside_publish_module(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def grab():
                return SharedMemory(create=True, size=64)
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO301" in rules_of(findings)

    def test_publish_module_may_create(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def publish():
                return SharedMemory(create=True, size=64)
            """,
            rel="repro/parallel/shm.py",
        )
        assert "REPRO301" not in rules_of(findings)

    def test_attach_is_not_a_create(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO301" not in rules_of(findings)

    def test_out_of_scope_tree_ignored(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def whatever():
                return SharedMemory(create=True, size=64)
            """,
            rel="repro/analysis/tool.py",
        )
        assert "REPRO301" not in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO302: shm-lifecycle
# ----------------------------------------------------------------------
class TestShmLifecycle:
    def test_flags_fall_through_only_close(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            def run(blocks):
                seg = publish_blocks(blocks)
                do_work(seg)
                seg.close()
            """,
        )
        assert "REPRO302" in rules_of(findings)

    def test_flags_never_closed(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            def run(blocks):
                seg = publish_blocks(blocks)
                do_work(seg)
            """,
        )
        assert "REPRO302" in rules_of(findings)

    def test_try_finally_close_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            def run(blocks):
                seg = publish_blocks(blocks)
                try:
                    do_work(seg)
                finally:
                    seg.close()
            """,
        )
        assert "REPRO302" not in rules_of(findings)

    def test_with_statement_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            def run(blocks):
                with publish_blocks(blocks) as seg:
                    do_work(seg)
            """,
        )
        assert "REPRO302" not in rules_of(findings)

    def test_returning_the_handle_transfers_ownership(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            def run(blocks):
                seg = publish_blocks(blocks)
                return seg
            """,
        )
        assert "REPRO302" not in rules_of(findings)

    def test_self_attr_without_teardown_flagged(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            class Pool:
                def __init__(self, blocks):
                    self._segment = publish_blocks(blocks)
            """,
        )
        assert "REPRO302" in rules_of(findings)

    def test_self_attr_with_closing_teardown_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            class Pool:
                def __init__(self, blocks):
                    self._segment = publish_blocks(blocks)

                def close(self):
                    if self._segment is not None:
                        self._segment.close()
            """,
        )
        assert "REPRO302" not in rules_of(findings)

    def test_append_to_self_list_with_teardown_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.parallel.shm import publish_blocks

            class Pool:
                def __init__(self, parts):
                    self._segments = []
                    for part in parts:
                        segment = publish_blocks(part)
                        self._segments.append(segment)

                def close(self):
                    for segment in self._segments:
                        segment.close()
            """,
        )
        assert "REPRO302" not in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO303: shm-worker-discipline
# ----------------------------------------------------------------------
class TestShmWorkerDiscipline:
    def test_flags_worker_unlink(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            def drop(segment):
                segment.unlink()
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO303" in rules_of(findings)

    def test_os_unlink_is_filesystem_not_segment(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            def cleanup(path):
                os.unlink(path)
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO303" not in rules_of(findings)

    def test_flags_write_through_attached_buffer(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import numpy as np

            def corrupt(buf):
                view = np.frombuffer(buf, dtype=np.int64)
                view[0] = 7
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO303" in rules_of(findings)

    def test_copy_out_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import numpy as np

            def copy_out(buf):
                view = np.frombuffer(buf, dtype=np.int64)
                return view.copy()
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO303" not in rules_of(findings)

    def test_flags_writable_mmap(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import mmap

            def attach(fd, nbytes):
                return mmap.mmap(fd, nbytes)
            """,
            rel="repro/shard/segment.py",
        )
        assert "REPRO303" in rules_of(findings)

    def test_read_only_mmap_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import mmap

            def attach(fd, nbytes):
                return mmap.mmap(fd, nbytes, access=mmap.ACCESS_READ)
            """,
            rel="repro/shard/segment.py",
        )
        assert "REPRO303" not in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO304: shm-attach-drop
# ----------------------------------------------------------------------
class TestShmAttachDrop:
    def test_flags_attachment_without_finally(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.shard.segment import attach_blocks

            def load(descriptor):
                blocks, attachment = attach_blocks(descriptor)
                return consume(blocks)
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO304" in rules_of(findings)

    def test_finally_close_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.shard.segment import attach_blocks

            def load(descriptor):
                blocks, attachment = attach_blocks(descriptor)
                try:
                    return consume(blocks)
                finally:
                    attachment.close()
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO304" not in rules_of(findings)

    def test_returned_attachment_transfers_ownership(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro.shard.segment import attach_blocks

            def open_blocks(descriptor):
                return attach_blocks(descriptor)
            """,
            rel="repro/shard/runtime.py",
        )
        assert "REPRO304" not in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO305: pool-boundary-callable
# ----------------------------------------------------------------------
class TestPoolBoundaryCallable:
    def test_flags_lambda_submit(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            def fan(pool, items):
                return [pool.submit(lambda x: x + 1, item) for item in items]
            """,
        )
        assert "REPRO305" in rules_of(findings)

    def test_flags_nested_function(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            def fan(pool, items):
                def task(x):
                    return x + 1
                return [pool.submit(task, item) for item in items]
            """,
        )
        assert "REPRO305" in rules_of(findings)

    def test_module_level_function_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            def task(x):
                return x + 1

            def fan(pool, items):
                return [pool.submit(task, item) for item in items]
            """,
        )
        assert "REPRO305" not in rules_of(findings)

    def test_flags_lambda_initializer(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor

            def pool():
                return ProcessPoolExecutor(2, initializer=lambda: None)
            """,
        )
        assert "REPRO305" in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO306: pool-boundary-args
# ----------------------------------------------------------------------
class TestPoolBoundaryArgs:
    def test_flags_rich_object_argument(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            def fan(pool, task, graph):
                return pool.submit(task, graph)
            """,
        )
        assert "REPRO306" in rules_of(findings)

    def test_flags_rich_attribute_argument(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import multiprocessing as mp

            def spawn(main, self_like):
                return mp.Process(target=main, args=(self_like.engine,))
            """,
        )
        assert "REPRO306" in rules_of(findings)

    def test_compact_payloads_pass(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            def fan(pool, task, blob, descriptor, rows):
                return pool.submit(task, blob, descriptor, rows)
            """,
        )
        assert "REPRO306" not in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO307: fork-inherited-state
# ----------------------------------------------------------------------
class TestForkInheritedState:
    def test_flags_runtime_mutated_global_without_hook(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            _CACHE = None

            def set_cache(value):
                global _CACHE
                _CACHE = value
            """,
        )
        assert "REPRO307" in rules_of(findings)

    def test_reset_named_hook_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            _CACHE = None

            def set_cache(value):
                global _CACHE
                _CACHE = value

            def reset_cache():
                global _CACHE
                _CACHE = None
            """,
        )
        assert "REPRO307" not in rules_of(findings)

    def test_env_derived_state_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            from repro import knobs

            _HARNESS = None

            def current_harness():
                global _HARNESS
                if not knobs.get_flag("REPRO_CHAOS"):
                    return None
                if _HARNESS is None:
                    _HARNESS = object()
                return _HARNESS
            """,
        )
        assert "REPRO307" not in rules_of(findings)

    def test_constant_table_is_not_state(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            TABLE = {"a": 1}

            def lookup(key):
                return TABLE[key]
            """,
        )
        assert "REPRO307" not in rules_of(findings)


# ----------------------------------------------------------------------
# REPRO308: knob-registry
# ----------------------------------------------------------------------
class TestKnobRegistry:
    def test_flags_undeclared_env_read(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            FLAG = os.environ.get("REPRO_UNDECLARED", "")
            """,
            rel="repro/analysis/tool.py",
        )
        assert "REPRO308" in rules_of(findings)

    def test_flags_undeclared_getenv_and_subscript(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            A = os.getenv("REPRO_ALSO_MISSING")
            B = os.environ["REPRO_MISSING_TOO"]
            """,
        )
        assert rules_of(findings) == ["REPRO308"]
        assert len(findings) == 2

    def test_declared_read_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            VALUE = os.environ.get("REPRO_SANITIZE", "")
            """,
        )
        assert "REPRO308" not in rules_of(findings)

    def test_flags_default_mismatch(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
            """,
        )
        assert "REPRO308" in rules_of(findings)
        assert "default mismatch" in findings[0].message

    def test_matching_default_passes(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
            """,
        )
        assert "REPRO308" not in rules_of(findings)

    def test_non_repro_env_ignored(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            HOME = os.environ.get("HOME", "/")
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions, registry metadata, CLI
# ----------------------------------------------------------------------
class TestSuppression:
    def test_allow_comment_silences_by_id_and_name(self, tmp_path):
        findings = race_source(
            tmp_path,
            """
            import os

            A = os.environ.get("REPRO_SECRET")  # repro: allow[REPRO308] legacy
            # repro: allow[knob-registry] migrating
            B = os.environ.get("REPRO_OTHER")
            """,
        )
        assert findings == []


class TestRuleRegistry:
    def test_metadata_matches_instances(self):
        rules = concurrency_rules()
        assert [(r.rule_id, r.name, r.summary) for r in rules] == list(
            CONCURRENCY_RULES
        )
        ids = [r.rule_id for r in rules]
        assert ids == sorted(ids)
        assert all(rid.startswith("REPRO30") for rid in ids)


class TestRaceCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert race_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "repro-race: 0 finding(s)" in capsys.readouterr().out

    def test_finding_exits_one_and_json_is_stable(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "parallel" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('import os\nA = os.environ.get("REPRO_NOPE")\n')
        assert race_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        capsys.readouterr()
        assert (
            race_main([str(tmp_path), "--root", str(tmp_path), "--json"]) == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-race/v1"
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "REPRO308"

    def test_baseline_parks_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "parallel" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('import os\nA = os.environ.get("REPRO_NOPE")\n')
        assert (
            race_main([str(tmp_path), "--root", str(tmp_path), "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        assert race_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "(1 baselined)" in capsys.readouterr().out
        assert (
            race_main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
            == 1
        )

    def test_select_and_list_rules(self, tmp_path, capsys):
        assert race_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO301" in out and "knob-registry" in out
        assert race_main([str(tmp_path), "--select", "bogus-rule"]) == 2


class TestRepoSweep:
    def test_source_tree_is_clean(self):
        """The acceptance criterion: repro-race finds nothing in src/."""
        findings, _ = lint_paths(
            [REPO_ROOT / "src"], concurrency_rules(), root=REPO_ROOT
        )
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
        )

    def test_committed_baseline_is_empty(self):
        data = json.loads((REPO_ROOT / "repro-race.baseline.json").read_text())
        assert data["entries"] == []

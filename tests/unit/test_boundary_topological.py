"""Unit tests for location-free (heuristic) boundary recognition."""

import pytest

from repro.boundary.topological import (
    boundary_agreement,
    boundary_candidates_by_neighborhood,
    detect_boundary_nodes,
    neighborhood_sizes,
)
from repro.network.deployment import Rectangle, build_network
from repro.network.topologies import triangulated_grid


class TestNeighborhoodSizes:
    def test_grid_corner_smaller_than_center(self):
        mesh = triangulated_grid(7, 7)
        sizes = neighborhood_sizes(mesh.graph, 2)
        corner, center = 0, 24
        assert sizes[corner] < sizes[center]


class TestCandidates:
    def test_quantile_validation(self, trigrid6):
        with pytest.raises(ValueError):
            boundary_candidates_by_neighborhood(trigrid6.graph, quantile=0.0)

    def test_candidates_prefer_rim(self):
        mesh = triangulated_grid(9, 9)
        candidates = boundary_candidates_by_neighborhood(mesh.graph, 2, 0.3)
        rim = set(mesh.outer_boundary)
        assert len(candidates & rim) / len(candidates) > 0.8


class TestDetection:
    def test_detected_set_is_connected(self):
        net = build_network(250, Rectangle(0, 0, 8, 8), 1.0, 1.0, seed=7)
        detected = detect_boundary_nodes(net.graph)
        sub = net.graph.induced_subgraph(detected)
        assert sub.is_connected()

    def test_reasonable_agreement_with_ground_truth(self):
        net = build_network(250, Rectangle(0, 0, 8, 8), 1.0, 1.0, seed=8)
        detected = detect_boundary_nodes(net.graph)
        scores = boundary_agreement(detected, net.boundary_nodes)
        assert scores["precision"] > 0.6
        assert scores["recall"] > 0.25


class TestAgreementMetric:
    def test_perfect_agreement(self):
        assert boundary_agreement({1, 2}, {1, 2}) == {
            "precision": 1.0,
            "recall": 1.0,
            "f1": 1.0,
        }

    def test_empty_sets(self):
        assert boundary_agreement(set(), {1})["f1"] == 0.0
        assert boundary_agreement({1}, set())["f1"] == 0.0

    def test_partial_overlap(self):
        scores = boundary_agreement({1, 2, 3, 4}, {3, 4, 5, 6})
        assert scores["precision"] == pytest.approx(0.5)
        assert scores["recall"] == pytest.approx(0.5)
        assert scores["f1"] == pytest.approx(0.5)

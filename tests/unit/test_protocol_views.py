"""Unit tests for the DCC protocol's local knowledge structures."""

import random

import pytest

from repro.network.topologies import triangulated_grid
from repro.runtime.protocol import DistributedDCC, _LocalView


class TestLocalView:
    def test_merge_reports_new_rows_only(self):
        view = _LocalView()
        assert view.merge(((1, frozenset({2, 3})),))
        assert not view.merge(((1, frozenset({2, 3})),))  # already known

    def test_merge_does_not_overwrite(self):
        """First-learned adjacency wins; gossip is append-only."""
        view = _LocalView()
        view.merge(((1, frozenset({2})),))
        view.merge(((1, frozenset({2, 3})),))
        assert view.adjacency[1] == frozenset({2})

    def test_forget_removes_node_and_mentions(self):
        view = _LocalView()
        view.merge(((1, frozenset({2, 3})), (2, frozenset({1}))))
        view.forget(2)
        assert 2 not in view.adjacency
        assert 2 not in view.adjacency[1]

    def test_stale_row_cannot_resurrect_forgotten_node(self):
        """A stale TOPOLOGY row must not bring a deleted neighbour back.

        After a DELETE makes a node ``forget(2)``, replaying a surviving
        neighbour's pre-deletion row (which still lists 2) must not
        reintroduce the edge: the key is already known, so the
        ``node not in self.adjacency`` guard rejects the stale copy and
        the cleaned-up row stands.
        """
        view = _LocalView()
        view.merge(((1, frozenset({2, 3})), (2, frozenset({1})), (3, frozenset({1}))))
        view.forget(2)
        assert 2 not in view.adjacency
        assert view.adjacency[1] == frozenset({3})
        # Replay 1's pre-deletion gossip row verbatim.
        assert not view.merge(((1, frozenset({2, 3})),))
        assert view.adjacency[1] == frozenset({3})
        assert 2 not in view.as_graph()

    def test_as_graph_connects_known_rows(self):
        view = _LocalView()
        view.merge(((1, frozenset({2})), (2, frozenset({1, 3}))))
        graph = view.as_graph()
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)  # 3 known only as a neighbour
        assert 3 in graph


class TestTopologyDiscovery:
    @pytest.mark.parametrize("tau,k", [(3, 2), (5, 3)])
    def test_every_node_learns_its_exact_k_ball(self, tau, k):
        mesh = triangulated_grid(5, 5)
        protocol = DistributedDCC(mesh.graph, [], tau, rng=random.Random(0))
        protocol._discover_topology()
        for node in mesh.graph.vertices():
            view = protocol.views[node].as_graph()
            ball = mesh.graph.k_hop_neighborhood(node, k) | {node}
            truth = mesh.graph.induced_subgraph(ball)
            for u, v in truth.edges():
                assert view.has_edge(u, v), (node, u, v)

    def test_discovery_message_count(self):
        mesh = triangulated_grid(4, 4)
        protocol = DistributedDCC(mesh.graph, [], 3, rng=random.Random(0))
        protocol._discover_topology()
        stats = protocol.sim.stats
        # one topology broadcast per node per round, k = 2 rounds
        assert stats.messages_by_kind["topology"] == 2 * len(mesh.graph)

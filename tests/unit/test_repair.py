"""Failure injection and coverage repair tests."""

import random

import pytest

from repro.core.criterion import is_tau_partitionable
from repro.core.repair import (
    assess_failures,
    inject_random_failures,
    repair_coverage,
)
from repro.core.scheduler import dcc_schedule
from repro.network.topologies import triangulated_grid


@pytest.fixture
def scheduled_mesh():
    mesh = triangulated_grid(8, 8)
    boundary = mesh.outer_boundary
    result = dcc_schedule(
        mesh.graph, set(boundary), 6, rng=random.Random(0)
    )
    return mesh, boundary, result


class TestAssessment:
    def test_no_failures_survive(self, scheduled_mesh):
        mesh, boundary, result = scheduled_mesh
        verdict = assess_failures(result.active, [boundary], 6, [])
        assert verdict.criterion_survived
        assert not verdict.needs_repair

    def test_boundary_failure_flagged(self, scheduled_mesh):
        mesh, boundary, result = scheduled_mesh
        verdict = assess_failures(result.active, [boundary], 6, [boundary[0]])
        assert verdict.boundary_hit
        assert verdict.needs_repair

    def test_internal_failure_usually_breaks_sparse_set(self, scheduled_mesh):
        """The scheduler's set is near non-redundant: losing an internal
        active node typically reopens a void."""
        mesh, boundary, result = scheduled_mesh
        internal_active = sorted(result.coverage_set - set(boundary))
        assert internal_active
        broken = 0
        for victim in internal_active[:10]:
            verdict = assess_failures(result.active, [boundary], 6, [victim])
            broken += verdict.needs_repair
        assert broken > 0


class TestRepair:
    def test_repair_restores_criterion(self, scheduled_mesh):
        mesh, boundary, result = scheduled_mesh
        internal_active = sorted(result.coverage_set - set(boundary))
        victim = internal_active[len(internal_active) // 2]
        repaired = repair_coverage(
            mesh.graph,
            result.coverage_set,
            [boundary],
            boundary,
            6,
            [victim],
            rng=random.Random(1),
        )
        assert repaired.restored
        assert victim not in repaired.active
        assert is_tau_partitionable(repaired.active, [boundary], 6)

    def test_noop_when_criterion_survives(self, scheduled_mesh):
        mesh, boundary, result = scheduled_mesh
        # failing a node that never made the coverage set changes nothing
        sleeper = sorted(mesh.graph.vertex_set() - result.coverage_set)[0]
        repaired = repair_coverage(
            mesh.graph,
            result.coverage_set,
            [boundary],
            boundary,
            6,
            [sleeper],
            rng=random.Random(2),
        )
        assert repaired.restored
        assert repaired.woken == []

    def test_boundary_death_unrepairable(self, scheduled_mesh):
        mesh, boundary, result = scheduled_mesh
        repaired = repair_coverage(
            mesh.graph,
            result.coverage_set,
            [boundary],
            boundary,
            6,
            [boundary[0]],
            rng=random.Random(3),
        )
        assert not repaired.restored

    def test_mass_failure_waves(self, scheduled_mesh):
        """Repeated random failure waves stay repaired until impossible."""
        mesh, boundary, result = scheduled_mesh
        rng = random.Random(4)
        full = mesh.graph
        active = set(result.coverage_set)
        failed_total = set()
        for __ in range(4):
            victims = inject_random_failures(
                full.vertex_set() - failed_total,
                3,
                rng,
                spare=set(boundary),
            )
            failed_total |= victims
            repaired = repair_coverage(
                full.induced_subgraph(full.vertex_set() - (failed_total - victims)),
                active - (failed_total - victims),
                [boundary],
                boundary,
                6,
                victims,
                rng=rng,
            )
            if not repaired.restored:
                break
            active = repaired.active.vertex_set()
            assert is_tau_partitionable(repaired.active, [boundary], 6)


class TestInjection:
    def test_spares_are_respected(self):
        rng = random.Random(0)
        victims = inject_random_failures(range(10), 5, rng, spare={0, 1, 2})
        assert victims.isdisjoint({0, 1, 2})
        assert len(victims) == 5

    def test_too_many_failures_rejected(self):
        with pytest.raises(ValueError):
            inject_random_failures(range(3), 5, random.Random(0))

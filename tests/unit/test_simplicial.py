"""Unit tests for Rips complexes and fence subcomplexes."""

import pytest

from repro.homology.simplicial import (
    FenceSubcomplex,
    RipsComplex,
    enumerate_triangles,
)


class TestTriangleEnumeration:
    def test_k4_has_four_triangles(self, k4):
        assert len(enumerate_triangles(k4)) == 4

    def test_triangles_sorted_and_unique(self, k4):
        triangles = enumerate_triangles(k4)
        assert len(set(triangles)) == len(triangles)
        assert all(a < b < c for a, b, c in triangles)

    def test_cycle_has_no_triangles(self, c6):
        assert enumerate_triangles(c6) == []

    def test_wheel_triangles(self, wheel8):
        assert len(enumerate_triangles(wheel8)) == 8


class TestRipsComplex:
    def test_counts(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        assert complex_.num_vertices == 9
        assert complex_.num_edges == 16
        assert complex_.num_triangles == 8

    def test_euler_characteristic_of_disk(self, wheel8):
        # the wheel triangulates a disk: chi = 1
        assert RipsComplex.from_graph(wheel8).euler_characteristic() == 1

    def test_euler_characteristic_of_mobius(self, mobius):
        assert RipsComplex.from_graph(mobius.graph).euler_characteristic() == 0

    def test_validity(self, wheel8):
        complex_ = RipsComplex.from_graph(wheel8)
        assert complex_.is_valid()

    def test_triangle_edges(self, k4):
        complex_ = RipsComplex.from_graph(k4)
        assert complex_.triangle_edges((0, 1, 2)) == [(0, 1), (0, 2), (1, 2)]


class TestFence:
    def test_from_cycle(self):
        fence = FenceSubcomplex.from_cycle([0, 1, 2, 3])
        assert fence.vertices == frozenset({0, 1, 2, 3})
        assert (3, 0) not in fence.edges  # canonical form is (0, 3)
        assert (0, 3) in fence.edges
        assert len(fence.edges) == 4

    def test_from_multiple_cycles(self):
        fence = FenceSubcomplex.from_cycles([[0, 1, 2], [3, 4, 5]])
        assert len(fence.vertices) == 6
        assert len(fence.edges) == 6

    def test_short_cycle_rejected(self):
        with pytest.raises(ValueError):
            FenceSubcomplex.from_cycle([0, 1])

"""Unit tests for confine-coverage thresholds (Proposition 1)."""

import math

import pytest

from repro.core.confine import (
    ConfineRequirement,
    blanket_sensing_ratio_threshold,
    ghrist_max_hole_diameter,
    guarantees_blanket,
    hole_diameter_bound,
    max_blanket_tau,
)


class TestBlanketThreshold:
    def test_triangle_threshold_is_sqrt3(self):
        assert blanket_sensing_ratio_threshold(3) == pytest.approx(math.sqrt(3))

    def test_square_threshold_is_sqrt2(self):
        assert blanket_sensing_ratio_threshold(4) == pytest.approx(math.sqrt(2))

    def test_hexagon_threshold_is_one(self):
        assert blanket_sensing_ratio_threshold(6) == pytest.approx(1.0)

    def test_threshold_decreases_with_tau(self):
        values = [blanket_sensing_ratio_threshold(tau) for tau in range(3, 12)]
        assert values == sorted(values, reverse=True)

    def test_rejects_tau_below_three(self):
        with pytest.raises(ValueError):
            blanket_sensing_ratio_threshold(2)


class TestGuarantees:
    def test_paper_examples(self):
        # "gamma = sqrt(2) or 1 guarantee no holes in a 4-hop or 6-hop cycle"
        assert guarantees_blanket(4, math.sqrt(2))
        assert guarantees_blanket(6, 1.0)
        assert not guarantees_blanket(6, 1.01)

    def test_exact_threshold_accepted(self):
        assert guarantees_blanket(3, math.sqrt(3))


class TestHoleDiameterBound:
    def test_formula(self):
        assert hole_diameter_bound(5, rc=2.0) == pytest.approx(6.0)

    def test_triangle_bound(self):
        assert hole_diameter_bound(3, rc=1.0) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hole_diameter_bound(2)
        with pytest.raises(ValueError):
            hole_diameter_bound(4, rc=0.0)


class TestMaxBlanketTau:
    def test_gamma_one_gives_six(self):
        assert max_blanket_tau(1.0) == 6

    def test_gamma_sqrt3_gives_three(self):
        assert max_blanket_tau(math.sqrt(3)) == 3

    def test_gamma_beyond_sqrt3_is_none(self):
        assert max_blanket_tau(1.8) is None

    def test_small_gamma_hits_cap(self):
        assert max_blanket_tau(0.05, tau_cap=16) == 16

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            max_blanket_tau(0.0)


class TestConfineRequirement:
    def test_blanket_requirement(self):
        req = ConfineRequirement(gamma=1.0)
        assert req.is_blanket
        assert req.max_feasible_tau() == 6

    def test_partial_requirement_extends_tau(self):
        req = ConfineRequirement(gamma=1.0, max_hole_diameter=1.2)
        # blanket allows tau=6; hole bound (tau-2) <= 1.2 allows only tau=3
        assert req.max_feasible_tau() == 6

    def test_large_holes_with_large_gamma(self):
        req = ConfineRequirement(gamma=2.0, max_hole_diameter=2.0)
        # blanket impossible; (tau - 2) <= 2 allows tau=4
        assert req.max_feasible_tau() == 4

    def test_infeasible_requirement(self):
        req = ConfineRequirement(gamma=2.0, max_hole_diameter=0.0)
        assert req.max_feasible_tau() is None
        assert req.feasible_taus() == []

    def test_feasible_set_is_contiguous_prefix(self):
        req = ConfineRequirement(gamma=1.2, max_hole_diameter=0.0)
        taus = req.feasible_taus()
        assert taus == list(range(3, max(taus) + 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfineRequirement(gamma=-1.0)
        with pytest.raises(ValueError):
            ConfineRequirement(gamma=1.0, max_hole_diameter=-0.5)
        with pytest.raises(ValueError):
            ConfineRequirement(gamma=1.0, rc=0.0)


class TestGhristGranularity:
    def test_fixed_hole_diameter(self):
        assert ghrist_max_hole_diameter(1.0) == pytest.approx(1 / math.sqrt(3))

    def test_scales_with_rc(self):
        assert ghrist_max_hole_diameter(2.0) == pytest.approx(2 / math.sqrt(3))

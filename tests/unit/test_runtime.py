"""Unit tests for the message-passing simulator, MIS, and DCC protocol."""

import random
from itertools import combinations

from repro.core.vpt import deletable_vertices
from repro.network.graph import NetworkGraph
from repro.network.topologies import wheel_graph
from repro.runtime.messages import Message, MessageKind
from repro.runtime.mis import distributed_mis
from repro.runtime.protocol import DistributedDCC, distributed_dcc_schedule
from repro.runtime.simulator import Simulator
from repro.runtime.stats import RuntimeStats


class TestSimulator:
    def test_broadcast_reaches_neighbors_only(self):
        g = NetworkGraph(range(3), [(0, 1)])
        sim = Simulator(g)
        sim.send(Message(MessageKind.TOPOLOGY, src=0, payload=None))
        sim.step()
        assert len(sim.inbox(1)) == 1
        assert sim.inbox(2) == []
        assert sim.inbox(0) == []

    def test_messages_expire_after_one_round(self):
        g = NetworkGraph(range(2), [(0, 1)])
        sim = Simulator(g)
        sim.send(Message(MessageKind.TOPOLOGY, src=0, payload=None))
        sim.step()
        sim.step()
        assert sim.inbox(1) == []

    def test_deactivated_node_stops_relaying(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        sim = Simulator(g)
        sim.deactivate(1)
        sim.send(Message(MessageKind.TOPOLOGY, src=0, payload=None))
        sim.step()
        assert sim.inbox(1) == [] and sim.inbox(2) == []

    def test_stats_accumulate(self):
        g = NetworkGraph(range(3), [(0, 1), (0, 2)])
        sim = Simulator(g)
        sim.send(Message(MessageKind.PRIORITY, src=0, payload=None))
        sim.step()
        assert sim.stats.rounds == 1
        assert sim.stats.messages_sent == 1
        assert sim.stats.messages_delivered == 2
        assert sim.stats.messages_by_kind == {"priority": 1}


class TestRuntimeStats:
    def test_merge(self):
        a, b = RuntimeStats(), RuntimeStats()
        a.record_send("x", 3)
        b.record_send("x", 1)
        b.record_send("y", 2)
        b.rounds = 4
        a.merge(b)
        assert a.messages_sent == 3
        assert a.messages_delivered == 6
        assert a.messages_by_kind == {"x": 2, "y": 1}
        assert a.rounds == 4

    def test_summary_is_readable(self):
        stats = RuntimeStats()
        stats.record_send("delete", 2)
        assert "delete=1" in stats.summary()

    def test_drop_counter_merges_and_surfaces(self):
        a, b = RuntimeStats(), RuntimeStats()
        a.record_drop("topology")
        b.record_drop("topology", 2)
        b.record_drop("priority")
        a.merge(b)
        assert a.messages_dropped == {"topology": 3, "priority": 1}
        assert "dropped[" in a.summary()

    def test_clean_run_summary_omits_drops(self):
        """No drops -> no `dropped[...]` segment; reports stay stable."""
        stats = RuntimeStats()
        stats.record_send("delete", 2)
        assert "dropped" not in stats.summary()


class TestDistributedMIS:
    def test_winners_are_separated(self, trigrid6):
        sim = Simulator(trigrid6.graph)
        rng = random.Random(3)
        winners = distributed_mis(sim, trigrid6.graph.vertices(), 3, rng)
        assert winners
        for i, u in enumerate(winners):
            dist = trigrid6.graph.bfs_distances(u)
            for v in winners[i + 1:]:
                assert dist[v] > 3 - 1

    def test_empty_candidates(self, trigrid6):
        sim = Simulator(trigrid6.graph)
        assert distributed_mis(sim, [], 2, random.Random(0)) == []

    def test_lone_candidate_wins(self, trigrid6):
        sim = Simulator(trigrid6.graph)
        assert distributed_mis(sim, [7], 2, random.Random(0)) == [7]


class TestDistributedDCC:
    def test_wheel(self):
        wheel = wheel_graph(6)
        result = distributed_dcc_schedule(
            wheel, range(6), 6, rng=random.Random(1)
        )
        assert result.removed == [6]
        assert result.num_active == 6
        assert result.stats.messages_sent > 0

    def test_matches_centralized_fixpoint(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = distributed_dcc_schedule(
            trigrid6.graph, boundary, 6, rng=random.Random(2)
        )
        # valid fixpoint: nothing deletable remains
        assert deletable_vertices(result.active, 6, exclude=boundary) == []

    def test_protocol_respects_protection(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = distributed_dcc_schedule(
            trigrid6.graph, boundary, 6, rng=random.Random(3)
        )
        assert boundary <= result.active.vertex_set()

    def test_local_views_learn_k_ball(self, trigrid6):
        protocol = DistributedDCC(trigrid6.graph, [], 4, rng=random.Random(0))
        protocol._discover_topology()
        node = 14  # interior
        view = protocol.views[node].as_graph()
        ball = trigrid6.graph.k_hop_neighborhood(node, 2) | {node}
        gamma_true = trigrid6.graph.induced_subgraph(ball)
        for u, v in gamma_true.edges():
            assert view.has_edge(u, v)

    def test_iteration_counting(self, trigrid6):
        boundary = set(trigrid6.outer_boundary)
        result = distributed_dcc_schedule(
            trigrid6.graph, boundary, 6, rng=random.Random(4)
        )
        assert result.iterations == result.stats.deletion_iterations
        assert result.iterations >= 1

    def test_smallest_confine_tau3(self):
        """tau = 3 is the smallest legal confine (k = 2, m = 3)."""
        g = NetworkGraph(range(5), combinations(range(5), 2))  # K5
        protocol = DistributedDCC(g, [0, 1], 3, rng=random.Random(0))
        assert protocol.k == 2 and protocol.m == 3
        result = protocol.run()
        assert sorted(result.active.vertex_set()) == [0, 1]
        assert sorted(result.removed) == [2, 3, 4]
        assert deletable_vertices(result.active, 3, exclude={0, 1}) == []

    def test_all_candidates_protected_is_immediate_fixpoint(self, trigrid6):
        """Protecting every node leaves nothing to elect: one look, done."""
        result = distributed_dcc_schedule(
            trigrid6.graph,
            trigrid6.graph.vertices(),
            6,
            rng=random.Random(0),
        )
        assert result.removed == []
        assert result.iterations == 1
        assert result.num_active == len(trigrid6.graph)

    def test_max_iterations_exhaustion_stops_early(self, trigrid6):
        """Exhausting the budget halts cleanly short of the fixpoint."""
        boundary = set(trigrid6.outer_boundary)
        full = distributed_dcc_schedule(
            trigrid6.graph, boundary, 6, rng=random.Random(4)
        )
        assert full.iterations > 1  # the cap below genuinely binds
        capped = DistributedDCC(
            trigrid6.graph,
            boundary,
            6,
            rng=random.Random(4),
            max_iterations=1,
        ).run()
        assert capped.iterations == 1
        assert len(capped.removed) < len(full.removed)
        # Short of the fixpoint: deletable nodes remain.
        assert deletable_vertices(capped.active, 6, exclude=boundary)

    def test_stray_message_during_flood_is_counted_dropped(self):
        """A non-DELETE message arriving mid-flood lands in the drop stats."""
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        protocol = DistributedDCC(g, [], 3, rng=random.Random(0))
        protocol._discover_topology()
        assert protocol.sim.stats.messages_dropped == {}
        protocol.sim.send(
            Message(MessageKind.TOPOLOGY, src=0, payload=None)
        )
        protocol._announce_deletions([2])
        assert protocol.sim.stats.messages_dropped == {"topology": 1}

"""Unit tests for RSSI traces and the synthetic GreenOrbs generator."""

import pytest

from repro.traces.greenorbs import (
    GreenOrbsConfig,
    generate_greenorbs_trace,
)
from repro.traces.rssi import (
    RssiRecord,
    RssiTrace,
    graph_from_trace,
    rssi_cdf,
    threshold_for_fraction,
)


def make_trace(records):
    trace = RssiTrace()
    trace.extend(RssiRecord(*r) for r in records)
    return trace


class TestRssiAggregation:
    def test_directed_averages(self):
        trace = make_trace([(1, 2, -60.0), (1, 2, -70.0), (2, 1, -65.0)])
        directed = trace.directed_averages()
        assert directed[(1, 2)] == pytest.approx(-65.0)
        assert directed[(2, 1)] == pytest.approx(-65.0)

    def test_undirected_requires_both_directions(self):
        trace = make_trace([(1, 2, -60.0), (3, 2, -50.0)])
        assert trace.undirected_averages() == {}

    def test_undirected_pools_directions(self):
        trace = make_trace([(1, 2, -60.0), (2, 1, -70.0)])
        assert trace.undirected_averages()[(1, 2)] == pytest.approx(-65.0)

    def test_edge_rssi_values_sorted(self):
        trace = make_trace(
            [(1, 2, -60.0), (2, 1, -60.0), (1, 3, -80.0), (3, 1, -80.0)]
        )
        assert trace.edge_rssi_values() == [-80.0, -60.0]


class TestCdfAndThreshold:
    def test_cdf_fractions(self):
        values = [-90.0, -80.0, -70.0, -60.0]
        fractions = rssi_cdf(values, [-95.0, -75.0, -55.0])
        assert fractions == [1.0, 0.5, 0.0]

    def test_cdf_empty(self):
        assert rssi_cdf([], [-80.0]) == [0.0]

    def test_threshold_for_fraction(self):
        values = [-90.0, -80.0, -70.0, -60.0]
        # keep strongest half -> threshold at -70
        assert threshold_for_fraction(values, 0.5) == pytest.approx(-70.0)
        assert threshold_for_fraction(values, 1.0) == pytest.approx(-90.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            threshold_for_fraction([1.0], 0.0)
        with pytest.raises(ValueError):
            threshold_for_fraction([], 0.5)

    def test_graph_from_trace_applies_threshold(self):
        trace = make_trace(
            [(1, 2, -60.0), (2, 1, -60.0), (1, 3, -90.0), (3, 1, -90.0)]
        )
        graph = graph_from_trace(trace, -70.0)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(1, 3)
        assert 3 in graph  # node exists even if all its links fail


class TestGreenOrbsGenerator:
    @pytest.fixture(scope="class")
    def small_trace(self):
        config = GreenOrbsConfig(
            node_count=80,
            clusters=5,
            epochs=12,
            strip_width=160.0,
            strip_height=60.0,
        )
        return config, generate_greenorbs_trace(config, seed=2)

    def test_node_count(self, small_trace):
        config, trace = small_trace
        assert len(trace.positions) == config.node_count

    def test_positions_inside_strip(self, small_trace):
        config, trace = small_trace
        for p in trace.positions.values():
            assert trace.region.contains(p)

    def test_records_capped_per_packet(self, small_trace):
        config, trace = small_trace
        from collections import Counter

        per_packet_cap = config.records_per_packet * config.epochs
        by_receiver = Counter(r.receiver for r in trace.trace.records)
        assert max(by_receiver.values()) <= per_packet_cap

    def test_threshold_keeps_target_fraction(self, small_trace):
        config, trace = small_trace
        values = trace.trace.edge_rssi_values()
        kept = sum(1 for v in values if v >= trace.threshold_dbm) / len(values)
        assert kept == pytest.approx(config.edge_keep_fraction, abs=0.05)

    def test_graph_has_reasonable_connectivity(self, small_trace):
        __, trace = small_trace
        giant = max(trace.graph.connected_components(), key=len)
        assert len(giant) >= 0.85 * len(trace.graph)

    def test_as_network_classifies_boundary(self, small_trace):
        config, trace = small_trace
        network = trace.as_network(rc=config.max_range, rs=config.max_range)
        assert network.boundary_nodes
        assert network.graph.is_connected()

    def test_determinism(self):
        config = GreenOrbsConfig(node_count=40, clusters=4, epochs=6)
        a = generate_greenorbs_trace(config, seed=5)
        b = generate_greenorbs_trace(config, seed=5)
        assert a.threshold_dbm == b.threshold_dbm
        assert a.graph.edge_set() == b.graph.edge_set()

    def test_seeds_differ(self):
        config = GreenOrbsConfig(node_count=40, clusters=4, epochs=6)
        a = generate_greenorbs_trace(config, seed=5)
        b = generate_greenorbs_trace(config, seed=6)
        assert a.graph.edge_set() != b.graph.edge_set()

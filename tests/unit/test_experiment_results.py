"""Unit tests for experiment result containers (no heavy computation)."""


from repro.analysis.experiments import (
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    TraceConfineResult,
)


class TestFig1Result:
    def test_table_mentions_both_verdicts(self):
        result = Fig1Result(
            hgc_relative_betti_1=1, hgc_verified=False, dcc_partitionable=True
        )
        table = result.format_table()
        assert "relative b1 = 1" in table
        assert "false negative" in table
        assert "True (correct)" in table


class TestFig2Result:
    def test_preservation_flag(self):
        result = Fig2Result(
            total_nodes=100,
            protected_nodes=40,
            active_by_tau={3: 90, 4: 80},
            initially_partitionable={3: True, 4: False},
            finally_partitionable={3: True, 4: True},
        )
        assert result.preserved(3)
        assert not result.preserved(4)
        assert "tau=4" in result.format_table()


class TestFig3Result:
    def test_table_rows(self):
        result = Fig3Result(
            taus=[3, 4], mean_ratio_by_tau={3: 1.0, 4: 0.8}, runs=2
        )
        table = result.format_table()
        assert "2 runs" in table
        assert "ratio=0.800" in table


class TestFig4Result:
    def test_grid_formatting_with_missing_cells(self):
        result = Fig4Result(
            gammas=[2.0, 1.0],
            requirements=[0.0, 1.2],
            saved={(0.0, 2.0): 0.0, (0.0, 1.0): 0.25},
            saved_internal={(0.0, 1.0): 0.5},
            tau_used={(0.0, 2.0): None, (0.0, 1.0): 6},
        )
        table = result.format_table()
        assert "Full" in table
        assert " 0.25" in table
        assert "    -" in table  # missing cell placeholder
        assert "internal" in table


class TestFig5Result:
    def test_table(self):
        result = Fig5Result(
            thresholds_dbm=[-85.0],
            fraction_at_least=[0.8],
            chosen_threshold_dbm=-84.9,
            kept_fraction=0.8,
        )
        table = result.format_table()
        assert "-85.0" in table
        assert "80" in table


class TestTraceConfineResult:
    def test_table_uses_figure_number(self):
        result = TraceConfineResult(
            taus=[3, 4],
            inner_left_by_tau={3: 20, 4: 10},
            boundary_nodes=30,
            total_nodes=100,
        )
        assert "Figure 6" in result.format_table("6")
        assert "Figure 7" in result.format_table("7")
        assert "inner nodes left = 10" in result.format_table("6")

"""Unit tests for disk primitives and embedding validity checks."""

import math

import pytest

from repro.geometry.disks import (
    disks_cover_point,
    disks_cover_segment,
    polygon_inradius,
    regular_polygon,
    regular_polygon_with_side,
    two_disks_cover_segment,
    worst_case_uncovered_radius,
)
from repro.geometry.embedding import (
    edges_within_range,
    is_valid_quasi_udg_embedding,
    is_valid_udg_embedding,
    max_edge_length,
)
from repro.network.graph import NetworkGraph


class TestDisks:
    def test_point_coverage(self):
        assert disks_cover_point((0.5, 0), [(0, 0)], 1.0)
        assert not disks_cover_point((2, 0), [(0, 0)], 1.0)

    def test_segment_coverage(self):
        centers = [(0, 0), (1, 0), (2, 0)]
        assert disks_cover_segment((0, 0), (2, 0), centers, 0.6)
        assert not disks_cover_segment((0, 0), (2, 0), [(0, 0)], 0.6)

    def test_two_disk_rule(self):
        assert two_disks_cover_segment((0, 0), (2, 0), 1.0)
        assert not two_disks_cover_segment((0, 0), (2.1, 0), 1.0)

    def test_regular_polygon_geometry(self):
        square = regular_polygon(4, 1.0)
        assert len(square) == 4
        for x, y in square:
            assert math.hypot(x, y) == pytest.approx(1.0)

    def test_polygon_side_construction(self):
        hexagon = regular_polygon_with_side(6, 1.0)
        for (ax, ay), (bx, by) in zip(hexagon, hexagon[1:] + hexagon[:1]):
            assert math.hypot(ax - bx, ay - by) == pytest.approx(1.0)

    def test_polygon_too_small(self):
        with pytest.raises(ValueError):
            regular_polygon(2, 1.0)

    def test_inradius(self):
        # hexagon with side 1: apothem = sqrt(3)/2
        assert polygon_inradius(6, 1.0) == pytest.approx(math.sqrt(3) / 2)

    def test_worst_case_radius_at_blanket_threshold(self):
        """Proposition 1's geometric heart: slack is zero exactly when
        gamma = 2 sin(pi/tau)."""
        for tau in (3, 4, 5, 6, 8):
            gamma = 2.0 * math.sin(math.pi / tau)
            rs = 1.0 / gamma  # rc = 1
            assert worst_case_uncovered_radius(tau, 1.0, rs) == pytest.approx(
                0.0, abs=1e-12
            )
            assert worst_case_uncovered_radius(tau, 1.0, rs * 0.95) > 0
            assert worst_case_uncovered_radius(tau, 1.0, rs * 1.05) < 0


class TestEmbeddings:
    def test_edges_within_range(self):
        g = NetworkGraph(range(2), [(0, 1)])
        positions = {0: (0.0, 0.0), 1: (0.9, 0.0)}
        assert edges_within_range(g, positions, 1.0)
        assert not edges_within_range(g, positions, 0.5)

    def test_valid_udg(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        positions = {0: (0, 0), 1: (1, 0), 2: (2, 0)}
        assert is_valid_udg_embedding(g, positions, 1.0)

    def test_udg_missing_short_edge_invalid(self):
        g = NetworkGraph(range(3), [(0, 1)])
        positions = {0: (0, 0), 1: (1, 0), 2: (1.5, 0)}
        # nodes 1 and 2 are within range but not linked
        assert not is_valid_udg_embedding(g, positions, 1.0)

    def test_quasi_udg_tolerates_grey_zone(self):
        g = NetworkGraph(range(3), [(0, 1)])
        positions = {0: (0, 0), 1: (0.4, 0), 2: (0.9, 0)}
        # missing link (1,2) at distance 0.5 > alpha*rc = 0.5? use alpha 0.45
        assert is_valid_quasi_udg_embedding(g, positions, 1.0, alpha=0.45)
        assert not is_valid_udg_embedding(g, positions, 1.0)

    def test_quasi_udg_rejects_missing_certain_link(self):
        g = NetworkGraph(range(2), [])
        positions = {0: (0, 0), 1: (0.2, 0)}
        assert not is_valid_quasi_udg_embedding(g, positions, 1.0, alpha=0.5)

    def test_quasi_udg_alpha_validation(self):
        g = NetworkGraph(range(2), [(0, 1)])
        with pytest.raises(ValueError):
            is_valid_quasi_udg_embedding(g, {0: (0, 0), 1: (1, 0)}, 1.0, alpha=0)

    def test_max_edge_length(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        positions = {0: (0, 0), 1: (1, 0), 2: (1, 2)}
        assert max_edge_length(g, positions) == pytest.approx(2.0)
        assert max_edge_length(NetworkGraph([0]), {0: (0, 0)}) == 0.0

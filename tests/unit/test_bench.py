"""Unit tests for the ``repro-bench`` fingerprint/diff machinery.

The regression gate's promises, each pinned here: entries carry the
``repro.bench/v2`` environment fingerprint; deterministic fields diff
exactly; byte counts get a fixed band; timing only gates when a
tolerance is given *and* the fingerprints match; ``normalize`` upgrades
old entries without touching their measurements.  The named benches
themselves run in ``benchmarks/`` — here only the cheap kernel one is
executed end-to-end.
"""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    BENCHES,
    KNOB_NAMES,
    bench_kernel_schedule,
    diff_entries,
    diff_files,
    env_fingerprint,
    main,
    stamp_entry,
)


def _entry(**overrides):
    base = {
        "rounds": 10,
        "deletions": 40,
        "halo_bytes_total": 1000,
        "wall_s": 1.0,
        "scale": "smoke",
    }
    base.update(overrides)
    return stamp_entry(base)


class TestFingerprint:
    def test_fingerprint_shape(self):
        fp = env_fingerprint()
        assert fp["schema"] == BENCH_SCHEMA
        assert fp["cpu_count"] >= 1
        assert isinstance(fp["python"], str)
        assert set(fp["knobs"]) == set(KNOB_NAMES)

    def test_stamp_preserves_measurements(self):
        entry = stamp_entry({"rounds": 3, "wall_s": 0.5})
        assert entry["rounds"] == 3
        assert entry["wall_s"] == 0.5
        assert entry["schema"] == BENCH_SCHEMA

    def test_stamp_does_not_mutate_input(self):
        raw = {"rounds": 3}
        stamp_entry(raw)
        assert raw == {"rounds": 3}


class TestDiffEntries:
    def test_identical_entries_pass(self):
        entry = _entry()
        assert diff_entries("b", entry, dict(entry), tolerance=0.5) == []

    def test_deterministic_drift_fails_without_tolerance(self):
        assert diff_entries("b", _entry(), _entry(rounds=11)) != []

    def test_bytes_band(self):
        base = _entry()
        assert diff_entries("b", base, _entry(halo_bytes_total=1050)) == []
        assert diff_entries("b", base, _entry(halo_bytes_total=1200)) != []

    def test_timing_ignored_without_tolerance(self):
        assert diff_entries("b", _entry(), _entry(wall_s=100.0)) == []

    def test_timing_gated_with_tolerance_and_same_env(self):
        base = _entry()
        slow = _entry(wall_s=2.0)
        assert diff_entries("b", base, slow, tolerance=0.5) != []
        assert diff_entries("b", base, _entry(wall_s=1.4), tolerance=0.5) == []
        # Faster is never a regression.
        assert diff_entries("b", base, _entry(wall_s=0.2), tolerance=0.5) == []

    def test_timing_skipped_across_environments(self):
        base = _entry()
        slow = _entry(wall_s=100.0)
        slow["cpu_count"] = base["cpu_count"] + 7
        assert diff_entries("b", base, slow, tolerance=0.5) == []

    def test_keys_in_one_entry_only_are_ignored(self):
        base = _entry()
        current = _entry()
        current["new_measure"] = 5
        assert diff_entries("b", base, current) == []


class TestDiffFiles:
    def _write(self, path, data):
        path.write_text(json.dumps(data))

    def test_gate_passes_and_fails(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        self._write(baseline, {"bench": _entry()})
        self._write(current, {"bench": _entry()})
        problems, notes = diff_files(str(baseline), str(current), 0.5)
        assert problems == []
        assert any("bench: ok" in note for note in notes)

        self._write(current, {"bench": _entry(rounds=99)})
        problems, _ = diff_files(str(baseline), str(current), 0.5)
        assert any("rounds" in p for p in problems)

    def test_disjoint_files_fail(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        self._write(baseline, {"a": _entry()})
        self._write(current, {"b": _entry()})
        problems, notes = diff_files(str(baseline), str(current))
        assert problems == ["no entries in common between baseline and current"]
        assert len(notes) == 2


class TestCli:
    def test_list_names_every_bench(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in BENCHES:
            assert name in out

    def test_run_unknown_bench_errors(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["run", "nope", "--out", str(out)]) == 2

    def test_run_kernel_bench_writes_stamped_entry(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["run", "kernel_schedule", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        entry = data["kernel_schedule"]
        assert entry["schema"] == BENCH_SCHEMA
        assert entry["rounds"] > 0
        # Rerunning reproduces the deterministic fields exactly — the
        # property the CI gate relies on.
        again = stamp_entry(bench_kernel_schedule("smoke"))
        assert diff_entries("kernel_schedule", entry, again) == []

    def test_diff_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps({"bench": _entry()}))
        cur.write_text(json.dumps({"bench": _entry()}))
        assert main(["diff", str(base), str(cur), "--tolerance", "0.5"]) == 0
        cur.write_text(json.dumps({"bench": _entry(deletions=1)}))
        assert main(["diff", str(base), str(cur)]) == 1

    def test_normalize_upgrades_in_place(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"old_bench": {"wall_s": 2.4, "tau": 4}}))
        assert main(["normalize", str(path)]) == 0
        entry = json.loads(path.read_text())["old_bench"]
        # Old keys intact, v2 stamp added.
        assert entry["wall_s"] == 2.4
        assert entry["tau"] == 4
        assert entry["schema"] == BENCH_SCHEMA
        assert set(entry["knobs"]) == set(KNOB_NAMES)

    def test_normalize_keeps_recorded_cpu_count(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"old": {"cpu_count": 64}}))
        main(["normalize", str(path)])
        assert json.loads(path.read_text())["old"]["cpu_count"] == 64


class TestCommittedBaselines:
    @pytest.mark.parametrize(
        "fname", ["BENCH_kernel.json", "BENCH_shard.json", "BENCH_smoke.json"]
    )
    def test_committed_entries_are_fingerprinted(self, fname):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        data = json.loads((root / fname).read_text())
        assert data, fname
        for name, entry in data.items():
            assert entry.get("schema") == BENCH_SCHEMA, (fname, name)
            assert "cpu_count" in entry, (fname, name)
            assert set(entry["knobs"]) == set(KNOB_NAMES), (fname, name)

"""Unit tests for GF(2) linear algebra on bitmask integers."""


from repro.cycles.gf2 import GF2Basis, gf2_in_span, gf2_rank, gf2_solve, popcount


class TestGF2Basis:
    def test_empty_basis(self):
        basis = GF2Basis()
        assert basis.rank == 0
        assert basis.contains(0)
        assert not basis.contains(1)

    def test_add_independent_vectors(self):
        basis = GF2Basis()
        assert basis.add(0b001)
        assert basis.add(0b010)
        assert basis.add(0b100)
        assert basis.rank == 3

    def test_add_dependent_vector(self):
        basis = GF2Basis([0b011, 0b101])
        assert not basis.add(0b110)  # xor of the two
        assert basis.rank == 2

    def test_zero_vector_never_added(self):
        basis = GF2Basis()
        assert not basis.add(0)
        assert basis.rank == 0

    def test_reduce_returns_residue(self):
        basis = GF2Basis([0b011])
        assert basis.reduce(0b011) == 0
        assert basis.reduce(0b010) in (0b010, 0b001)

    def test_contains_span(self):
        basis = GF2Basis([0b011, 0b110])
        assert basis.contains(0b101)
        assert not basis.contains(0b111)

    def test_copy_is_independent(self):
        basis = GF2Basis([0b01])
        clone = basis.copy()
        clone.add(0b10)
        assert basis.rank == 1 and clone.rank == 2

    def test_vectors_are_reduced_rows(self):
        basis = GF2Basis([0b11, 0b10])
        rows = basis.vectors()
        assert len(rows) == 2
        assert gf2_rank(rows) == 2


class TestHelpers:
    def test_gf2_rank(self):
        assert gf2_rank([0b1, 0b10, 0b11]) == 2
        assert gf2_rank([]) == 0

    def test_gf2_in_span(self):
        assert gf2_in_span(0b11, [0b01, 0b10])
        assert not gf2_in_span(0b100, [0b01, 0b10])

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3


class TestSolve:
    def test_solve_exact_subset(self):
        vectors = [0b001, 0b010, 0b100]
        chosen = gf2_solve(0b101, vectors)
        assert chosen is not None
        total = 0
        for i in chosen:
            total ^= vectors[i]
        assert total == 0b101

    def test_solve_unreachable_target(self):
        assert gf2_solve(0b100, [0b001, 0b010]) is None

    def test_solve_zero_target_is_empty(self):
        assert gf2_solve(0, [0b1, 0b10]) == []

    def test_solve_with_dependent_vectors(self):
        vectors = [0b011, 0b101, 0b110, 0b011]
        chosen = gf2_solve(0b110, vectors)
        assert chosen is not None
        total = 0
        for i in chosen:
            total ^= vectors[i]
        assert total == 0b110

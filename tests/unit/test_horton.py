"""Unit tests for Horton MCB, Algorithm 1 and the short-cycle span."""

import pytest

from repro.cycles.cycle_space import EdgeIndex, cycle_space_dimension
from repro.cycles.gf2 import GF2Basis
from repro.cycles.horton import (
    IrreducibleCycleBounds,
    ShortCycleSpan,
    horton_candidate_cycles,
    irreducible_cycle_bounds,
    max_irreducible_cycle_bounded,
    minimum_cycle_basis,
)
from repro.network.graph import NetworkGraph

from tests.conftest import random_graph


def brute_force_mcb_lengths(graph):
    """Greedy MCB over *all* simple cycles (exponential; tiny graphs only)."""
    import networkx as nx

    index = EdgeIndex.from_graph(graph)
    masks = sorted(
        (len(c), index.mask_of_vertex_cycle(c))
        for c in nx.simple_cycles(graph.to_networkx())
        if len(c) >= 3
    )
    nu = cycle_space_dimension(graph)
    basis = GF2Basis()
    lengths = []
    for length, mask in masks:
        if basis.add(mask):
            lengths.append(length)
            if basis.rank == nu:
                break
    return lengths


class TestCandidates:
    def test_k4_candidates_are_triangles_and_squares(self, k4):
        lengths = sorted(len(c) for c in horton_candidate_cycles(k4))
        assert lengths[:4] == [3, 3, 3, 3]

    def test_max_length_cap(self, c6):
        assert horton_candidate_cycles(c6, max_length=5) == []
        capped = horton_candidate_cycles(c6, max_length=6)
        assert [len(c) for c in capped] == [6]

    def test_forest_has_no_candidates(self):
        g = NetworkGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        assert horton_candidate_cycles(g) == []

    def test_candidates_are_simple_cycles(self, trigrid6):
        for cycle in horton_candidate_cycles(trigrid6.graph, max_length=4):
            assert len(set(cycle)) == len(cycle)
            closed = list(cycle) + [cycle[0]]
            for a, b in zip(closed, closed[1:]):
                assert trigrid6.graph.has_edge(a, b)


class TestMinimumCycleBasis:
    def test_k4(self, k4):
        assert sorted(c.length for c in minimum_cycle_basis(k4)) == [3, 3, 3]

    def test_plain_cycle(self, c6):
        assert [c.length for c in minimum_cycle_basis(c6)] == [6]

    def test_wheel(self, wheel8):
        # nu = 16 - 9 + 1 = 8; all basis cycles are hub triangles
        basis = minimum_cycle_basis(wheel8)
        assert sorted(c.length for c in basis) == [3] * 8

    def test_square_grid(self, grid5):
        basis = minimum_cycle_basis(grid5.graph)
        assert sorted(c.length for c in basis) == [4] * 16

    def test_forest_empty(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        assert minimum_cycle_basis(g) == []

    def test_basis_is_independent_and_spanning(self, trigrid6):
        graph = trigrid6.graph
        index = EdgeIndex.from_graph(graph)
        basis = minimum_cycle_basis(graph, index)
        assert len(basis) == cycle_space_dimension(graph)
        gf2 = GF2Basis(c.mask for c in basis)
        assert gf2.rank == len(basis)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_graphs(self, seed):
        graph = random_graph(8, 0.45, seed)
        if cycle_space_dimension(graph) == 0:
            pytest.skip("acyclic sample")
        ours = sorted(c.length for c in minimum_cycle_basis(graph))
        brute = sorted(brute_force_mcb_lengths(graph))
        assert sum(ours) == sum(brute)


class TestAlgorithm1Bounds:
    def test_forest_is_zero(self):
        g = NetworkGraph(range(3), [(0, 1), (1, 2)])
        assert irreducible_cycle_bounds(g) == IrreducibleCycleBounds(0, 0)

    def test_k4(self, k4):
        assert irreducible_cycle_bounds(k4) == IrreducibleCycleBounds(3, 3)

    def test_single_cycle(self, c6):
        assert irreducible_cycle_bounds(c6) == IrreducibleCycleBounds(6, 6)

    def test_mixed_graph(self):
        # a triangle joined by a path to a 5-cycle
        g = NetworkGraph(
            range(8),
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 3)],
        )
        assert irreducible_cycle_bounds(g) == IrreducibleCycleBounds(3, 5)

    def test_bounded_by(self):
        bounds = IrreducibleCycleBounds(3, 5)
        assert bounds.bounded_by(5) and not bounds.bounded_by(4)


class TestShortCycleSpan:
    def test_rejects_tiny_tau(self, k4):
        with pytest.raises(ValueError):
            ShortCycleSpan(k4, 2)

    def test_spans_matches_mcb_bound(self, grid5):
        assert not max_irreducible_cycle_bounded(grid5.graph, 3)
        assert max_irreducible_cycle_bounded(grid5.graph, 4)

    def test_forest_trivially_bounded(self):
        g = NetworkGraph(range(4), [(0, 1), (2, 3)])
        assert max_irreducible_cycle_bounded(g, 3)

    def test_contains_edges_accepts_boundary(self, grid5):
        span = ShortCycleSpan(grid5.graph, 4)
        boundary = grid5.outer_boundary
        assert span.contains_vertex_cycle(boundary)

    def test_contains_edges_rejects_at_tau3(self, grid5):
        span = ShortCycleSpan(grid5.graph, 3)
        assert not span.contains_vertex_cycle(grid5.outer_boundary)

    def test_contains_rejects_foreign_edges(self, grid5):
        span = ShortCycleSpan(grid5.graph, 4)
        assert not span.contains_edges([(0, 1), (1, 99), (99, 0)])

    def test_contains_rejects_odd_degree_sets(self, grid5):
        span = ShortCycleSpan(grid5.graph, 4)
        assert not span.contains_edges([(0, 1)])

    def test_empty_edge_set_always_contained(self, grid5):
        span = ShortCycleSpan(grid5.graph, 4)
        assert span.contains_edges([])

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("tau", [3, 4, 5, 6, 7])
    def test_equivalence_with_mcb_maximum(self, seed, tau):
        graph = random_graph(9, 0.4, seed + 100)
        nu = cycle_space_dimension(graph)
        if nu == 0:
            pytest.skip("acyclic sample")
        maximum = max(c.length for c in minimum_cycle_basis(graph))
        assert max_irreducible_cycle_bounded(graph, tau) == (maximum <= tau)

"""Integration tests for the extension subsystems.

Barrier scheduling, lifetime rotation and failure repair all compose with
the same deployment/boundary/criterion pipeline as the core scheduler.
"""

import random

import pytest

from repro.core.barrier import barrier_strength, schedule_barrier
from repro.core.criterion import is_tau_partitionable
from repro.core.lifetime import rotation_simulation
from repro.core.repair import inject_random_failures, repair_coverage
from repro.core.scheduler import dcc_schedule
from repro.network.deployment import Rectangle, build_network
from repro.network.energy import EnergyModel
from repro.boundary.geometric import outer_boundary_cycle
from repro.network.topologies import triangulated_grid


class TestBarrierOnDeployment:
    @pytest.fixture(scope="class")
    def belt(self):
        network = build_network(
            130, Rectangle(0, 0, 6, 1.6), rc=1.0, rs=0.6, seed=13,
            boundary_band=0.25,
        )
        left = {v for v, (x, __) in network.positions.items() if x <= 0.5}
        right = {
            v
            for v, (x, __) in network.positions.items()
            if x >= network.region.x1 - 0.5
        }
        return network, left, right

    def test_strength_positive_on_dense_belt(self, belt):
        network, left, right = belt
        result = barrier_strength(network.graph, left, right, network.gamma)
        assert result.strength >= 2

    def test_scheduled_chains_form_sensing_walls(self, belt):
        """Every chain is an unbroken wall of overlapping sensing disks."""
        from repro.network.node import distance

        network, left, right = belt
        result = barrier_strength(network.graph, left, right, network.gamma)
        for chain in result.chains:
            for a, b in zip(chain, chain[1:]):
                gap = distance(network.positions[a], network.positions[b])
                assert gap <= 2 * network.rs + 1e-9

    def test_schedule_is_sparse(self, belt):
        network, left, right = belt
        active = schedule_barrier(
            network.graph, left, right, network.gamma, k=1
        )
        assert active is not None
        assert len(active) < 0.4 * len(network.graph)


class TestLifetimeOnDeployment:
    def test_rotation_on_mesh_preserves_criterion_while_alive(self):
        mesh = triangulated_grid(8, 8)
        boundary = mesh.outer_boundary
        model = EnergyModel(
            battery_capacity=6.0, active_cost=1.0, sleep_cost=0.1
        )
        report = rotation_simulation(
            mesh.graph,
            [boundary],
            boundary,
            tau=6,
            model=model,
            rng=random.Random(0),
            record_every=1,
        )
        assert report.shifts_survived >= model.always_on_shifts
        assert all(record.criterion_holds for record in report.records)


class TestRepairOnDeployment:
    @pytest.mark.slow
    def test_schedule_fail_repair_roundtrip(self):
        network = build_network(
            250, Rectangle(0, 0, 6, 6), rc=1.0, rs=1.0, seed=20
        )
        boundary = outer_boundary_cycle(network)
        protected = set(network.boundary_nodes) | set(boundary)
        tau = 4
        if not is_tau_partitionable(network.graph, [boundary], tau):
            pytest.skip("deployment fails the criterion initially")
        schedule = dcc_schedule(
            network.graph, protected, tau, rng=random.Random(0)
        )
        rng = random.Random(1)
        victims = inject_random_failures(
            schedule.coverage_set, 2, rng, spare=protected
        )
        repaired = repair_coverage(
            network.graph,
            schedule.coverage_set,
            [boundary],
            protected,
            tau,
            victims,
            rng=rng,
        )
        assert repaired.restored
        assert is_tau_partitionable(repaired.active, [boundary], tau)
        assert victims.isdisjoint(repaired.active.vertex_set())

"""The distributed protocol and the centralized scheduler agree in kind.

Both compute maximal-vertex-deletion fixpoints of the same VPT rule; exact
node sets differ with randomness, but validity properties and approximate
sizes must match.
"""

import random

import pytest

from repro.core.criterion import is_tau_partitionable
from repro.core.scheduler import dcc_schedule
from repro.core.vpt import deletable_vertices
from repro.network.deployment import Rectangle, build_network
from repro.network.topologies import triangulated_grid
from repro.runtime.protocol import distributed_dcc_schedule


@pytest.fixture(scope="module")
def small_net():
    net = build_network(120, Rectangle(0, 0, 5, 5), rc=1.0, rs=1.0, seed=9)
    return net


class TestAgreement:
    @pytest.mark.parametrize("tau", [3, 4])
    def test_both_reach_valid_fixpoints(self, small_net, tau):
        protected = set(small_net.boundary_nodes)
        central = dcc_schedule(
            small_net.graph, protected, tau, rng=random.Random(0)
        )
        distributed = distributed_dcc_schedule(
            small_net.graph, protected, tau, rng=random.Random(0)
        )
        for result_graph in (central.active, distributed.active):
            assert deletable_vertices(result_graph, tau, exclude=protected) == []

    @pytest.mark.parametrize("tau", [3, 4])
    def test_sizes_comparable(self, small_net, tau):
        protected = set(small_net.boundary_nodes)
        central = dcc_schedule(
            small_net.graph, protected, tau, rng=random.Random(1)
        )
        distributed = distributed_dcc_schedule(
            small_net.graph, protected, tau, rng=random.Random(1)
        )
        assert abs(central.num_active - distributed.num_active) <= max(
            5, 0.1 * len(small_net.graph)
        )

    def test_distributed_message_accounting(self, small_net):
        protected = set(small_net.boundary_nodes)
        result = distributed_dcc_schedule(
            small_net.graph, protected, 3, rng=random.Random(2)
        )
        stats = result.stats
        assert stats.messages_sent > 0
        assert stats.messages_delivered >= stats.messages_sent
        assert set(stats.messages_by_kind) <= {"topology", "priority", "delete"}
        assert stats.messages_by_kind["topology"] >= len(small_net.graph)

    def test_grid_partitionability_preserved_distributed(self):
        mesh = triangulated_grid(7, 7)
        boundary = mesh.outer_boundary
        result = distributed_dcc_schedule(
            mesh.graph, set(boundary), 6, rng=random.Random(3)
        )
        assert is_tau_partitionable(result.active, [boundary], 6)

"""End-to-end envelope cross-check: smoke runs against the static manifest.

The CI gate's contract, exercised directly: a real sharded + distributed
smoke stays inside every statically certified envelope, a poisoned
manifest (a bound tightened below the measured value) fails with a diff
that names the meter, the measured value and the bound, the cross-check
is a pure observer (sanitized run-reports are byte-identical with it on
or off), and the CLI surfaces it all through exit codes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.experiments import _prepare_network
from repro.checks.bounds import run_bounds
from repro.checks.bounds_cli import main as bounds_main
from repro.core.scheduler import dcc_schedule
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_run_report,
    check_envelope,
    max_bfs_depth_from_tracer,
    measured_from_runtime_stats,
    measured_from_shard_stats,
    shape_params_from_graph,
    strip_volatile,
)
from repro.runtime.protocol import distributed_dcc_schedule

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

TAU = 5
NODES = 40
DEGREE = 8.0


def _smoke_measurements():
    """One sharded + one distributed smoke, as (manifest, measured, params)."""
    __, manifest = run_bounds([SRC / "repro"], REPO_ROOT)
    manifest = manifest.as_dict()
    network, __, protected = _prepare_network(NODES, DEGREE, seed=0)
    params = shape_params_from_graph(network.graph, TAU)
    tracer = Tracer()
    result = dcc_schedule(
        network.graph, protected, TAU, seed=0, shards=2, workers=1,
        tracer=tracer,
    )
    measured = {}
    stats = result.shard_stats
    assert stats is not None
    measured.update(measured_from_shard_stats(stats))
    params["shards"] = stats.shard_count
    params["halo_members"] = sum(stats.halo_sizes)
    params["subrounds"] = max(stats.subrounds_per_round, default=0)
    depth = max_bfs_depth_from_tracer(tracer)
    if depth is not None:
        measured["bfs.max_depth"] = depth
    dist = distributed_dcc_schedule(network.graph, protected, TAU, seed=0)
    measured.update(measured_from_runtime_stats(dist.stats))
    params["rounds"] = max(result.rounds, dist.iterations)
    params["deletions"] = len(dist.removed)
    return manifest, measured, params


class TestEnvelopeCrossCheck:
    def test_smoke_run_inside_every_envelope(self):
        manifest, measured, params = _smoke_measurements()
        report = check_envelope(manifest, measured, params)
        assert report.ok, report.format_diff()
        # The smoke must actually exercise the contract, not vacuously
        # pass on an empty meter set.
        meters = {row.meter for row in report.rows}
        assert "halo.rows_per_round" in meters
        assert "messages.priority.sent" in meters
        assert all(row.margin >= 0 for row in report.rows)

    def test_poisoned_manifest_fails_with_readable_diff(self):
        manifest, measured, params = _smoke_measurements()
        poisoned = json.loads(json.dumps(manifest))
        # Tighten the halo row bound below anything a real round ships.
        poisoned["envelopes"]["halo.rows_per_round"] = "0"
        report = check_envelope(poisoned, measured, params)
        assert not report.ok
        (violation,) = report.violations
        assert violation.meter == "halo.rows_per_round"
        diff = report.format_diff()
        assert "FAIL halo.rows_per_round" in diff
        assert f"measured={violation.measured}" in diff
        assert "bound=0" in diff
        assert "envelope violated: halo.rows_per_round" in diff

    def test_cross_check_is_a_pure_observer(self):
        """Sanitized run-reports are byte-identical with the envelope
        check on vs off: measuring the meters never perturbs the run."""

        def observed_run():
            tracer, metrics = Tracer(), MetricsRegistry()
            network, __, protected = _prepare_network(NODES, DEGREE, seed=0)
            dcc_schedule(
                network.graph, protected, TAU, seed=0, shards=2, workers=1,
                tracer=tracer, metrics=metrics,
            )
            return build_run_report("fig2-smoke", tracer, metrics)

        plain = strip_volatile(observed_run())

        manifest, measured, params = _smoke_measurements()
        check_envelope(manifest, measured, params)  # the "on" arm
        checked = strip_volatile(observed_run())

        assert json.dumps(checked, sort_keys=True) == json.dumps(
            plain, sort_keys=True
        )


class TestCrossCheckCLI:
    def test_exit_zero_and_margins_artifact(self, tmp_path, capsys):
        margins = tmp_path / "margins.json"
        code = bounds_main(
            [
                str(SRC / "repro"),
                "--root", str(REPO_ROOT),
                "--cross-check",
                "--nodes", str(NODES),
                "--degree", str(int(DEGREE)),
                "--tau", str(TAU),
                "--margins-out", str(margins),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "repro-bounds: cross-check ok" in out
        payload = json.loads(margins.read_text())
        assert payload["ok"] is True
        assert payload["rows"]
        assert all(row["margin"] >= 0 for row in payload["rows"])

    def test_exit_one_on_poisoned_manifest(self, tmp_path, capsys):
        __, manifest = run_bounds([SRC / "repro"], REPO_ROOT)
        poisoned = manifest.as_dict()
        poisoned["envelopes"]["bfs.max_depth"] = "0"
        manifest_path = tmp_path / "poisoned.json"
        manifest_path.write_text(json.dumps(poisoned))
        code = bounds_main(
            [
                "--root", str(REPO_ROOT),
                "--cross-check",
                "--manifest-in", str(manifest_path),
                "--nodes", str(NODES),
                "--degree", str(int(DEGREE)),
                "--tau", str(TAU),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL bfs.max_depth" in out
        assert "violation" in out

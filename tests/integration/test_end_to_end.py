"""End-to-end pipeline: deploy -> boundary -> schedule -> verify -> measure.

This is the full DCC story on a simulated network, with the geometric
referee confirming the coverage semantics that Proposition 1 promises.
"""

import random

import pytest

from repro.boundary.geometric import outer_boundary_cycle
from repro.core.confine import ConfineRequirement, hole_diameter_bound
from repro.core.criterion import is_tau_partitionable
from repro.core.scheduler import dcc_schedule
from repro.core.vpt import deletable_vertices
from repro.geometry.coverage_eval import evaluate_coverage
from repro.network.deployment import Rectangle, build_network


@pytest.fixture(scope="module")
def deployed():
    net = build_network(420, Rectangle(0, 0, 7.3, 7.3), rc=1.0, rs=1.0, seed=0)
    cycle = outer_boundary_cycle(net)
    protected = set(net.boundary_nodes) | set(cycle)
    return net, cycle, protected


class TestPipeline:
    def test_initial_coverage_is_blanket(self, deployed):
        net, __, __ = deployed
        report = evaluate_coverage(
            list(net.positions.values()), net.rs, net.target_area, 80
        )
        assert report.is_blanket

    @pytest.mark.slow
    @pytest.mark.parametrize("tau", [4, 6])
    def test_schedule_preserves_criterion_and_coverage(self, deployed, tau):
        net, cycle, protected = deployed
        before = is_tau_partitionable(net.graph, [cycle], tau)
        result = dcc_schedule(
            net.graph, protected, tau, rng=random.Random(tau)
        )
        # Theorem 5: partitionability preserved
        after = is_tau_partitionable(result.active, [cycle], tau)
        assert before == after
        # fixpoint
        assert deletable_vertices(result.active, tau, exclude=protected) == []
        # substantial thinning happened
        assert result.num_removed > 0.25 * (len(net.graph) - len(protected))

    @pytest.mark.slow
    @pytest.mark.parametrize("tau", [4, 6])
    def test_geometric_qoc_within_proposition1_bound(self, deployed, tau):
        """Holes of the thinned network obey Dmax <= (tau - 2) Rc.

        gamma = 1 <= 2 sin(pi/tau) for tau <= 6, so these schedules should
        actually stay blanket; the weaker (tau-2)Rc bound must hold a
        fortiori whenever the initial criterion held.
        """
        net, cycle, protected = deployed
        if not is_tau_partitionable(net.graph, [cycle], tau):
            pytest.skip("deployment does not satisfy the criterion initially")
        result = dcc_schedule(
            net.graph, protected, tau, rng=random.Random(100 + tau)
        )
        active_positions = [
            net.positions[v] for v in result.active.vertex_set()
        ]
        report = evaluate_coverage(active_positions, net.rs, net.target_area, 90)
        assert report.max_hole_diameter <= hole_diameter_bound(tau, net.rc) + 0.15

    @pytest.mark.slow
    def test_larger_tau_thins_more(self, deployed):
        net, cycle, protected = deployed
        sizes = {}
        for tau in (3, 6):
            result = dcc_schedule(
                net.graph, protected, tau, rng=random.Random(7)
            )
            sizes[tau] = result.num_active
        assert sizes[6] <= sizes[3]

    def test_requirement_driven_tau_selection(self, deployed):
        net, __, __ = deployed
        requirement = ConfineRequirement(gamma=net.gamma, max_hole_diameter=0.0)
        tau = requirement.max_feasible_tau()
        assert tau == 6  # gamma = 1

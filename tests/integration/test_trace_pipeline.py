"""Synthetic GreenOrbs trace -> network -> DCC pipeline (Figures 5-7)."""

import random

import pytest

from repro.boundary.geometric import outer_boundary_cycle
from repro.core.scheduler import dcc_schedule
from repro.traces.greenorbs import GreenOrbsConfig, generate_greenorbs_trace
from repro.traces.rssi import rssi_cdf


@pytest.fixture(scope="module")
def small_trace():
    config = GreenOrbsConfig(
        node_count=120,
        clusters=6,
        epochs=24,
        strip_width=220.0,
        strip_height=80.0,
    )
    return config, generate_greenorbs_trace(config, seed=4)


class TestTracePipeline:
    def test_threshold_near_target_fraction(self, small_trace):
        config, trace = small_trace
        values = trace.trace.edge_rssi_values()
        kept = sum(1 for v in values if v >= trace.threshold_dbm) / len(values)
        assert kept == pytest.approx(config.edge_keep_fraction, abs=0.05)

    def test_cdf_is_monotone_decreasing(self, small_trace):
        __, trace = small_trace
        values = trace.trace.edge_rssi_values()
        thresholds = [-55.0, -65.0, -75.0, -85.0, -95.0]
        fractions = rssi_cdf(values, thresholds)
        assert fractions == sorted(fractions)

    def test_trace_graph_is_not_udg(self, small_trace):
        """Shadowing must produce non-geometric links (the point of Fig 6-7)."""
        from repro.geometry.embedding import is_valid_udg_embedding

        config, trace = small_trace
        network = trace.as_network(rc=config.max_range, rs=config.max_range)
        assert not is_valid_udg_embedding(
            network.graph, network.positions, config.max_range * 0.7
        )

    def test_dcc_runs_on_trace_and_thins(self, small_trace):
        config, trace = small_trace
        network = trace.as_network(rc=config.max_range, rs=config.max_range)
        cycle = outer_boundary_cycle(network)
        protected = set(cycle)
        left = {}
        for tau in (3, 4):
            result = dcc_schedule(
                network.graph, protected, tau, rng=random.Random(tau)
            )
            left[tau] = result.num_active - len(protected)
        # larger confine size retains at most as many inner nodes
        assert left[4] <= left[3]

"""Smoke tests for the figure drivers, at miniature scale."""

import pytest

from repro.analysis.experiments import (
    run_fig1_mobius,
    run_fig2_vertex_deletion,
    run_fig3_confine_size,
    run_fig4_hgc_comparison,
    run_fig5_rssi_cdf,
)
from repro.traces.greenorbs import GreenOrbsConfig, generate_greenorbs_trace


class TestFig1:
    def test_exact_paper_outcome(self):
        result = run_fig1_mobius()
        assert result.hgc_relative_betti_1 == 1
        assert not result.hgc_verified
        assert result.dcc_partitionable
        assert "false negative" in result.format_table()


class TestFig2:
    def test_small_run(self):
        result = run_fig2_vertex_deletion(
            count=150, degree=16.0, taus=(3, 4), seed=0
        )
        assert set(result.active_by_tau) == {3, 4}
        for tau in (3, 4):
            assert result.preserved(tau), "Theorem 5 violated"
        assert result.active_by_tau[4] <= result.active_by_tau[3]
        assert "Figure 2" in result.format_table()


class TestFig3:
    @pytest.mark.slow
    def test_ratios_normalised_and_decreasing(self):
        result = run_fig3_confine_size(
            count=150, degree=16.0, taus=(3, 4, 5), runs=1, seed=0
        )
        assert result.mean_ratio_by_tau[3] == pytest.approx(1.0)
        assert result.mean_ratio_by_tau[5] <= result.mean_ratio_by_tau[3]
        assert "Figure 3" in result.format_table()


class TestFig4:
    @pytest.mark.slow
    def test_lambda_structure(self):
        # the Fig-4 driver only accepts HGC-verified deployments, which
        # need paper-level density (degree ~25)
        result = run_fig4_hgc_comparison(
            count=150,
            degree=25.0,
            gammas=(2.0, 1.0),
            requirements=(0.0, 1.2),
            runs=1,
            seed=0,
        )
        # infeasible corner: full blanket demanded at gamma = 2
        assert result.saved[(0.0, 2.0)] == 0.0
        assert result.tau_used[(0.0, 2.0)] is None
        # feasible corner: gamma = 1 allows tau = 6
        assert result.tau_used[(0.0, 1.0)] == 6
        assert 0.0 <= result.saved[(0.0, 1.0)] <= 1.0
        # relaxed requirement can only increase the feasible tau
        assert result.tau_used[(1.2, 1.0)] >= result.tau_used[(0.0, 1.0)]
        assert "Figure 4" in result.format_table()


class TestFig5:
    def test_cdf_rows(self):
        config = GreenOrbsConfig(
            node_count=100, clusters=5, epochs=16,
            strip_width=200.0, strip_height=70.0,
        )
        trace = generate_greenorbs_trace(config, seed=3)
        result = run_fig5_rssi_cdf(trace=trace)
        assert result.fraction_at_least == sorted(result.fraction_at_least)
        assert result.kept_fraction == pytest.approx(0.8, abs=0.05)
        assert "Figure 5" in result.format_table()

"""Multiply-connected target areas: cone filling + scheduling end-to-end."""

import random

import pytest

from repro.core.boundary_repair import repair_inner_boundaries
from repro.core.criterion import is_tau_partitionable
from repro.core.scheduler import dcc_schedule
from repro.core.vpt import deletable_vertices
from repro.network.topologies import annulus_network


@pytest.fixture
def repaired_annulus():
    annulus = annulus_network(outer_size=20, rings=4)
    repaired = repair_inner_boundaries(
        annulus.graph, [annulus.outer_boundary, annulus.inner_boundary]
    )
    return annulus, repaired


class TestAnnulusPipeline:
    def test_multi_boundary_criterion_direct(self, repaired_annulus):
        annulus, __ = repaired_annulus
        cycles = [annulus.outer_boundary, annulus.inner_boundary]
        # Proposition 3: the boundary *sum* is partitionable in the band
        assert is_tau_partitionable(annulus.graph, cycles, 3)

    def test_cone_filled_outer_criterion(self, repaired_annulus):
        annulus, repaired = repaired_annulus
        assert is_tau_partitionable(
            repaired.graph, [annulus.outer_boundary], 3
        )

    def test_schedule_on_repaired_graph(self, repaired_annulus):
        annulus, repaired = repaired_annulus
        result = dcc_schedule(
            repaired.graph, repaired.protected, 4, rng=random.Random(0)
        )
        # apex survives, both boundary rings survive
        assert set(repaired.apexes) <= result.coverage_set
        assert set(annulus.outer_boundary) <= result.coverage_set
        assert set(annulus.inner_boundary) <= result.coverage_set
        # outer boundary still partitionable after thinning (Theorem 5)
        assert is_tau_partitionable(
            result.active, [annulus.outer_boundary], 4
        )
        assert (
            deletable_vertices(result.active, 4, exclude=repaired.protected)
            == []
        )

    def test_multi_boundary_sum_still_partitionable_without_cone(self):
        """Scheduling the raw annulus under Proposition 3's criterion."""
        annulus = annulus_network(outer_size=16, rings=4)
        protected = set(annulus.outer_boundary) | set(annulus.inner_boundary)
        cycles = [annulus.outer_boundary, annulus.inner_boundary]
        before = is_tau_partitionable(annulus.graph, cycles, 4)
        result = dcc_schedule(annulus.graph, protected, 4, rng=random.Random(1))
        after = is_tau_partitionable(result.active, cycles, 4)
        assert before == after

"""The shadow-oracle contract end to end: a sanitized figure run is
violation-free and produces byte-identical schedules/tables.

This is the acceptance gate of the checks layer — the sanitizer must be
a pure observer: every fresh kernel verdict, cache hit and k-ball it
recomputes on the dict oracles must agree (zero violations), and turning
it on must not perturb the schedule in any way.
"""

from repro.analysis.experiments import run_fig2_vertex_deletion
from repro.checks.sanitizer import (
    current_sanitizer,
    disable_sanitizer,
    enable_sanitizer,
)


class TestSanitizedFig2:
    def test_clean_and_byte_identical(self):
        disable_sanitizer()
        plain = run_fig2_vertex_deletion(count=70, degree=10.0, taus=(3, 4), seed=0)
        enable_sanitizer()
        try:
            sanitized = run_fig2_vertex_deletion(
                count=70, degree=10.0, taus=(3, 4), seed=0
            )
            sanitizer = current_sanitizer()
            assert sanitizer.violations == []
            assert sanitizer.checks.get("fresh_verdict", 0) > 0
            assert sanitizer.total_checks > 0
        finally:
            disable_sanitizer()
        assert sanitized.format_table() == plain.format_table()
        assert sanitized.active_by_tau == plain.active_by_tau

    def test_sanitized_parallel_matches_serial(self):
        enable_sanitizer()
        try:
            serial = run_fig2_vertex_deletion(
                count=70, degree=10.0, taus=(3, 4), seed=0, workers=1
            )
            fanned = run_fig2_vertex_deletion(
                count=70, degree=10.0, taus=(3, 4), seed=0, workers=2
            )
            assert current_sanitizer().violations == []
        finally:
            disable_sanitizer()
        assert fanned.format_table() == serial.format_table()

"""The sweep infrastructure drives real scheduling experiments."""

import random

from repro.analysis.sweeps import parameter_grid, run_sweep
from repro.core.scheduler import dcc_schedule
from repro.network.topologies import triangulated_grid


def schedule_cell(columns, tau, seed):
    """One sweep cell: schedule a mesh, report the coverage-set size."""
    mesh = triangulated_grid(columns, columns)
    result = dcc_schedule(
        mesh.graph, set(mesh.outer_boundary), tau, rng=random.Random(seed)
    )
    return {
        "total": len(mesh.graph),
        "active": result.num_active,
        "removed": result.num_removed,
    }


class TestSweepPipeline:
    def test_grid_sweep_produces_full_table(self, tmp_path):
        grid = parameter_grid(columns=[6, 7], tau=[6, 7])
        result = run_sweep(schedule_cell, grid, seeds=(0, 1))
        assert len(result) == 8

        means = result.mean_by(["columns", "tau"], "active")
        assert set(means) == {(6, 6), (6, 7), (7, 6), (7, 7)}
        # larger tau never keeps more nodes on the same mesh (averaged)
        assert means[(6, 7)] <= means[(6, 6)] + 1
        assert means[(7, 7)] <= means[(7, 6)] + 1

        csv_path = tmp_path / "sweep.csv"
        result.to_csv(str(csv_path))
        header = csv_path.read_text().splitlines()[0]
        assert header == "columns,tau,seed,total,active,removed"

"""Property-based tests for geometric primitives."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boundary.geometric import winding_number
from repro.geometry.holes import minimum_enclosing_circle
from repro.geometry.disks import regular_polygon_with_side, polygon_inradius

coords = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
points = st.tuples(coords, coords)


class TestWelzlProperties:
    @given(st.lists(points, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_circle_contains_all_points(self, pts):
        circle = minimum_enclosing_circle(pts)
        for p in pts:
            assert circle.contains(p, slack=1e-6)

    @given(st.lists(points, min_size=2, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_diameter_at_least_max_pairwise_distance(self, pts):
        circle = minimum_enclosing_circle(pts)
        widest = max(
            math.hypot(a[0] - b[0], a[1] - b[1]) for a in pts for b in pts
        )
        assert circle.diameter >= widest - 1e-6

    @given(st.lists(points, min_size=1, max_size=25), points)
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, pts, shift):
        dx, dy = shift
        base = minimum_enclosing_circle(pts)
        moved = minimum_enclosing_circle([(x + dx, y + dy) for x, y in pts])
        assert moved.radius == base.radius or math.isclose(
            moved.radius, base.radius, rel_tol=1e-6, abs_tol=1e-6
        )


class TestWindingProperties:
    @given(st.integers(min_value=3, max_value=12), st.floats(0.3, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_regular_polygon_winds_once_around_center(self, n, side):
        polygon = regular_polygon_with_side(n, side)
        assert abs(winding_number(polygon, (0.0, 0.0))) > 0.99

    @given(st.integers(min_value=3, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_far_points_wind_zero(self, n):
        polygon = regular_polygon_with_side(n, 1.0)
        assert abs(winding_number(polygon, (100.0, 100.0))) < 0.01

    @given(st.integers(min_value=3, max_value=12), st.floats(0.5, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_inradius_point_enclosed(self, n, side):
        polygon = regular_polygon_with_side(n, side)
        r = polygon_inradius(n, side)
        probe = (0.6 * r, 0.0)
        assert abs(winding_number(polygon, probe)) > 0.99

"""Property-based tests for Proposition 1's threshold structure."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confine import (
    ConfineRequirement,
    blanket_sensing_ratio_threshold,
    guarantees_blanket,
    hole_diameter_bound,
    max_blanket_tau,
)

gammas = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)
taus = st.integers(min_value=3, max_value=32)


class TestThresholdStructure:
    @given(taus)
    def test_threshold_strictly_decreasing(self, tau):
        assert blanket_sensing_ratio_threshold(
            tau
        ) > blanket_sensing_ratio_threshold(tau + 1)

    @given(gammas)
    def test_max_blanket_tau_is_exactly_the_frontier(self, gamma):
        tau = max_blanket_tau(gamma, tau_cap=64)
        if tau is None:
            assert not guarantees_blanket(3, gamma)
            return
        assert guarantees_blanket(tau, gamma)
        if tau < 64:
            assert not guarantees_blanket(tau + 1, gamma)

    @given(taus, st.floats(min_value=0.1, max_value=5.0))
    def test_hole_bound_scales_linearly_with_rc(self, tau, rc):
        assert hole_diameter_bound(tau, rc) == (tau - 2) * rc


class TestRequirementStructure:
    @given(gammas, st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=80)
    def test_feasible_set_is_prefix(self, gamma, dmax):
        requirement = ConfineRequirement(gamma=gamma, max_hole_diameter=dmax)
        taus_ok = requirement.feasible_taus(tau_cap=20)
        if taus_ok:
            assert taus_ok == list(range(3, taus_ok[-1] + 1))

    @given(gammas, st.floats(min_value=0.0, max_value=3.0),
           st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=80)
    def test_relaxing_requirement_never_shrinks_tau(self, gamma, dmax, extra):
        tight = ConfineRequirement(gamma=gamma, max_hole_diameter=dmax)
        loose = ConfineRequirement(gamma=gamma, max_hole_diameter=dmax + extra)
        tau_tight = tight.max_feasible_tau(tau_cap=20)
        tau_loose = loose.max_feasible_tau(tau_cap=20)
        if tau_tight is not None:
            assert tau_loose is not None
            assert tau_loose >= tau_tight

    @given(st.floats(min_value=0.05, max_value=1.9),
           st.floats(min_value=0.01, max_value=0.1))
    @settings(max_examples=80)
    def test_shrinking_gamma_never_shrinks_tau(self, gamma, delta):
        big = ConfineRequirement(gamma=gamma + delta)
        small = ConfineRequirement(gamma=gamma)
        tau_big = big.max_feasible_tau(tau_cap=30)
        tau_small = small.max_feasible_tau(tau_cap=30)
        if tau_big is not None:
            assert tau_small is not None
            assert tau_small >= tau_big

"""Property-based tests for GF(2) linear algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cycles.gf2 import GF2Basis, gf2_rank, gf2_solve

vectors = st.lists(st.integers(min_value=0, max_value=2**24 - 1), max_size=24)


class TestBasisProperties:
    @given(vectors)
    def test_rank_bounded_by_count_and_width(self, vecs):
        rank = gf2_rank(vecs)
        assert rank <= len([v for v in vecs if v])
        assert rank <= 24

    @given(vectors)
    def test_every_input_in_span(self, vecs):
        basis = GF2Basis(vecs)
        for v in vecs:
            assert basis.contains(v)

    @given(vectors, vectors)
    def test_rank_monotone_under_union(self, a, b):
        assert gf2_rank(a + b) >= gf2_rank(a)
        assert gf2_rank(a + b) <= gf2_rank(a) + gf2_rank(b)

    @given(vectors)
    def test_xor_closure(self, vecs):
        """The span is closed under XOR of any two inputs."""
        basis = GF2Basis(vecs)
        for i in range(min(len(vecs), 5)):
            for j in range(i):
                assert basis.contains(vecs[i] ^ vecs[j])

    @given(vectors)
    def test_reduce_idempotent(self, vecs):
        basis = GF2Basis(vecs)
        for v in vecs[:5]:
            residue = basis.reduce(v)
            assert basis.reduce(residue) == residue

    @given(vectors)
    def test_insertion_order_does_not_change_span_rank(self, vecs):
        assert gf2_rank(vecs) == gf2_rank(list(reversed(vecs)))


class TestSolveProperties:
    @given(vectors, st.integers(min_value=0, max_value=2**24 - 1))
    def test_solve_soundness(self, vecs, target):
        chosen = gf2_solve(target, vecs)
        if chosen is not None:
            total = 0
            for i in chosen:
                total ^= vecs[i]
            assert total == target

    @given(vectors, st.data())
    def test_solve_completeness_for_span_members(self, vecs, data):
        """Any XOR of a subset must be solvable."""
        if not vecs:
            return
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(vecs) - 1),
                max_size=len(vecs),
                unique=True,
            )
        )
        target = 0
        for i in subset:
            target ^= vecs[i]
        assert gf2_solve(target, vecs) is not None

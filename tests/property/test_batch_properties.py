"""Property tests for the batched verdict kernel and the shm transport.

Two contracts from the batch/shm PR:

* **Batch == scalar.**  ``span_verdict_batch`` answers Definition 5 for
  a whole wave; it must agree with the scalar kernel's per-candidate
  ``span_connected_verdict`` bit for bit — on any graph, at any tau,
  and at any point along a deletion schedule (stale-cache territory).
  The engine-level entry point must likewise match a scalar engine's
  ``deletable`` answers exactly.
* **Shm round-trip identity.**  Publishing a partition (or a whole
  graph) as a shared CSR segment and attaching it back yields exactly
  the tuples the pickled-blob transport carries — and a
  :class:`LocalShard` built from either transport behaves identically:
  same sub-round decisions, same exports, same counters after replaying
  the same deletions.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cycles.batch as batch_mod
from repro.cycles.batch import numpy_available, span_verdict_batch
from repro.network.graph import NetworkGraph
from repro.shard import build_shard_plan
from repro.shard.plan import partition_blob, partition_parts
from repro.shard.runtime import LocalShard
from repro.topology import LocalTopologyEngine

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="batch kernel requires numpy"
)


def _random_graph(seed: int, nodes: int, density: float) -> NetworkGraph:
    rng = random.Random(seed)
    graph = NetworkGraph(range(nodes))
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


@st.composite
def random_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=6, max_value=24))
    density = draw(st.sampled_from((0.15, 0.3, 0.5)))
    return _random_graph(seed, nodes, density)


@pytest.fixture(scope="module", autouse=True)
def _always_pack():
    # The packed pipeline only engages on fat waves; zero the floor so
    # these small graphs actually exercise it rather than the scalar
    # fallback.  (Module-scoped by hand: hypothesis rejects
    # function-scoped fixtures under @given.)
    previous = batch_mod.BATCH_MIN_CANDIDATES
    batch_mod.BATCH_MIN_CANDIDATES = 0
    yield
    batch_mod.BATCH_MIN_CANDIDATES = previous


class TestBatchMatchesScalar:
    @given(
        random_graphs(),
        st.sampled_from((3, 4, 5)),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_kernel_batch_equals_scalar_under_deletions(
        self, graph, tau, seed
    ):
        """Whole-wave verdicts == scalar verdicts along a deletion path."""
        engine = LocalTopologyEngine(graph, tau, use_kernel=True)
        kernel = engine.kernel
        rng = random.Random(seed)
        while True:
            alive = sorted(engine.graph.vertices())
            if len(alive) <= 2:
                break
            waves = [
                kernel.punctured_ball_slots(v, engine.radius) for v in alive
            ]
            batch = span_verdict_batch(kernel, waves, tau)
            scalar = [
                kernel.span_connected_verdict(list(w), tau) for w in waves
            ]
            assert batch == scalar
            # Extend the deletion prefix and re-check on the mutated
            # graph (exercises the per-kernel adjacency caches across
            # edge-structure versions).
            victims = rng.sample(alive, k=min(len(alive) - 2, 3))
            for v in victims:
                engine.delete_vertex(v)

    @given(random_graphs(), st.sampled_from((3, 4, 5)))
    @settings(max_examples=25, deadline=None)
    def test_engine_batch_entry_point_matches_deletable(self, graph, tau):
        """``span_verdicts_batch`` == ``deletable``, caches and all."""
        batch_eng = LocalTopologyEngine(graph.copy(), tau, use_kernel=True)
        scalar_eng = LocalTopologyEngine(graph.copy(), tau, use_kernel=True)
        vertices = sorted(graph.vertices())
        # Twice: the second pass answers from the verdict cache.
        for _ in range(2):
            batched = batch_eng.span_verdicts_batch(vertices)
            scalar = [scalar_eng.deletable(v) for v in vertices]
            assert batched == scalar
        assert (
            batch_eng.counters.deletability_tests
            == scalar_eng.counters.deletability_tests
        )


class TestShmRoundTrip:
    @given(
        random_graphs(),
        st.sampled_from((3, 4)),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_segment_round_trip_matches_pickled_parts(
        self, graph, tau, shards
    ):
        """attach(publish(partition)) == the pickled-blob tuples."""
        from repro.parallel.shm import (
            attach_graph,
            publish_graph,
            publish_partition,
            shm_available,
        )
        from repro.shard.segment import attach_partition

        if not shm_available():
            pytest.skip("shared memory unavailable on this host")
        plan = build_shard_plan(graph, tau, shards)
        for spec in plan.specs:
            owned, halo, boundary, edges = partition_parts(graph, spec)
            segment = publish_partition(graph, spec)
            try:
                a_owned, a_halo, a_boundary, a_graph = attach_partition(
                    segment.descriptor
                )
            finally:
                segment.close()
            assert a_owned == tuple(owned)
            assert a_halo == tuple(halo)
            assert a_boundary == tuple(boundary)
            assert sorted(a_graph.vertices()) == sorted(owned + halo)
            assert sorted(a_graph.edges()) == sorted(edges)
        segment = publish_graph(graph)
        try:
            round_tripped = attach_graph(segment.descriptor)
        finally:
            segment.close()
        assert sorted(round_tripped.vertices()) == sorted(graph.vertices())
        assert sorted(round_tripped.edges()) == sorted(graph.edges())

    @given(
        random_graphs(),
        st.sampled_from((3, 4)),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_shard_behaves_identically_from_either_transport(
        self, graph, tau, seed
    ):
        """blob-built vs shm-built LocalShard: same rounds, same counters."""
        from repro.parallel.shm import publish_partition, shm_available
        from repro.shard.segment import ShmSource

        if not shm_available():
            pytest.skip("shared memory unavailable on this host")
        plan = build_shard_plan(graph, tau, shards=2)
        spec = plan.specs[0]
        segment = publish_partition(graph, spec)
        try:
            from_blob = LocalShard(0, tau, partition_blob(graph, spec))
            from_shm = LocalShard(0, tau, ShmSource(segment.descriptor))
        finally:
            segment.close()
        rng = random.Random(seed)
        order = list(spec.members)
        rng.shuffle(order)
        rows = [(v, position) for position, v in enumerate(order)]
        owned = set(spec.owned)
        owned_rows = [r for r in rows if r[0] in owned]
        halo_rows = [r for r in rows if r[0] not in owned]
        for shard in (from_blob, from_shm):
            shard.begin_round(owned_rows, halo_rows)
        result_blob = from_blob.mis_subround()
        result_shm = from_shm.mis_subround()
        assert result_blob == result_shm
        winners = result_blob[0]
        for shard in (from_blob, from_shm):
            shard.apply_deletions(winners)
        assert from_blob.counters_snapshot() == from_shm.counters_snapshot()

"""Property-based tests: CSR kernel == dict oracle, parallel == serial.

Two invariants carry the whole PR:

* the kernel's compact-adjacency primitives (BFS distances, deletability
  verdicts) agree with the dict-based reference implementations on any
  graph and after any interleaving of mutations, and
* fanning work over a process pool never changes output — schedules and
  sweep rows at a fixed seed are byte-identical at any worker count.
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import dcc_schedule
from repro.network.graph import NetworkGraph
from repro.topology import LocalTopologyEngine


@pytest.fixture(scope="module", autouse=True)
def _force_fanout():
    # The crossover guard would keep these tiny graphs off the process
    # pool; zero it so the pool path is what gets property-tested.
    # (Module-scoped by hand: hypothesis rejects function-scoped
    # fixtures under @given.)
    previous = os.environ.get("REPRO_FANOUT_MIN_NODES")
    os.environ["REPRO_FANOUT_MIN_NODES"] = "0"
    yield
    if previous is None:
        os.environ.pop("REPRO_FANOUT_MIN_NODES", None)
    else:
        os.environ["REPRO_FANOUT_MIN_NODES"] = previous


def _random_graph(seed: int, nodes: int, density: float) -> NetworkGraph:
    rng = random.Random(seed)
    graph = NetworkGraph(range(nodes))
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


@st.composite
def random_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=6, max_value=20))
    density = draw(st.sampled_from((0.15, 0.25, 0.4)))
    return _random_graph(seed, nodes, density)


class TestKernelAgreesWithOracle:
    @given(random_graphs(), st.integers(min_value=3, max_value=6), st.data())
    @settings(max_examples=30, deadline=None)
    def test_deletability_matches_under_mutations(self, graph, tau, data):
        kernel = LocalTopologyEngine(graph.copy(), tau, use_kernel=True)
        oracle = LocalTopologyEngine(graph.copy(), tau, use_kernel=False)
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            vertices = sorted(kernel.graph.vertices())
            if len(vertices) <= 2:
                break
            for v in vertices:
                assert kernel.deletable(v) == oracle.deletable(v)
            # Mutate both sides identically: delete a vertex, an edge,
            # or stitch a fresh edge between survivors.
            action = data.draw(st.sampled_from(("vertex", "edge", "add")))
            if action == "vertex":
                victim = data.draw(st.sampled_from(vertices))
                kernel.delete_vertex(victim)
                oracle.delete_vertex(victim)
            elif action == "edge":
                edges = sorted(kernel.graph.edges())
                if edges:
                    u, v = data.draw(st.sampled_from(edges))
                    kernel.delete_edge(u, v)
                    oracle.delete_edge(u, v)
            else:
                u = data.draw(st.sampled_from(vertices))
                v = data.draw(st.sampled_from(vertices))
                if u != v and not kernel.graph.has_edge(u, v):
                    kernel.add_edge(u, v)
                    oracle.add_edge(u, v)

    @given(random_graphs(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_bfs_distances_match_dict_path(self, graph, data):
        csr = graph.csr()
        cutoff = data.draw(st.one_of(st.none(), st.integers(1, 4)))
        for v in graph.vertices():
            assert csr.bfs_distances(v, cutoff=cutoff) == graph.bfs_distances(
                v, cutoff=cutoff
            )


class TestParallelMatchesSerial:
    @given(
        st.integers(min_value=0, max_value=1_000),
        st.integers(min_value=3, max_value=5),
    )
    @settings(max_examples=8, deadline=None)
    def test_schedule_identical_at_any_worker_count(self, seed, tau):
        graph = _random_graph(seed, nodes=18, density=0.3)
        protected = set(sorted(graph.vertices())[:3])
        serial = dcc_schedule(
            graph, protected, tau, rng=random.Random(seed), workers=1
        )
        fanned = dcc_schedule(
            graph, protected, tau, rng=random.Random(seed), workers=2
        )
        assert fanned.removed == serial.removed
        assert fanned.deletions_per_round == serial.deletions_per_round

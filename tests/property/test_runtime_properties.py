"""Property-based tests for the distributed runtime."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topologies import triangulated_grid
from repro.runtime.messages import Message, MessageKind
from repro.runtime.mis import distributed_mis
from repro.runtime.simulator import Simulator


class TestSimulatorProperties:
    @given(st.integers(min_value=0, max_value=23), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_broadcast_delivery_is_exactly_neighbourhood(self, src, seed):
        mesh = triangulated_grid(4, 6)
        sim = Simulator(mesh.graph)
        sim.send(Message(MessageKind.TOPOLOGY, src=src, payload=seed))
        sim.step()
        receivers = {
            v for v in mesh.graph.vertices() if sim.inbox(v)
        }
        assert receivers == mesh.graph.neighbors(src)

    @given(st.lists(st.integers(min_value=0, max_value=23), max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_message_conservation(self, sources):
        mesh = triangulated_grid(4, 6)
        sim = Simulator(mesh.graph)
        for src in sources:
            sim.send(Message(MessageKind.DELETE, src=src, payload=None))
        sim.step()
        delivered = sum(len(sim.inbox(v)) for v in mesh.graph.vertices())
        expected = sum(mesh.graph.degree(src) for src in sources)
        assert delivered == expected == sim.stats.messages_delivered


class TestDistributedMisProperties:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=99),
        st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_winner_separation_for_any_candidate_set(self, m, seed, data):
        mesh = triangulated_grid(5, 5)
        vertices = sorted(mesh.graph.vertices())
        candidates = data.draw(
            st.lists(st.sampled_from(vertices), min_size=1, max_size=12,
                     unique=True)
        )
        sim = Simulator(mesh.graph)
        winners = distributed_mis(sim, candidates, m, random.Random(seed))
        assert winners
        assert set(winners) <= set(candidates)
        for i, u in enumerate(winners):
            dist = mesh.graph.bfs_distances(u)
            for v in winners[i + 1:]:
                assert dist[v] > m - 1

    @given(st.integers(min_value=0, max_value=99))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_winners(self, seed):
        mesh = triangulated_grid(5, 5)
        candidates = sorted(mesh.graph.vertices())[::3]
        first = distributed_mis(
            Simulator(mesh.graph), candidates, 3, random.Random(seed)
        )
        second = distributed_mis(
            Simulator(mesh.graph), candidates, 3, random.Random(seed)
        )
        assert first == second

    @given(st.integers(min_value=0, max_value=49))
    @settings(max_examples=10, deadline=None)
    def test_repeated_rounds_exhaust_candidates(self, seed):
        """Iterating MIS rounds (as the protocol does) drains every
        candidate: each round elects at least one winner."""
        mesh = triangulated_grid(5, 5)
        remaining = set(sorted(mesh.graph.vertices())[::3])
        rng = random.Random(seed)
        rounds = 0
        while remaining and rounds < 100:
            winners = distributed_mis(
                Simulator(mesh.graph), sorted(remaining), 3, rng
            )
            assert winners, "an MIS round elected nobody"
            remaining -= set(winners)
            rounds += 1
        assert not remaining

"""Property-based tests for failure injection and repair."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criterion import is_tau_partitionable
from repro.core.repair import (
    assess_failures,
    inject_random_failures,
    repair_coverage,
)
from repro.core.scheduler import dcc_schedule
from repro.network.topologies import triangulated_grid


@st.composite
def scheduled_meshes(draw):
    cols = draw(st.integers(min_value=5, max_value=7))
    rows = draw(st.integers(min_value=5, max_value=7))
    tau = draw(st.sampled_from([6, 7]))
    mesh = triangulated_grid(cols, rows)
    boundary = mesh.outer_boundary
    seed = draw(st.integers(min_value=0, max_value=10))
    result = dcc_schedule(
        mesh.graph, set(boundary), tau, rng=random.Random(seed)
    )
    return mesh, boundary, tau, result


class TestRepairProperties:
    @given(scheduled_meshes(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_repair_restores_or_reports_impossible(self, case, data):
        mesh, boundary, tau, schedule = case
        rng = random.Random(data.draw(st.integers(0, 99)))
        count = data.draw(st.integers(min_value=1, max_value=3))
        internal = sorted(mesh.graph.vertex_set() - set(boundary))
        if count > len(internal):
            return
        victims = inject_random_failures(
            internal, count, rng
        )
        repaired = repair_coverage(
            mesh.graph,
            schedule.coverage_set,
            [boundary],
            boundary,
            tau,
            victims,
            rng=rng,
        )
        alive = mesh.graph.induced_subgraph(
            mesh.graph.vertex_set() - victims
        )
        alive_supports = is_tau_partitionable(alive, [boundary], tau)
        if repaired.restored:
            assert is_tau_partitionable(repaired.active, [boundary], tau)
            assert victims.isdisjoint(repaired.active.vertex_set())
        else:
            # repair may only give up when even full wake-up cannot help
            assert not alive_supports

    @given(scheduled_meshes(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_assessment_matches_direct_check(self, case, data):
        mesh, boundary, tau, schedule = case
        active_internal = sorted(
            schedule.coverage_set - set(boundary)
        )
        if not active_internal:
            return
        victim = data.draw(st.sampled_from(active_internal))
        verdict = assess_failures(schedule.active, [boundary], tau, [victim])
        survivors = schedule.active.copy()
        survivors.remove_vertex(victim)
        direct = is_tau_partitionable(survivors, [boundary], tau)
        assert verdict.criterion_survived == direct

"""Property-based tests: the static envelopes hold on random runs.

The repro-bounds contract is that its statically certified bounds are
*sound*: no concrete execution, on any graph, may push a measured meter
past its envelope.  Hypothesis drives random deployments through both
the sharded scheduler and the distributed protocol and asserts the
measured meters stay inside the same manifest the CI gate checks, and
that the bound-expression evaluator agrees with plain Python arithmetic.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks.bounds import run_bounds
from repro.core.scheduler import dcc_schedule
from repro.network.graph import NetworkGraph
from repro.obs.envelope import (
    check_envelope,
    eval_bound,
    max_bfs_depth_from_tracer,
    measured_from_runtime_stats,
    measured_from_shard_stats,
    moore_ball_bound,
    shape_params_from_graph,
)
from repro.obs.tracer import Tracer
from repro.runtime.protocol import distributed_dcc_schedule

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

# One static pass for the whole module: the manifest is a function of
# the source tree alone, not of the runs checked against it.
_MANIFEST = run_bounds([SRC / "repro"], REPO_ROOT)[1].as_dict()


def _random_graph(seed: int, nodes: int, density: float) -> NetworkGraph:
    rng = random.Random(seed)
    graph = NetworkGraph(range(nodes))
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


@st.composite
def random_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=8, max_value=20))
    density = draw(st.sampled_from((0.2, 0.3, 0.45)))
    return _random_graph(seed, nodes, density)


class TestEnvelopesAreSound:
    @given(
        random_graphs(),
        st.integers(min_value=3, max_value=6),
        st.sampled_from((2, 3)),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_run_stays_inside_envelopes(self, graph, tau, shards):
        protected = set(sorted(graph.vertices())[:3])
        tracer = Tracer()
        result = dcc_schedule(
            graph.copy(),
            protected,
            tau,
            seed=0,
            shards=shards,
            workers=1,
            tracer=tracer,
        )
        params = shape_params_from_graph(graph, tau)
        params["rounds"] = max(result.rounds, 1)
        measured = {}
        stats = result.shard_stats
        if stats is not None:
            measured.update(measured_from_shard_stats(stats))
            params["shards"] = stats.shard_count
            params["halo_members"] = sum(stats.halo_sizes)
            params["subrounds"] = max(stats.subrounds_per_round, default=0)
        depth = max_bfs_depth_from_tracer(tracer)
        if depth is not None:
            measured["bfs.max_depth"] = depth
        report = check_envelope(_MANIFEST, measured, params)
        assert report.ok, report.format_diff()

    @given(
        random_graphs(),
        st.integers(min_value=3, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_distributed_run_stays_inside_envelopes(self, graph, tau):
        protected = set(sorted(graph.vertices())[:3])
        result = distributed_dcc_schedule(graph.copy(), protected, tau, seed=0)
        params = shape_params_from_graph(graph, tau)
        params["rounds"] = max(result.iterations, 1)
        params["deletions"] = len(result.removed)
        measured = measured_from_runtime_stats(result.stats)
        report = check_envelope(_MANIFEST, measured, params)
        assert report.ok, report.format_diff()


class TestEvaluatorConsistency:
    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_eval_bound_matches_python(self, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert eval_bound("a + b * c", env) == a + b * c
        assert eval_bound("(a + b) // c", env) == (a + b) // c
        assert eval_bound("min(a, b) + max(b, c)", env) == min(a, b) + max(b, c)
        assert eval_bound("a - b - c", env) == a - b - c

    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_moore_bound_dominates_real_balls(self, seed, delta_cap, radius):
        graph = _random_graph(seed, 14, 0.3)
        n = len(list(graph.vertices()))
        delta = max((graph.degree(v) for v in graph.vertices()), default=0)
        for v in graph.vertices():
            ball = graph.bfs_distances(v, cutoff=radius)
            assert len(ball) <= moore_ball_bound(n, delta, radius)

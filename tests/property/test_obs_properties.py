"""Property tests for the observability layer's determinism contract.

The headline guarantee (DESIGN.md section 6): at a fixed seed, a sweep's
run-report is identical at any worker count once
:func:`repro.obs.export.strip_volatile` removes the wall-clock fields —
span structure, call counts, merged counters and histogram contents all
survive the serial-to-fanned-out transition byte-for-byte.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import parameter_grid, run_sweep
from repro.core.scheduler import dcc_schedule
from repro.network.deployment import Rectangle, build_network
from repro.obs import (
    MetricsRegistry,
    Tracer,
    load_run_report,
    observe,
    strip_volatile,
    validate_run_report,
)


def _schedule_cell(count, seed):
    """Module-level (picklable) sweep cell: one small DCC schedule."""
    net = build_network(count, Rectangle(0, 0, 4.2, 4.2), 1.0, 1.0, seed=seed)
    result = dcc_schedule(
        net.graph, set(net.boundary_nodes), 4, rng=random.Random(seed)
    )
    return {"num_active": result.num_active, "rounds": result.rounds}


def _report_for(workers, counts, seeds, tmp_path):
    out = tmp_path / f"workers{workers}"
    run_sweep(
        _schedule_cell,
        parameter_grid(count=counts),
        seeds=seeds,
        workers=workers,
        report_dir=str(out),
        report_name="cells",
    )
    report = load_run_report(str(out / "cells.json"))
    validate_run_report(report)
    return report


class TestReportWorkerInvariance:
    @given(
        counts=st.lists(
            st.integers(min_value=25, max_value=45),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        seeds=st.lists(
            st.integers(min_value=0, max_value=10),
            min_size=1,
            max_size=2,
            unique=True,
        ),
    )
    @settings(max_examples=5, deadline=None)
    def test_serial_and_fanned_reports_agree(self, counts, seeds, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("obs-reports")
        serial = _report_for(1, counts, tuple(seeds), tmp_path)
        fanned = _report_for(2, counts, tuple(seeds), tmp_path)
        # Wall-clock aside, the observations must be indistinguishable.
        assert strip_volatile(serial) == strip_volatile(fanned)
        # The raw reports differ only in the volatile fields: the span
        # structure itself (names, call counts) already agrees.
        assert sorted(serial["phases"]) == sorted(fanned["phases"])
        for phase in serial["phases"]:
            assert (
                serial["phases"][phase]["calls"]
                == fanned["phases"][phase]["calls"]
            )

    def test_ambient_merge_preserves_structure(self, tmp_path):
        """A reported sweep inside an observation leaves its spans behind."""
        tracer, metrics = Tracer(), MetricsRegistry()
        with observe(tracer, metrics):
            run_sweep(
                _schedule_cell,
                parameter_grid(count=(30,)),
                seeds=(0,),
                workers=1,
                report_dir=str(tmp_path),
                report_name="ambient",
            )
        names = {span.name for span in tracer.spans()}
        assert "sweep.run" in names
        assert "fanout.task" in names
        assert "scheduler.round" in names
        assert metrics.counter("scheduler.runs").value == 1


class TestSpanStreamProperties:
    @given(
        shape=st.recursive(
            st.just([]),
            lambda children: st.lists(children, min_size=1, max_size=3),
            max_leaves=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_exit_order_invariant_for_any_nesting(self, shape):
        """However spans nest, children always precede their parent."""
        tracer = Tracer()

        def walk(nodes):
            for i, node in enumerate(nodes):
                with tracer.trace(f"span{tracer.depth}.{i}"):
                    walk(node)

        walk(shape)
        spans = tracer.spans()
        # Scanning backwards, depth may rise by at most one per step —
        # exactly the property the profile tree and phase aggregation
        # reconstruction rely on.
        for later, earlier in zip(spans[::-1], spans[-2::-1]):
            assert earlier.depth <= later.depth + 1

    @given(
        walls=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_ring_buffer_conserves_span_count(self, walls, capacity):
        tracer = Tracer(capacity=capacity)
        for i, wall in enumerate(walls):
            tracer.add_span(f"s{i}", wall)
        assert len(tracer.spans()) == min(len(walls), capacity)
        assert len(tracer.spans()) + tracer.dropped == len(walls)
        # The survivors are exactly the newest spans, oldest first.
        expect = [f"s{i}" for i in range(len(walls))][-capacity:]
        assert [s.name for s in tracer.spans()] == expect


class TestShardedReportInvariance:
    """Sharded runs join the worker-invariance contract (DESIGN.md §11).

    At a fixed seed and shard count, the run-report — including the
    attribution block's deterministic skeleton — is identical after
    :func:`strip_volatile` whether the shards are hosted inline
    (``workers=1``) or in worker processes, and the deletion schedule
    matches the unsharded engine's exactly.
    """

    @staticmethod
    def _network(count, seed):
        net = build_network(
            count, Rectangle(0, 0, 4.2, 4.2), 1.0, 1.0, seed=seed
        )
        return net.graph, set(net.boundary_nodes)

    @staticmethod
    def _sharded_report(graph, protected, tau, shards, workers):
        from repro.obs import attribution_from_tracer, build_run_report
        from repro.shard import sharded_dcc_schedule

        tracer, metrics = Tracer(), MetricsRegistry()
        with observe(tracer, metrics):
            result = sharded_dcc_schedule(
                graph,
                protected,
                tau,
                random.Random(7),
                shards=shards,
                workers=workers,
            )
        attribution = attribution_from_tracer(tracer)
        assert attribution is not None
        metrics.absorb_attribution(attribution)
        report = build_run_report(
            "sharded", tracer, metrics, attribution=attribution
        )
        validate_run_report(report)
        return result, report

    @given(
        count=st.integers(min_value=28, max_value=55),
        tau=st.integers(min_value=3, max_value=5),
        shards=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=5, deadline=None)
    def test_inline_and_pooled_reports_agree(self, count, tau, shards, seed):
        graph, protected = self._network(count, seed)
        serial = dcc_schedule(
            graph, protected, tau, rng=random.Random(7), workers=1
        )
        inline_result, inline_report = self._sharded_report(
            graph, protected, tau, shards, workers=1
        )
        pooled_result, pooled_report = self._sharded_report(
            graph, protected, tau, shards, workers=2
        )
        # Identity: the sharded schedule is the serial schedule.
        assert inline_result.removed == serial.removed
        assert pooled_result.removed == serial.removed
        # Observation: reports (attribution skeleton included) are
        # byte-identical at any worker count once volatile is stripped.
        assert strip_volatile(inline_report) == strip_volatile(pooled_report)
        assert "attribution" in strip_volatile(inline_report)
        for phase, entry in inline_report["phases"].items():
            assert entry["calls"] == pooled_report["phases"][phase]["calls"]
        # Exactness: per round, the four lanes cover the coordinator
        # round wall (the --attribute acceptance bound, here at 0%).
        for run in inline_report["attribution"]["runs"]:
            for row in run["rounds"]:
                lanes = (
                    row["compute_s"]
                    + row["barrier_wait_s"]
                    + row["halo_s"]
                    + row["merge_s"]
                )
                assert abs(lanes - row["wall_s"]) <= 0.05 * row["wall_s"] + 1e-9

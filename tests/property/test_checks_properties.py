"""Property tests for the repro.checks layer.

The sanitizer's merge-associativity oracle must accept *every* legal
:class:`~repro.obs.metrics.MetricsRegistry` merge: counters sum, gauges
resolve last-write-wins in submission order, histogram observation lists
concatenate — all associative under re-grouping.  Hypothesis drives
arbitrary registry populations through :func:`check_merge_associativity`
and requires a clean verdict, so any future metric type (or merge-method
edit) that silently breaks associativity fails here before it can fail
in a live sanitized run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks.sanitizer import check_merge_associativity
from repro.obs.metrics import MetricsRegistry

_NAMES = st.sampled_from(
    ["rounds", "verdicts", "cfg.tau", "lat", "runtime.messages", "x"]
)
_VALUES = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)

_OPS = st.lists(
    st.tuples(st.sampled_from(["inc", "gauge", "observe"]), _NAMES, _VALUES),
    max_size=12,
)


def _registry(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for op, name, value in ops:
        # One name, one kind: prefix the op so "inc x" and "observe x"
        # never collide inside a single registry.
        if op == "inc":
            reg.inc(f"c.{name}", int(value))
        elif op == "gauge":
            reg.set_gauge(f"g.{name}", float(value))
        else:
            reg.observe(f"h.{name}", float(value))
    return reg


@settings(max_examples=200, deadline=None)
@given(st.lists(_OPS, min_size=2, max_size=6))
def test_merge_associativity_accepts_all_registry_merges(parts):
    payloads = [_registry(ops).to_payload() for ops in parts]
    assert check_merge_associativity(payloads) is None


@settings(max_examples=100, deadline=None)
@given(st.lists(_OPS, min_size=1, max_size=4))
def test_payload_roundtrip_preserves_registry(parts):
    # The associativity check rebuilds registries from payloads; that
    # reconstruction must be lossless or the oracle compares garbage.
    for ops in parts:
        reg = _registry(ops)
        rebuilt = MetricsRegistry()
        rebuilt.merge_payload(list(reg.to_payload()))
        assert rebuilt.as_dict() == reg.as_dict()


@settings(max_examples=100, deadline=None)
@given(st.lists(_OPS, min_size=2, max_size=5), st.randoms())
def test_fold_order_equals_pairwise_merge(parts, rnd):
    # Any parenthesisation must agree with the canonical left fold, not
    # just the right fold the sanitizer exercises: merge a random split.
    payloads = [_registry(ops).to_payload() for ops in parts]
    left = MetricsRegistry()
    for payload in payloads:
        left.merge_payload(list(payload))
    cut = rnd.randrange(1, len(payloads))
    a, b = MetricsRegistry(), MetricsRegistry()
    for payload in payloads[:cut]:
        a.merge_payload(list(payload))
    for payload in payloads[cut:]:
        b.merge_payload(list(payload))
    a.merge(b)
    assert a.as_dict() == left.as_dict()

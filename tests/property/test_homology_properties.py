"""Property-based tests for simplicial homology over GF(2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.homology.homology import (
    betti_numbers,
    relative_betti_1,
)
from repro.homology.simplicial import FenceSubcomplex, RipsComplex
from repro.network.graph import NetworkGraph


@st.composite
def random_graphs(draw, max_nodes=10):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((i, j))
    return NetworkGraph(range(n), edges)


class TestEulerIdentity:
    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_betti_alternating_sum_is_euler_characteristic(self, graph):
        """b0 - b1 + b2 == V - E + T for every Rips 2-complex."""
        complex_ = RipsComplex.from_graph(graph)
        betti = betti_numbers(complex_)
        assert betti.euler_characteristic() == complex_.euler_characteristic()

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_betti_numbers_nonnegative(self, graph):
        betti = betti_numbers(RipsComplex.from_graph(graph))
        assert betti.b0 >= 1
        assert betti.b1 >= 0
        assert betti.b2 >= 0


class TestRelativeHomologyProperties:
    @given(random_graphs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_relative_b1_nonnegative(self, graph, data):
        complex_ = RipsComplex.from_graph(graph)
        # pick any triangle of the graph as a degenerate fence cycle
        import networkx as nx

        cycles = [c for c in nx.simple_cycles(graph.to_networkx()) if len(c) >= 3]
        if not cycles:
            return
        fence_cycle = data.draw(st.sampled_from(cycles))
        fence = FenceSubcomplex.from_cycle(fence_cycle)
        assert relative_betti_1(complex_, fence) >= 0

    @given(random_graphs(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_filling_a_fence_cycle_never_raises_relative_b1(self, graph, data):
        """Relative b1 with fence F is at most the absolute b1 plus |F| - 1.

        A loose sandwich bound that catches sign errors: modding out a
        connected fence can create at most |fence edges| new relative
        cycles while killing classes supported on the fence.
        """
        import networkx as nx

        complex_ = RipsComplex.from_graph(graph)
        cycles = [c for c in nx.simple_cycles(graph.to_networkx()) if len(c) >= 3]
        if not cycles:
            return
        fence_cycle = data.draw(st.sampled_from(cycles))
        fence = FenceSubcomplex.from_cycle(fence_cycle)
        absolute = betti_numbers(complex_).b1
        relative = relative_betti_1(complex_, fence)
        assert relative <= absolute + len(fence.edges)

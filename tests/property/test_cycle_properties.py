"""Property-based tests for the cycle space and Horton machinery."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cycles.cycle_space import (
    EdgeIndex,
    cycle_space_dimension,
    fundamental_cycle_basis,
    is_cycle_mask,
    decompose_mask_into_cycles,
)
from repro.cycles.gf2 import GF2Basis
from repro.cycles.horton import (
    ShortCycleSpan,
    horton_candidate_cycles,
    max_irreducible_cycle_bounded,
    minimum_cycle_basis,
)
from repro.network.graph import NetworkGraph


@st.composite
def random_graphs(draw, max_nodes=10):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((i, j))
    return NetworkGraph(range(n), edges)


class TestCycleSpaceProperties:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_fundamental_basis_has_full_rank(self, graph):
        __, masks = fundamental_cycle_basis(graph)
        assert GF2Basis(masks).rank == len(masks) == cycle_space_dimension(graph)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_fundamental_masks_are_simple_cycles(self, graph):
        index, masks = fundamental_cycle_basis(graph)
        for mask in masks:
            assert is_cycle_mask(mask, index)

    @given(random_graphs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_xor_of_cycles_decomposes_into_cycles(self, graph, data):
        index, masks = fundamental_cycle_basis(graph)
        if not masks:
            return
        picks = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(masks) - 1),
                max_size=len(masks),
                unique=True,
            )
        )
        total = 0
        for i in picks:
            total ^= masks[i]
        if total == 0:
            return
        cycles = decompose_mask_into_cycles(total, index)
        rebuilt = 0
        for cycle in cycles:
            assert is_cycle_mask(cycle.mask, index)
            rebuilt ^= cycle.mask
        assert rebuilt == total


class TestHortonProperties:
    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_mcb_size_and_independence(self, graph):
        nu = cycle_space_dimension(graph)
        basis = minimum_cycle_basis(graph)
        assert len(basis) == nu
        assert GF2Basis(c.mask for c in basis).rank == nu

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_mcb_total_length_minimal_vs_brute(self, graph):
        nu = cycle_space_dimension(graph)
        if nu == 0 or len(graph) > 9:
            return
        index = EdgeIndex.from_graph(graph)
        all_cycles = sorted(
            (len(c), index.mask_of_vertex_cycle(c))
            for c in nx.simple_cycles(graph.to_networkx())
            if len(c) >= 3
        )
        brute = GF2Basis()
        total = 0
        for length, mask in all_cycles:
            if brute.add(mask):
                total += length
                if brute.rank == nu:
                    break
        ours = sum(c.length for c in minimum_cycle_basis(graph))
        assert ours == total

    @given(random_graphs(), st.integers(min_value=3, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_span_test_matches_mcb(self, graph, tau):
        basis = minimum_cycle_basis(graph)
        if not basis:
            assert max_irreducible_cycle_bounded(graph, tau)
            return
        maximum = max(c.length for c in basis)
        assert max_irreducible_cycle_bounded(graph, tau) == (maximum <= tau)

    @given(random_graphs(), st.integers(min_value=3, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_span_contains_every_capped_candidate(self, graph, tau):
        span = ShortCycleSpan(graph, tau)
        for cycle in horton_candidate_cycles(graph, max_length=tau):
            assert span.contains_vertex_cycle(cycle)

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_bounded_is_monotone_in_tau(self, graph):
        results = [
            max_irreducible_cycle_bounded(graph, tau) for tau in range(3, 11)
        ]
        assert results == sorted(results)

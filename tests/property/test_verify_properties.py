"""Property-based tests for the bounded model checker.

The model checker carries its own BFS and flood semantics, deliberately
independent of :mod:`repro.network`.  These properties pit the two
implementations against each other on random connected graphs: the
flood executor's coverage must equal the ball oracle computed with
``NetworkGraph.bfs_distances``, and the gossip executor's views must
match ``k_hop_neighborhood``.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks.model import _adjacency, _run_flood, _run_gossip
from repro.checks.protocol import FloodSpec
from repro.network.graph import NetworkGraph

SPEC = FloodSpec(
    kind="DELETE",
    initial_ttl="self.k - 1",
    radius_symbol="k",
    decrements=True,
    guarded=True,
    dedup_by_origin=True,
)


def random_connected_graph(n: int, seed: int):
    """A random connected labeled graph: spanning tree + random extras."""
    rng = random.Random(seed)
    edges = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        edges.add(tuple(sorted((order[i], rng.choice(order[:i])))))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.3:
                edges.add((u, v))
    return tuple(sorted(edges))


class TestFloodCoverageOracle:
    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(0, 999),
        radius=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage_equals_bfs_ball(self, n, seed, radius):
        edges = random_connected_graph(n, seed)
        adj = _adjacency(n, edges)
        graph = NetworkGraph(range(n), edges)
        for origin in range(n):
            result = _run_flood(adj, origin, radius, SPEC, max_rounds=radius + 2)
            assert result.terminated
            dist = graph.bfs_distances(origin)
            ball = {v for v, d in dist.items() if d <= radius}
            # radius >= 2: a neighbour echoes the flood back to the origin.
            assert result.coverages == {frozenset(ball)}

    @given(n=st.integers(min_value=2, max_value=6), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_flood_is_order_insensitive(self, n, seed):
        """The intact spec admits exactly one outcome per origin."""
        edges = random_connected_graph(n, seed)
        adj = _adjacency(n, edges)
        for origin in range(n):
            result = _run_flood(adj, origin, 2, SPEC, max_rounds=4)
            assert result.max_branch_width == 1
            assert len(result.coverages) == 1


class TestGossipViewOracle:
    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(0, 999),
        k=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_views_equal_k_hop_neighborhood(self, n, seed, k):
        edges = random_connected_graph(n, seed)
        adj = _adjacency(n, edges)
        graph = NetworkGraph(range(n), edges)
        views, converged, __ = _run_gossip(adj, rounds=k)
        assert converged
        for v in range(n):
            expected = graph.k_hop_neighborhood(v, k) | {v}
            assert set(views[v]) == expected
            for u, row in views[v].items():
                assert row == graph.neighbors(u)

"""Property-based tests: sharded scheduling == unsharded scheduling.

The sharding tentpole's whole contract is a single sentence — at a fixed
seed the sharded scheduler is *vertex-identical* to the unsharded one,
for any graph, any tau, any shard count — so that sentence is what gets
hypothesis-tested, alongside the structural invariant it rests on: the
halo band always contains the full ⌈τ/2⌉-hop ball of every owned
vertex.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import dcc_schedule
from repro.network.graph import NetworkGraph
from repro.shard import build_shard_plan, sharded_dcc_schedule


def _random_graph(seed: int, nodes: int, density: float) -> NetworkGraph:
    rng = random.Random(seed)
    graph = NetworkGraph(range(nodes))
    for u in range(nodes):
        for v in range(u + 1, nodes):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


@st.composite
def random_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=8, max_value=24))
    density = draw(st.sampled_from((0.15, 0.25, 0.4)))
    return _random_graph(seed, nodes, density)


class TestShardedMatchesUnsharded:
    @given(
        random_graphs(),
        st.integers(min_value=3, max_value=5),
        st.sampled_from((1, 2, 4)),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_schedule_identical_at_any_shard_count(
        self, graph, tau, shards, seed
    ):
        protected = set(sorted(graph.vertices())[:3])
        serial = dcc_schedule(
            graph, protected, tau, rng=random.Random(seed), workers=1
        )
        sharded = sharded_dcc_schedule(
            graph, protected, tau, random.Random(seed), shards=shards
        )
        assert sharded.removed == serial.removed
        assert sharded.deletions_per_round == serial.deletions_per_round
        assert sorted(sharded.active.vertices()) == sorted(
            serial.active.vertices()
        )

    @given(
        random_graphs(),
        st.integers(min_value=3, max_value=5),
        st.sampled_from((2, 3)),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_plan_is_deterministic_and_halo_sufficient(
        self, graph, tau, shards, plan_seed
    ):
        plan = build_shard_plan(graph, tau, shards, seed=plan_seed)
        again = build_shard_plan(graph, tau, shards, seed=plan_seed)
        assert plan.signature() == again.signature()
        owned_all = sorted(
            v for spec in plan.specs for v in spec.owned
        )
        assert owned_all == sorted(graph.vertices())
        k = plan.halo_radius
        for spec in plan.specs:
            members = set(spec.members)
            for v in spec.owned:
                ball = {v}
                frontier = [v]
                for _ in range(k):
                    nxt = []
                    for u in frontier:
                        for w in graph.neighbors(u):
                            if w not in ball:
                                ball.add(w)
                                nxt.append(w)
                    frontier = nxt
                assert ball <= members

"""Property-based tests for VPT deletion and the DCC scheduler.

The central invariant (Theorem 5): a void-preserving vertex deletion never
changes whether the boundary is tau-partitionable.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criterion import is_tau_partitionable
from repro.core.scheduler import dcc_schedule, mis_by_distance
from repro.core.vpt import deletable_vertices
from repro.network.topologies import triangulated_grid


@st.composite
def thinned_grids(draw):
    """A triangulated grid with a few random interior nodes knocked out."""
    cols = draw(st.integers(min_value=4, max_value=6))
    rows = draw(st.integers(min_value=4, max_value=6))
    mesh = triangulated_grid(cols, rows)
    boundary = mesh.outer_boundary
    interior = sorted(set(mesh.graph.vertices()) - set(boundary))
    kills = draw(
        st.lists(st.sampled_from(interior), max_size=len(interior) // 3, unique=True)
    )
    graph = mesh.graph.copy()
    for v in kills:
        graph.remove_vertex(v)
    giant = max(graph.connected_components(), key=len)
    if set(boundary) - giant:
        graph = mesh.graph.copy()  # fall back to the intact mesh
    else:
        graph = graph.induced_subgraph(giant)
    return graph, boundary


class TestTheorem5:
    @given(thinned_grids(), st.integers(min_value=3, max_value=7), st.data())
    @settings(max_examples=25, deadline=None)
    def test_single_deletion_preserves_partitionability(self, case, tau, data):
        graph, boundary = case
        candidates = deletable_vertices(graph, tau, exclude=set(boundary))
        if not candidates:
            return
        victim = data.draw(st.sampled_from(candidates))
        before = is_tau_partitionable(graph, [boundary], tau)
        thinner = graph.copy()
        thinner.remove_vertex(victim)
        after = is_tau_partitionable(thinner, [boundary], tau)
        assert before == after

    @given(thinned_grids(), st.integers(min_value=3, max_value=7))
    @settings(max_examples=15, deadline=None)
    def test_full_schedule_preserves_partitionability(self, case, tau):
        graph, boundary = case
        before = is_tau_partitionable(graph, [boundary], tau)
        result = dcc_schedule(
            graph, set(boundary), tau, rng=random.Random(0)
        )
        after = is_tau_partitionable(result.active, [boundary], tau)
        assert before == after

    @given(thinned_grids(), st.integers(min_value=3, max_value=7))
    @settings(max_examples=10, deadline=None)
    def test_schedule_reaches_fixpoint(self, case, tau):
        graph, boundary = case
        result = dcc_schedule(graph, set(boundary), tau, rng=random.Random(1))
        assert deletable_vertices(result.active, tau, exclude=set(boundary)) == []


class TestMISProperties:
    @given(
        thinned_grids(),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=20, deadline=None)
    def test_separation_and_maximality(self, case, m, seed):
        graph, __ = case
        candidates = sorted(graph.vertices())[::2]
        selected = mis_by_distance(graph, candidates, m, random.Random(seed))
        # pairwise separation
        for i, u in enumerate(selected):
            dist = graph.bfs_distances(u)
            for v in selected[i + 1:]:
                assert dist.get(v, 10**9) >= m
        # maximality: every candidate is within m-1 hops of a winner
        winners = set(selected)
        for v in candidates:
            ball = set(graph.bfs_distances(v, cutoff=m - 1))
            assert winners & ball

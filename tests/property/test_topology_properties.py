"""Property-based tests for the local topology engine's cache coherence.

The engine's whole value proposition is that its dirty-region invalidation
is *sound*: after any interleaving of vertex/edge deletions, a cached
deletability verdict must agree with a from-scratch Definition 5 test on
the same graph.  These tests drive random mutation sequences on random
geometric graphs and compare the engine against the stateless oracle.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import NetworkGraph
from repro.topology import (
    LocalTopologyEngine,
    SpanMemo,
    graph_signature,
    punctured_deletable,
)


def _geometric_graph(seed: int, nodes: int, radius: float) -> NetworkGraph:
    """Random geometric graph on the unit square (largest component)."""
    rng = random.Random(seed)
    points = {v: (rng.random(), rng.random()) for v in range(nodes)}
    graph = NetworkGraph(points)
    r2 = radius * radius
    items = sorted(points.items())
    for i, (u, (ux, uy)) in enumerate(items):
        for v, (vx, vy) in items[i + 1 :]:
            if (ux - vx) ** 2 + (uy - vy) ** 2 <= r2:
                graph.add_edge(u, v)
    giant = max(graph.connected_components(), key=len)
    return graph.induced_subgraph(giant)


@st.composite
def geometric_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=8, max_value=22))
    return _geometric_graph(seed, nodes, radius=0.45)


class TestEngineAgreesWithOracle:
    @given(geometric_graphs(), st.integers(min_value=3, max_value=6), st.data())
    @settings(max_examples=30, deadline=None)
    def test_verdicts_match_fresh_recomputation_under_deletions(
        self, graph, tau, data
    ):
        engine = LocalTopologyEngine(graph.copy(), tau)
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            vertices = sorted(engine.graph.vertices())
            if len(vertices) <= 2:
                break
            # Query a handful of vertices (populating the caches) ...
            probes = data.draw(
                st.lists(
                    st.sampled_from(vertices), min_size=1, max_size=4, unique=True
                )
            )
            for v in probes:
                assert engine.deletable(v) == punctured_deletable(
                    engine.graph.copy(), v, tau
                )
            # ... then mutate and re-query: stale answers would diverge.
            if data.draw(st.booleans()) and engine.graph.num_edges() > 0:
                u, w = data.draw(st.sampled_from(sorted(engine.graph.edges())))
                engine.delete_edge(u, w)
            else:
                victim = data.draw(st.sampled_from(vertices))
                engine.delete_vertex(victim)
            for v in sorted(engine.graph.vertices())[:4]:
                assert engine.deletable(v) == punctured_deletable(
                    engine.graph.copy(), v, tau
                )

    @given(geometric_graphs(), st.integers(min_value=3, max_value=6), st.data())
    @settings(max_examples=20, deadline=None)
    def test_seed_parity_mode_matches_cached_mode(self, graph, tau, data):
        """All cache knobs off must compute the same verdicts as full caching."""
        cached = LocalTopologyEngine(graph.copy(), tau)
        plain = LocalTopologyEngine(
            graph.copy(),
            tau,
            cache_balls=False,
            cache_verdicts=False,
            memoize_spans=False,
        )
        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            vertices = sorted(cached.graph.vertices())
            if len(vertices) <= 2:
                break
            for v in vertices:
                assert cached.deletable(v) == plain.deletable(v)
            victim = data.draw(st.sampled_from(vertices))
            cached.delete_vertex(victim)
            plain.delete_vertex(victim)

    @given(geometric_graphs(), st.integers(min_value=3, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_span_memo_shared_across_engines_is_sound(self, graph, tau):
        """A memo warmed by one engine must not change another's verdicts."""
        memo = SpanMemo()
        first = LocalTopologyEngine(graph.copy(), tau, span_memo=memo)
        warmed = {v: first.deletable(v) for v in graph.vertices()}
        second = LocalTopologyEngine(graph.copy(), tau, span_memo=memo)
        for v, verdict in warmed.items():
            assert second.deletable(v) == verdict

    @given(geometric_graphs())
    @settings(max_examples=20, deadline=None)
    def test_signature_identifies_labelled_graphs(self, graph):
        same = graph_signature(graph.copy())
        assert graph_signature(graph) == same
        if graph.num_edges():
            smaller = graph.copy()
            u, v = sorted(smaller.edges())[0]
            smaller.remove_edge(u, v)
            assert graph_signature(smaller) != same

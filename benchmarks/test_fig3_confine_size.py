"""Figure 3 bench: coverage-set size ratio vs confine size.

Paper's Figure 3: with 1600 nodes at average degree ~25 (100 runs), the
coverage-set size normalised by the tau=3 set falls monotonically with
tau, levelling off around 0.4-0.6 by tau = 9.  We reproduce the series at
laptop scale and check the shape: ratio 1.0 at tau=3, decreasing in tau,
with a substantial drop by the largest tau.
"""

from repro.analysis.experiments import run_fig3_confine_size


def test_fig3_confine_size(benchmark, paper_scale, bench_workers):
    if paper_scale:
        kwargs = dict(paper_scale=True, workers=bench_workers)
    else:
        kwargs = dict(
            count=300,
            degree=22.0,
            taus=(3, 4, 5, 6, 7),
            runs=1,
            seed=0,
            workers=bench_workers,
        )
    result = benchmark.pedantic(
        run_fig3_confine_size, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.format_table())
    ratios = result.mean_ratio_by_tau
    taus = result.taus
    assert ratios[taus[0]] == 1.0
    # near-monotone decrease (tiny jitter tolerated on small instances)
    for a, b in zip(taus, taus[1:]):
        assert ratios[b] <= ratios[a] + 0.05
    # the headline effect: larger confine sizes save a real fraction
    assert ratios[taus[-1]] < 0.95

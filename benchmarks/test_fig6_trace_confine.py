"""Figure 6 bench: inner nodes retained vs confine size on the trace.

Paper's Figure 6: on the GreenOrbs topology the retained inner-node count
drops sharply between tau = 3 and tau = 5 — long trace links let larger
confine sizes shortcut — then flattens.  Shape checks: monotone decrease
and a pronounced 3 -> 5 drop.
"""

from repro.analysis.experiments import run_trace_confine


def test_fig6_trace_confine(benchmark, greenorbs_trace):
    result = benchmark.pedantic(
        run_trace_confine,
        kwargs=dict(taus=(3, 4, 5, 6), trace=greenorbs_trace, seed=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table("6"))
    left = result.inner_left_by_tau
    # monotone non-increasing in tau
    for a, b in zip(result.taus, result.taus[1:]):
        assert left[b] <= left[a]
    # the paper's signature: sharp drop from tau=3 to tau=5
    assert left[5] <= 0.6 * max(left[3], 1)
    # only a handful of inner nodes remain at tau=6 (paper: ~5 of ~270)
    assert left[6] <= 0.15 * result.total_nodes

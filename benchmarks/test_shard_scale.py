"""Deployment-scale benches for the sharded scheduler.

Results land in ``BENCH_shard.json`` at the repo root.

Two claims are on trial:

* **Identity** — the sharded scheduler removes exactly the vertices the
  unsharded engine removes, at deployment scale, whether the shards are
  hosted inline or in worker processes.  This is asserted every run.
* **Traffic locality** — cross-shard traffic is boundary-band rows, not
  state broadcast: total halo rows stay well under one row per vertex
  per round.  Also asserted every run.
* **Zero redundant verdicts** — the wave MIS tests a boundary candidate
  in exactly one shard, so the sharded run's fresh deletability tests
  equal the serial run's (``redundant_tests`` ~ 0).  Asserted every
  run; the eager per-round verdict sweep this replaced recomputed every
  owned candidate per round (~4.8x the serial test count at 10k).

Wall times are *recorded*, not asserted: the per-sub-round barriers and
per-worker IPC are real costs, so sharding wins wall-clock only when
shards run on real parallel hardware.  The entry records ``cpu_count``
— and the ``REPRO_BATCH_VERDICTS`` / ``REPRO_SHM`` knob states — so the
numbers are interpretable; the same convention as the
``sweep_workers4`` bench.

``REPRO_BENCH_SCALE=smoke`` shrinks the deployment for CI;
``REPRO_BENCH_SHARDS`` overrides the shard count.  The ``slow``-marked
bench is the 100k-node fig2-style curve (``criterion=False`` skips the
whole-graph GF(2) span, which is the scaling bottleneck — the schedule
itself is local work).
"""

import json
import math
import os
import random
import time

import pytest

from repro.analysis.experiments import run_fig2_vertex_deletion
from repro.core.scheduler import dcc_schedule
from repro.cycles.batch import batch_verdicts_enabled
from repro.network.topologies import geometric_graph
from repro.parallel.shm import shm_enabled
from repro.shard import sharded_dcc_schedule

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "full") == "smoke"
TAU = 4
NODES = 1_500 if SMOKE else 10_000
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "2" if SMOKE else "4"))
TARGET_DEGREE = 9.0


def _deployment(nodes):
    """A uniform geometric deployment with a protected boundary band."""
    rng = random.Random(21)
    side = math.sqrt(nodes * math.pi / TARGET_DEGREE)
    positions = {
        v: (rng.uniform(0, side), rng.uniform(0, side)) for v in range(nodes)
    }
    graph = geometric_graph(positions, 1.0)
    band = 1.0
    protected = {
        v
        for v, (x, y) in positions.items()
        if x < band or y < band or x > side - band or y > side - band
    }
    return graph, protected


def test_shard_schedule_scale(benchmark, shard_bench_record):
    """10k-node serial vs sharded schedule: identity, traffic, walls."""

    def measure():
        graph, protected = _deployment(NODES)
        start = time.perf_counter()
        serial = dcc_schedule(
            graph, protected, TAU, rng=random.Random(0), workers=1
        )
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        inline = sharded_dcc_schedule(
            graph, protected, TAU, random.Random(0), shards=SHARDS, workers=1
        )
        inline_wall = time.perf_counter() - start
        start = time.perf_counter()
        pooled = sharded_dcc_schedule(
            graph,
            protected,
            TAU,
            random.Random(0),
            shards=SHARDS,
            workers=SHARDS,
        )
        pooled_wall = time.perf_counter() - start
        return serial, serial_wall, inline, inline_wall, pooled, pooled_wall

    serial, serial_wall, inline, inline_wall, pooled, pooled_wall = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    stats = pooled.shard_stats
    entry = {
        "nodes": NODES,
        "tau": TAU,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "scale": "smoke" if SMOKE else "full",
        "rounds": serial.rounds,
        "deletions": len(serial.removed),
        "removed_identical": inline.removed == serial.removed
        and pooled.removed == serial.removed,
        "serial_wall_s": round(serial_wall, 4),
        "sharded_inline_wall_s": round(inline_wall, 4),
        "sharded_pooled_wall_s": round(pooled_wall, 4),
        "halo_rows_total": stats.halo_rows_total,
        "halo_bytes_total": stats.halo_bytes_total,
        "halo_radius": stats.halo_radius,
        "owned_sizes": stats.owned_sizes,
        "halo_sizes": stats.halo_sizes,
        "serial_tests": serial.counters.deletability_tests,
        "sharded_tests": pooled.counters.deletability_tests,
        "redundant_tests": pooled.counters.deletability_tests
        - serial.counters.deletability_tests,
        "batch_verdicts": batch_verdicts_enabled(),
        "shm": shm_enabled(),
    }
    shard_bench_record("shard_schedule", entry)
    print()
    print(f"Sharded schedule at deployment scale: {json.dumps(entry)}")
    assert entry["removed_identical"], "sharded schedule diverged from serial"
    # Locality: halo traffic must stay far below one row per vertex per
    # round (a state broadcast would be nodes * rounds rows).
    assert stats.halo_rows_total < NODES * (serial.rounds + 1) / 4, entry
    # The wave MIS tests each boundary candidate in exactly one shard:
    # redundant tests are ~0 (a small tolerance absorbs verdict-cache
    # asymmetries between the global and partition engines).
    assert abs(entry["redundant_tests"]) <= max(
        4, entry["serial_tests"] // 200
    ), entry


@pytest.mark.slow
def test_fig2_style_curve_at_100k(shard_bench_record):
    """The 100k-node fig2-style run: completes, coverage preserved."""
    count = 100_000
    start = time.perf_counter()
    result = run_fig2_vertex_deletion(
        count=count,
        degree=TARGET_DEGREE,
        taus=(4,),
        seed=0,
        workers=1,
        shards=SHARDS,
        criterion=False,
    )
    wall = time.perf_counter() - start
    tau = 4
    entry = {
        "nodes": count,
        "degree": TARGET_DEGREE,
        "tau": tau,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "criterion": False,
        "wall_s": round(wall, 1),
        "total_nodes": result.total_nodes,
        "protected_nodes": result.protected_nodes,
        "active": result.active_by_tau[tau],
    }
    shard_bench_record("fig2_style_100k", entry)
    print()
    print(f"fig2-style curve at 100k nodes: {json.dumps(entry)}")
    assert result.total_nodes >= count * 0.9  # giant component of 100k
    assert 0 < result.active_by_tau[tau] < result.total_nodes

"""Proposition 1 ablation bench: empirical QoC against the stated bounds.

Two halves:

* blanket — for gamma = 2 sin(pi/tau), a regular tau-gon of Rc-long links
  (the worst-case embedding) leaves no hole inside;
* partial — random embeddings of a tau-cycle never produce a hole whose
  circumscribing-circle diameter exceeds (tau - 2) Rc.
"""

import random


from repro.core.confine import blanket_sensing_ratio_threshold, hole_diameter_bound
from repro.geometry.coverage_eval import evaluate_coverage
from repro.geometry.disks import regular_polygon_with_side
from repro.network.deployment import Rectangle


def _cycle_hole_stats(taus, seeds):
    """Worst observed uncovered-hole diameter inside random tau-cycles."""
    rows = []
    for tau in taus:
        gamma = blanket_sensing_ratio_threshold(tau)
        rs = 1.0 / gamma  # rc = 1
        worst = 0.0
        for seed in seeds:
            rng = random.Random(seed)
            # random perturbation of the regular tau-gon, edges still <= rc
            polygon = regular_polygon_with_side(tau, 1.0)
            points = [
                (x + rng.uniform(-0.08, 0.08), y + rng.uniform(-0.08, 0.08))
                for x, y in polygon
            ]
            span = 1.2 * max(max(abs(x), abs(y)) for x, y in points) + 0.4
            target = Rectangle(-span, -span, span, span)
            report = evaluate_coverage(points, rs * 1.12, target, 90)
            interior_holes = [
                hole
                for hole in report.holes
                if all(
                    abs(cx) < span * 0.7 and abs(cy) < span * 0.7
                    for cx, cy in hole.cell_centers[:1]
                )
            ]
            if interior_holes:
                worst = max(worst, max(h.diameter for h in interior_holes))
        rows.append((tau, gamma, worst))
    return rows


def test_prop1_blanket_threshold(benchmark):
    rows = benchmark.pedantic(
        _cycle_hole_stats,
        kwargs=dict(taus=(3, 4, 5, 6), seeds=range(8)),
        rounds=1,
        iterations=1,
    )
    print()
    print("Proposition 1 (blanket half): worst interior hole at the threshold")
    for tau, gamma, worst in rows:
        print(f"  tau={tau} gamma={gamma:.3f}: worst hole diameter {worst:.3f}")
        # at (slightly inside) the blanket threshold the cycle interior is
        # covered; raster slack keeps this below a small epsilon
        assert worst <= 0.25 * (tau - 2) + 0.2


def test_prop1_partial_bound(benchmark):
    """(tau - 2) Rc bounds the hole diameter for gamma <= 2 embeddings."""
    benchmark.pedantic(_check_partial_bound, rounds=1, iterations=1)


def _check_partial_bound():
    rng = random.Random(5)
    for tau in (4, 5, 6, 8):
        rs = 0.5  # gamma = 2, the paper's limiting case
        for __ in range(6):
            polygon = regular_polygon_with_side(tau, 1.0)
            points = [
                (x + rng.uniform(-0.05, 0.05), y + rng.uniform(-0.05, 0.05))
                for x, y in polygon
            ]
            span = 1.2 * max(max(abs(x), abs(y)) for x, y in points) + 0.4
            target = Rectangle(-span, -span, span, span)
            report = evaluate_coverage(points, rs, target, 80)
            bound = hole_diameter_bound(tau, 1.0)
            for hole in report.holes:
                # consider only holes fully inside the cycle: skip any hole
                # touching the target border (the outside is not covered)
                touches_border = any(
                    cx <= target.x0 + 0.1
                    or cx >= target.x1 - 0.1
                    or cy <= target.y0 + 0.1
                    or cy >= target.y1 - 0.1
                    for cx, cy in hole.cell_centers
                )
                if touches_border:
                    continue
                assert hole.diameter <= bound + 0.25, (tau, hole.diameter, bound)

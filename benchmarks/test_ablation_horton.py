"""Ablation bench: tau-capped streaming span test vs full Horton MCB.

The VPT hot path never needs the full minimum cycle basis — only whether
cycles of length <= tau span the cycle space.  This bench quantifies the
speedup of the capped early-exit test over running Algorithm 1 outright,
and cross-checks that both give identical answers on real neighbourhood
subgraphs.
"""

import random
import time

from repro.core.vpt import deletion_radius
from repro.cycles.horton import (
    ShortCycleSpan,
    irreducible_cycle_bounds,
)
from repro.network.deployment import Rectangle, build_network


def _neighbourhood_samples(tau=4, count=20):
    net = build_network(260, Rectangle(0, 0, 6.5, 6.5), 1.0, 1.0, seed=31)
    k = deletion_radius(tau)
    rng = random.Random(0)
    internal = sorted(net.internal_nodes)
    samples = []
    for v in rng.sample(internal, min(count, len(internal))):
        gamma = net.graph.punctured_neighborhood_graph(v, k)
        if len(gamma) >= 3:
            samples.append(gamma)
    return samples


def test_ablation_horton_capped_vs_full(benchmark):
    tau = 4
    samples = _neighbourhood_samples(tau=tau)

    def capped_all():
        return [ShortCycleSpan(g, tau).spans_cycle_space() for g in samples]

    capped = benchmark.pedantic(capped_all, rounds=1, iterations=1)

    start = time.perf_counter()
    full = [
        irreducible_cycle_bounds(g).maximum <= tau if len(g) else True
        for g in samples
    ]
    full_time = time.perf_counter() - start

    start = time.perf_counter()
    capped_again = capped_all()
    capped_time = time.perf_counter() - start

    print()
    print("Ablation (tau-capped span test vs full Algorithm-1 MCB):")
    print(f"  neighbourhoods: {len(samples)} (tau={tau})")
    print(f"  capped streaming test: {capped_time * 1000:.0f} ms")
    print(f"  full Horton MCB      : {full_time * 1000:.0f} ms")
    if capped_time > 0:
        print(f"  speedup              : {full_time / capped_time:.1f}x")

    assert capped == full == capped_again
    assert capped_time <= full_time

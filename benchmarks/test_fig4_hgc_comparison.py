"""Figure 4 bench: saved nodes lambda = (n1 - n2)/n1, DCC vs HGC.

Paper's Figure 4: lambda grows when the sensing range grows (gamma falls
from 2 to 1) and when the application relaxes the hole-diameter
requirement (Full -> 1.2 Rc), because DCC exploits larger feasible confine
sizes while HGC is pinned to triangles.  Shape checks: lambda is (weakly)
larger for relaxed requirements, and the Full curve rises as gamma falls.
"""

from repro.analysis.experiments import run_fig4_hgc_comparison

GAMMAS = (2.0, 1.6, 1.2, 1.0)
REQUIREMENTS = (0.0, 0.4, 0.8, 1.2)


def test_fig4_hgc_comparison(benchmark, paper_scale, bench_workers):
    count, degree, runs = (1600, 25.0, 10) if paper_scale else (220, 25.0, 1)
    result = benchmark.pedantic(
        run_fig4_hgc_comparison,
        kwargs=dict(
            count=count,
            degree=degree,
            gammas=GAMMAS,
            requirements=REQUIREMENTS,
            runs=runs,
            seed=3,
            workers=bench_workers,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())

    # blanket coverage demanded at gamma = 2: no connectivity-based scheme
    # can promise it, DCC saves nothing over HGC
    assert result.saved[(0.0, 2.0)] == 0.0

    # DCC never does worse than HGC anywhere
    assert all(lam >= 0.0 for lam in result.saved.values())

    # relaxing the requirement at fixed gamma (weakly) grows the saving;
    # a small tolerance absorbs scheduler randomness at laptop scale
    tolerance = 0.05
    for gamma in GAMMAS:
        lams = [result.saved[(dmax, gamma)] for dmax in REQUIREMENTS]
        for a, b in zip(lams, lams[1:]):
            assert b >= a - tolerance, f"lambda not monotone at gamma={gamma}"

    # shrinking gamma at the strictest requirement (weakly) grows the saving
    full_curve = [result.saved[(0.0, gamma)] for gamma in GAMMAS]
    for a, b in zip(full_curve, full_curve[1:]):
        assert b >= a - tolerance

    # somewhere DCC actually wins; measured over the schedulable interior
    # (the protected periphery, identical under both methods, is a large
    # fraction at laptop scale and dilutes the full-network ratio)
    assert max(result.saved_internal.values()) > 0.05

"""Ablation bench: rotating DCC coverage shifts vs always-on operation.

The paper motivates partial coverage with network lifetime; this bench
quantifies the completion implemented in :mod:`repro.core.lifetime`:
rotating energy-aware coverage shifts outlives the always-on baseline, and
the energy-aware deletion order (tired nodes rest first) outlives a
residual-blind rotation.

A symmetric triangulated mesh is used so that every internal node is
somewhere redundant — on topologies with structural bottleneck nodes the
bottlenecks pin the lifetime to the battery capacity no matter the
scheduler, which is a statement about the deployment, not the algorithm.
"""

import random

from repro.core.lifetime import rotation_simulation
from repro.network.energy import EnergyModel
from repro.network.topologies import triangulated_grid


def _run_rotations():
    mesh = triangulated_grid(9, 9)
    boundary = mesh.outer_boundary
    model = EnergyModel(battery_capacity=10.0, active_cost=1.0, sleep_cost=0.1)
    energy_aware = rotation_simulation(
        mesh.graph,
        [boundary],
        boundary,
        tau=6,
        model=model,
        rng=random.Random(1),
        record_every=10**9,
    )
    return model, energy_aware


def test_ablation_lifetime_rotation(benchmark):
    model, energy_aware = benchmark.pedantic(
        _run_rotations, rounds=1, iterations=1
    )
    print()
    print("Ablation (lifetime: rotating DCC shifts vs always-on):")
    print(f"  always-on baseline : {model.always_on_shifts} shifts")
    print(
        f"  energy-aware shifts: {energy_aware.shifts_survived} shifts "
        f"({energy_aware.lifetime_gain:.2f}x), "
        f"ended by {energy_aware.cause_of_death}"
    )
    # rotation must outlive always-on on a redundant mesh
    assert energy_aware.shifts_survived > model.always_on_shifts

"""Figure 5 bench: the RSSI CDF of the (synthetic) GreenOrbs trace.

Paper's Figure 5: the empirical CDF of per-edge average RSSI, with the
threshold chosen near -85 dBm so that ~80% of undirected edges survive.
Shape checks: monotone CDF, threshold close to -85 dBm, kept fraction 80%.
"""

import pytest

from repro.analysis.experiments import run_fig5_rssi_cdf


def test_fig5_rssi_cdf(benchmark, greenorbs_trace):
    result = benchmark.pedantic(
        run_fig5_rssi_cdf,
        kwargs=dict(trace=greenorbs_trace),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())
    # CDF (fraction >= threshold) grows as the threshold loosens
    assert result.fraction_at_least == sorted(result.fraction_at_least)
    # all edges pass at -95 dBm, almost none at -45 dBm
    assert result.fraction_at_least[0] < 0.05
    assert result.fraction_at_least[-1] > 0.95
    # the paper's operating point
    assert result.kept_fraction == pytest.approx(0.8, abs=0.03)
    assert -90.0 < result.chosen_threshold_dbm < -78.0

"""CSR kernel speedup over the PR 1 dict-based engine, plus parallel-layer
equivalence.  Results land in ``BENCH_kernel.json`` at the repo root.

The PR 1 engine answered every primitive through dict-of-sets BFS and
frozenset ball caches; the CSR kernel answers the same primitives on
int-indexed compact adjacency (slot arrays, chord masks, tau-capped
closure streaming).  This bench replays the *exact* PR 1 scheduling loop
(per-candidate separation-ball probe against the winner set, costs
served by a ``use_kernel=False`` engine with its caches on) against the
kernel-backed ``dcc_schedule`` and asserts

* the deletion schedules are identical vertex-for-vertex (hop distance
  is symmetric, so the winner-side blocking rewrite selects the same
  MIS), and
* cold-cache scheduling gets >= 3x faster at full scale.

``REPRO_BENCH_SCALE=smoke`` shrinks the deployment for CI smoke runs
(the speedup floor relaxes; the identity assertions do not).

A second bench fans sweep cells over a 4-worker process pool and asserts
the rows are byte-identical to the serial run — the parallel layer's
determinism contract — recording both wall times.  On a single-core box
the pool cannot win wall-clock (the entry records ``cpu_count`` so the
numbers are interpretable); equality is machine-independent.
"""

import json
import os
import random
import time

from repro.analysis.sweeps import parameter_grid, run_sweep
from repro.core.scheduler import dcc_schedule
from repro.core.vpt import deletion_radius
from repro.network.deployment import Rectangle, build_network
from repro.obs import MetricsRegistry, Tracer, build_run_report, observe
from repro.topology import LocalTopologyEngine

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "full") == "smoke"
TAU = 4
NODES = 120 if SMOKE else 250
SIDE = 5.1 if SMOKE else 7.3
ROUNDS = 3 if SMOKE else 9
MIN_SPEEDUP = {"parallel": 1.3 if SMOKE else 3.0, "sequential": 1.2 if SMOKE else 2.0}


def _deployment():
    net = build_network(NODES, Rectangle(0, 0, SIDE, SIDE), 1.0, 1.0, seed=21)
    return net.graph, set(net.boundary_nodes)


def _pr1_schedule(graph, protected, tau, rng, mode):
    """The PR 1 scheduler loop, verbatim, on the dict-based engine.

    Lazy MIS with a per-candidate separation-ball probe (cached
    frozensets), dict-BFS primitives, signature-memoised verdicts —
    exactly the configuration PR 1 shipped as its fast path.
    """
    engine = LocalTopologyEngine(graph.copy(), tau, use_kernel=False)
    work = engine.graph
    protected_set = set(protected)
    removed = []
    separation = deletion_radius(tau) + 1
    while True:
        order = [v for v in work.vertices() if v not in protected_set]
        rng.shuffle(order)
        if mode == "parallel":
            selected, batch = set(), []
            for v in order:
                ball = engine.ball(v, separation - 1)
                if not selected.isdisjoint(ball):
                    continue
                if engine.deletable(v):
                    selected.add(v)
                    batch.append(v)
        else:
            batch = []
            for v in order:
                if engine.deletable(v):
                    batch.append(v)
                    break
        if not batch:
            break
        for v in batch:
            engine.delete_vertex(v)
            removed.append(v)
    return removed, engine.counters


def _compare(mode):
    """Interleaved best-of-``ROUNDS`` walls; schedules checked every round."""
    graph, protected = _deployment()
    pr1_wall = kernel_wall = float("inf")
    pr1_removed = kernel_run = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        pr1_removed, pr1_counters = _pr1_schedule(
            graph, protected, TAU, random.Random(0), mode
        )
        pr1_wall = min(pr1_wall, time.perf_counter() - start)
        start = time.perf_counter()
        kernel_run = dcc_schedule(
            graph, protected, TAU, rng=random.Random(0), mode=mode
        )
        kernel_wall = min(kernel_wall, time.perf_counter() - start)
        assert kernel_run.removed == pr1_removed, (
            "kernel schedule diverged from the PR 1 engine's"
        )
    # One extra *traced* run, after the timed loops so the walls above
    # stay unpolluted: its per-phase aggregates ride on the bench entry.
    tracer, metrics = Tracer(), MetricsRegistry()
    with observe(tracer, metrics):
        dcc_schedule(graph, protected, TAU, rng=random.Random(0), mode=mode)
    phases = build_run_report(f"kernel_{mode}", tracer, metrics)["phases"]
    return {
        "phases": phases,
        "mode": mode,
        "nodes": NODES,
        "tau": TAU,
        "rounds": ROUNDS,
        "scale": "smoke" if SMOKE else "full",
        "identical_schedule": True,
        "deletions": len(pr1_removed),
        "pr1_wall_s": round(pr1_wall, 4),
        "kernel_wall_s": round(kernel_wall, 4),
        "speedup": round(pr1_wall / kernel_wall, 2),
        "pr1_counters": pr1_counters.as_dict(),
        "kernel_counters": kernel_run.counters.as_dict(),
    }


def test_kernel_speedup_parallel(benchmark, bench_record):
    entry = benchmark.pedantic(lambda: _compare("parallel"), rounds=1, iterations=1)
    bench_record("kernel_schedule_parallel", entry)
    print()
    print(f"CSR kernel vs PR 1 engine (parallel DCC): {json.dumps(entry)}")
    assert entry["identical_schedule"]
    assert entry["speedup"] >= MIN_SPEEDUP["parallel"], entry


def test_kernel_speedup_sequential(benchmark, bench_record):
    entry = benchmark.pedantic(lambda: _compare("sequential"), rounds=1, iterations=1)
    bench_record("kernel_schedule_sequential", entry)
    print()
    print(f"CSR kernel vs PR 1 engine (sequential DCC): {json.dumps(entry)}")
    assert entry["identical_schedule"]
    assert entry["speedup"] >= MIN_SPEEDUP["sequential"], entry


def _sweep_cell_measure(count, degree, seed):
    """Picklable sweep cell: one schedule, one row of measurements."""
    net = build_network(
        count, Rectangle(0, 0, SIDE, SIDE), 1.0, 1.0, seed=seed
    )
    result = dcc_schedule(
        net.graph, set(net.boundary_nodes), TAU, rng=random.Random(seed)
    )
    return {"num_active": result.num_active, "rounds": result.rounds}


def test_sweep_workers_equivalence(benchmark, bench_record):
    """4-worker sweep rows are byte-identical to the serial run."""
    grid = parameter_grid(
        count=(60, 90) if SMOKE else (90, 130), degree=(10.0,)
    )
    seeds = (0, 1) if SMOKE else (0, 1, 2)

    def run(workers):
        start = time.perf_counter()
        result = run_sweep(_sweep_cell_measure, grid, seeds=seeds, workers=workers)
        return result.rows, time.perf_counter() - start

    (serial_rows, serial_wall), (par_rows, par_wall) = benchmark.pedantic(
        lambda: (run(1), run(4)), rounds=1, iterations=1
    )
    entry = {
        "grid_cells": len(grid) * len(seeds),
        "workers": 4,
        "cpu_count": os.cpu_count(),
        "scale": "smoke" if SMOKE else "full",
        "rows_identical": par_rows == serial_rows,
        "serial_wall_s": round(serial_wall, 4),
        "workers4_wall_s": round(par_wall, 4),
    }
    bench_record("sweep_workers4", entry)
    print()
    print(f"Sweep 4-worker equivalence: {json.dumps(entry)}")
    assert entry["rows_identical"], "parallel sweep rows diverged from serial"


def test_schedule_fanout_equivalence(benchmark, bench_record):
    """``dcc_schedule(workers=2)`` deletes the same vertices as serial.

    This deployment sits *below* the process-fanout crossover (the very
    regression this bench's earlier numbers exposed: 0.54s fanned vs
    0.04s serial at 250 nodes), so the plain ``workers=2`` run must
    silently stay serial; a second run forces the pool on via
    ``REPRO_FANOUT_MIN_NODES=0`` to keep the identity contract measured.
    """
    from repro.parallel.runner import fanout_crossover

    graph, protected = _deployment()

    def run(workers):
        start = time.perf_counter()
        result = dcc_schedule(
            graph, protected, TAU, rng=random.Random(0), workers=workers
        )
        return result, time.perf_counter() - start

    def measure():
        gated = run(1), run(2)
        previous = os.environ.get("REPRO_FANOUT_MIN_NODES")
        os.environ["REPRO_FANOUT_MIN_NODES"] = "0"
        try:
            forced = run(2)
        finally:
            if previous is None:
                os.environ.pop("REPRO_FANOUT_MIN_NODES", None)
            else:
                os.environ["REPRO_FANOUT_MIN_NODES"] = previous
        return gated, forced

    ((serial, serial_wall), (gated, gated_wall)), (forced, forced_wall) = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    entry = {
        "nodes": NODES,
        "tau": TAU,
        "workers": 2,
        "cpu_count": os.cpu_count(),
        "scale": "smoke" if SMOKE else "full",
        "crossover_min_nodes": fanout_crossover(),
        "fanout_engaged": gated.counters.deletability_tests
        > serial.counters.deletability_tests,
        "removed_identical": gated.removed == serial.removed
        and forced.removed == serial.removed,
        "serial_wall_s": round(serial_wall, 4),
        "workers2_wall_s": round(gated_wall, 4),
        "workers2_forced_wall_s": round(forced_wall, 4),
        "serial_tests": serial.counters.deletability_tests,
        "fanout_tests": forced.counters.deletability_tests,
    }
    bench_record("schedule_fanout_workers2", entry)
    print()
    print(f"Schedule fan-out equivalence: {json.dumps(entry)}")
    assert entry["removed_identical"], "fanned-out schedule diverged from serial"
    assert not entry["fanout_engaged"], (
        "sub-crossover deployment should not have engaged the pool"
    )
    assert forced.counters.deletability_tests > serial.counters.deletability_tests, (
        "forced run did not actually exercise the eager fan-out path"
    )

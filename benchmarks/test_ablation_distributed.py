"""Ablation bench: distributed protocol vs centralized scheduler.

DESIGN.md calls out MIS-parallel deletion as a design choice; this bench
quantifies the distributed execution (rounds, messages) against the
centralized oracle on the same deployment, and checks both land on valid
fixpoints of comparable size.
"""

import random

from repro.core.scheduler import dcc_schedule
from repro.core.vpt import deletable_vertices
from repro.network.deployment import Rectangle, build_network
from repro.runtime.protocol import distributed_dcc_schedule


def _run_both():
    net = build_network(130, Rectangle(0, 0, 5.2, 5.2), 1.0, 1.0, seed=21)
    protected = set(net.boundary_nodes)
    central = dcc_schedule(net.graph, protected, 3, rng=random.Random(0))
    distributed = distributed_dcc_schedule(
        net.graph, protected, 3, rng=random.Random(0)
    )
    return net, protected, central, distributed


def test_ablation_distributed_vs_central(benchmark):
    net, protected, central, distributed = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    print()
    print("Ablation (distributed execution of DCC, tau=3):")
    print(
        f"  centralized : active={central.num_active} "
        f"tests={central.deletability_tests}"
    )
    print(
        f"  distributed : active={distributed.num_active} "
        f"iterations={distributed.iterations} {distributed.stats.summary()}"
    )
    for graph in (central.active, distributed.active):
        assert deletable_vertices(graph, 3, exclude=protected) == []
    assert abs(central.num_active - distributed.num_active) <= 0.1 * len(
        net.graph
    )
    # the protocol actually exchanged messages in all three phases
    assert set(distributed.stats.messages_by_kind) == {
        "topology",
        "priority",
        "delete",
    }

"""Figure 1 bench: the Möbius-band criterion comparison.

Paper's claim: the network is fully covered; the cycle-partition criterion
certifies it while the homology-group criterion reports a (false) hole.
"""

from repro.analysis.experiments import run_fig1_mobius


def test_fig1_mobius(benchmark):
    result = benchmark(run_fig1_mobius)
    print()
    print(result.format_table())
    # paper-reported outcome: HGC false negative, DCC correct
    assert result.hgc_relative_betti_1 == 1
    assert not result.hgc_verified
    assert result.dcc_partitionable

"""Shared benchmark fixtures.

The benches regenerate every figure of the paper's evaluation at
laptop scale (see DESIGN.md for the scaling rationale).  Expensive
artefacts — the synthetic GreenOrbs trace, the deployed comparison
network — are built once per session and shared.
"""

from __future__ import annotations

import pytest

from repro.traces.greenorbs import GreenOrbsConfig, generate_greenorbs_trace


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benches at the paper's original sizes (very slow)",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def greenorbs_trace():
    """The Figure 5-7 synthetic trace (one generation per session)."""
    return generate_greenorbs_trace(GreenOrbsConfig(), seed=1)

"""Shared benchmark fixtures.

The benches regenerate every figure of the paper's evaluation at
laptop scale (see DESIGN.md for the scaling rationale).  Expensive
artefacts — the synthetic GreenOrbs trace, the deployed comparison
network — are built once per session and shared.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.obs.bench import stamp_entry
from repro.obs.export import merge_json_entry
from repro.traces.greenorbs import GreenOrbsConfig, generate_greenorbs_trace

BENCH_KERNEL_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
BENCH_SHARD_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benches at the paper's original sizes (very slow)",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker count for figure benches' repeated trials.

    ``REPRO_BENCH_WORKERS`` (default ``1`` = serial; ``0`` auto-detects)
    fans the independent runs of fig 2/3/4 over the parallel layer.
    Results are byte-identical at any value, so the recorded figures
    never depend on it — only the wall clock does.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def greenorbs_trace():
    """The Figure 5-7 synthetic trace (one generation per session)."""
    return generate_greenorbs_trace(GreenOrbsConfig(), seed=1)


@pytest.fixture(scope="session")
def bench_record():
    """Merge named entries into ``BENCH_kernel.json`` at the repo root.

    Each bench that measures the CSR kernel or the parallel layer calls
    ``bench_record(name, entry)``; entries from one session (and from
    earlier runs) merge by name, so partial bench selections never wipe
    the file.  The merge itself is
    :func:`repro.obs.export.merge_json_entry` — the same convention the
    observability layer's run-reports use.
    """

    def record(name: str, entry: Dict[str, Any]) -> None:
        # Every recorded entry carries the repro.bench/v2 environment
        # fingerprint so `repro-bench diff` can tell comparable numbers
        # from cross-machine ones.
        merge_json_entry(BENCH_KERNEL_JSON, name, stamp_entry(entry))

    return record


@pytest.fixture(scope="session")
def shard_bench_record():
    """Merge named entries into ``BENCH_shard.json`` at the repo root.

    Same merge convention as ``bench_record``, separate file: the shard
    benches track deployment-scale numbers (wall time, halo traffic)
    whose history is worth keeping apart from the kernel microbenches.
    """

    def record(name: str, entry: Dict[str, Any]) -> None:
        merge_json_entry(BENCH_SHARD_JSON, name, stamp_entry(entry))

    return record

"""Figure 2 bench: maximal vertex deletion for tau = 3..6 on one network.

Paper's Figure 2 (b-e): the same deployment thinned at increasing confine
sizes keeps fewer and fewer nodes, and the criterion is preserved
throughout (Theorem 5).  Shape check: monotone shrinkage with tau.
"""

from repro.analysis.experiments import run_fig2_vertex_deletion


def test_fig2_vertex_deletion(benchmark, paper_scale, bench_workers):
    count, degree = (1600, 25.0) if paper_scale else (320, 22.0)
    result = benchmark.pedantic(
        run_fig2_vertex_deletion,
        kwargs=dict(
            count=count,
            degree=degree,
            taus=(3, 4, 5, 6),
            seed=0,
            workers=bench_workers,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())
    sizes = result.active_by_tau
    # Theorem 5 on every tau
    for tau in sizes:
        assert result.preserved(tau)
    # the paper's qualitative shape: tau=6 never needs more than tau=3
    assert sizes[6] <= sizes[3]
    # some thinning must actually happen
    assert sizes[3] < result.total_nodes

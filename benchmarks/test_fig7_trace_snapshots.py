"""Figure 7 bench: trace-topology snapshots for tau = 3..7.

Paper's Figure 7 (b-f): DCC leaves 17, 8, 6, 5, 4 inner nodes for
tau = 3..7 on the 296-node GreenOrbs topology with 26 boundary nodes.
Absolute counts depend on the (synthesised) trace; the shape — a strictly
decreasing, small tail after tau >= 4 — is what we reproduce, along with
the paper's qualitative claim that DCC tolerates the non-UDG irregularity.
"""

from repro.analysis.experiments import run_trace_confine


def test_fig7_trace_snapshots(benchmark, greenorbs_trace):
    result = benchmark.pedantic(
        run_trace_confine,
        kwargs=dict(taus=(3, 4, 5, 6, 7), trace=greenorbs_trace, seed=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table("7"))
    left = [result.inner_left_by_tau[tau] for tau in result.taus]
    # non-increasing sequence of retained inner nodes
    for a, b in zip(left, left[1:]):
        assert b <= a
    # tau >= 4 keeps only a small skeleton of inner nodes
    inner_total = result.total_nodes - result.boundary_nodes
    assert result.inner_left_by_tau[4] <= 0.25 * inner_total
    assert result.inner_left_by_tau[7] <= result.inner_left_by_tau[4]

"""Disabled-tracer overhead guard for the sharded + batched paths.

The null-tracer contract promises that a disabled run pays one
attribute probe per guarded site and nothing else (the REPRO114 lint
rule keeps hot-path sites behind guards).  This bench turns the promise
into a number: :func:`repro.obs.bench.bench_tracer_overhead` bounds the
total guard cost from above (guard probes x measured per-probe cost,
against the disabled wall) and the bound must stay **under 2%** of the
schedule's wall time.  The enabled-vs-disabled A/B rides along in the
recorded entry as an informational capture-cost figure — capture cost
is real and unbounded by the contract, which is exactly why tracing
defaults to off.

``REPRO_BENCH_SCALE=smoke`` shrinks the deployment for CI, same as the
shard-scale bench.
"""

import json
import os

from repro.obs.bench import bench_tracer_overhead

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "full") == "smoke"


def test_disabled_tracer_overhead_bound(shard_bench_record):
    """NULL_TRACER guard cost stays under 2% of the sharded schedule."""
    entry = bench_tracer_overhead("smoke" if SMOKE else "full")
    shard_bench_record("tracer_overhead", entry)
    print()
    print(f"Disabled-tracer overhead bound: {json.dumps(entry)}")
    assert entry["removed_identical"], "capture changed the schedule"
    # The upper bound, not a flaky A/B: probes x per-probe cost over the
    # disabled wall.  2% is ~14x headroom over the measured ~0.14%.
    assert entry["guard_cost_pct"] < 2.0, entry

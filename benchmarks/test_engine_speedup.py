"""Topology-engine speedup: cached vs seed-style recomputation.

The seed implementation recomputed k-balls and short-cycle spans from
scratch at every call site: the scheduler's ``DeletabilityCache`` kept
verdicts but re-ran a BFS per MIS candidate per round and a BFS per
deletion to invalidate, and the distributed protocol re-tested every
active node every iteration with no caching at all.  This bench replays
the *exact* seed algorithms (same loops, same RNG consumption, costs
metered through a cache-disabled engine) against the engine-backed
schedulers and asserts the redundant span/BFS work drops by >= 2x.

Both replicas draw from the same winner distributions as the engine
paths (the lazy draws are distribution-equivalent to the eager ones), so
the runs must land on fixpoints of the same deletion rule with
comparable coverage sets — the refactor changes the cost model, not the
algorithm.
"""

import random
import time

from repro.core.scheduler import ScheduleResult, dcc_schedule
from repro.core.vpt import deletable_vertices, deletion_radius
from repro.network.deployment import Rectangle, build_network
from repro.obs import MetricsRegistry, Tracer, build_run_report, observe
from repro.runtime.protocol import distributed_dcc_schedule
from repro.topology import LocalTopologyEngine

TAU = 4


def _deployment():
    net = build_network(250, Rectangle(0, 0, 7.3, 7.3), 1.0, 1.0, seed=21)
    return net.graph, set(net.boundary_nodes)


def _seed_schedule(graph, protected, tau, rng, mode):
    """The seed scheduler, verbatim, with its costs metered.

    Verdict cache + BFS-ball invalidation (the old ``DeletabilityCache``),
    eager candidate rebuild every round, fresh BFS per MIS candidate:
    an engine with ball caching and span memoisation switched off meters
    exactly that cost model.
    """
    engine = LocalTopologyEngine(
        graph.copy(),
        tau,
        cache_balls=False,
        cache_verdicts=True,
        memoize_spans=False,
    )
    work = engine.graph
    protected_set = set(protected)
    removed = []
    separation = deletion_radius(tau) + 1
    while True:
        candidates = [
            v
            for v in work.vertices()
            if v not in protected_set and engine.deletable(v)
        ]
        if not candidates:
            break
        if mode == "parallel":
            order = list(candidates)
            rng.shuffle(order)
            selected, batch = set(), []
            for v in order:
                ball = work.bfs_distances(v, cutoff=separation - 1)
                engine.counters.ball_computations += 1
                engine.counters.bfs_expansions += len(ball)
                if selected.isdisjoint(ball):
                    selected.add(v)
                    batch.append(v)
        else:
            batch = [candidates[rng.randrange(len(candidates))]]
        for v in batch:
            engine.delete_vertex(v)
            removed.append(v)
    return ScheduleResult(
        active=work,
        removed=removed,
        tau=tau,
        rounds=0,
        deletability_tests=engine.counters.deletability_tests,
        counters=engine.counters,
    )


def _heavy_ops(counters):
    """Span computations plus BFS ball extractions: the refactor's target."""
    return counters.span_computations + counters.ball_computations


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _compare(mode):
    graph, protected = _deployment()
    seed_run, seed_wall = _timed(
        lambda: _seed_schedule(graph, protected, TAU, random.Random(0), mode)
    )
    engine_run, engine_wall = _timed(
        lambda: dcc_schedule(graph, protected, TAU, rng=random.Random(0), mode=mode)
    )
    return seed_run, seed_wall, engine_run, engine_wall


def _traced_phases(mode):
    """Per-phase aggregates of one observed run (after the timed ones)."""
    graph, protected = _deployment()
    tracer, metrics = Tracer(), MetricsRegistry()
    with observe(tracer, metrics):
        dcc_schedule(graph, protected, TAU, rng=random.Random(0), mode=mode)
    return build_run_report(f"engine_{mode}", tracer, metrics)["phases"]


def _record_entry(bench_record, name, seed_run, seed_wall, engine_run, engine_wall, mode):
    bench_record(
        name,
        {
            "tau": TAU,
            "seed_heavy_ops": _heavy_ops(seed_run.counters),
            "engine_heavy_ops": _heavy_ops(engine_run.counters),
            "seed_wall_s": round(seed_wall, 4),
            "engine_wall_s": round(engine_wall, 4),
            "seed_counters": seed_run.counters.as_dict(),
            "engine_counters": engine_run.counters.as_dict(),
            "phases": _traced_phases(mode),
        },
    )


def test_engine_speedup_parallel(benchmark, bench_record):
    seed_run, seed_wall, engine_run, engine_wall = benchmark.pedantic(
        lambda: _compare("parallel"), rounds=1, iterations=1
    )
    _record_entry(
        bench_record, "engine_vs_seed_parallel",
        seed_run, seed_wall, engine_run, engine_wall, "parallel",
    )
    print()
    print(f"Engine speedup (parallel DCC, tau={TAU}):")
    print(
        f"  seed   : heavy_ops={_heavy_ops(seed_run.counters)} "
        f"spans={seed_run.counters.span_computations} "
        f"bfs={seed_run.counters.ball_computations} wall={seed_wall:.3f}s"
    )
    print(
        f"  engine : heavy_ops={_heavy_ops(engine_run.counters)} "
        f"spans={engine_run.counters.span_computations} "
        f"bfs={engine_run.counters.ball_computations} wall={engine_wall:.3f}s "
        f"({seed_wall / engine_wall:.2f}x)"
    )
    # Same deletion rule, same winner distribution: both land on maximal
    # fixpoints of comparable size, for >= 2x less span/BFS work.
    graph, protected = _deployment()
    for run in (seed_run, engine_run):
        assert deletable_vertices(run.active, TAU, exclude=protected) == []
    assert abs(engine_run.num_active - seed_run.num_active) <= 0.1 * len(graph)
    assert _heavy_ops(seed_run.counters) >= 2 * _heavy_ops(engine_run.counters)


def test_engine_speedup_sequential(benchmark, bench_record):
    seed_run, seed_wall, engine_run, engine_wall = benchmark.pedantic(
        lambda: _compare("sequential"), rounds=1, iterations=1
    )
    _record_entry(
        bench_record, "engine_vs_seed_sequential",
        seed_run, seed_wall, engine_run, engine_wall, "sequential",
    )
    print()
    print(f"Engine speedup (sequential DCC, tau={TAU}):")
    print(
        f"  seed   : heavy_ops={_heavy_ops(seed_run.counters)} "
        f"spans={seed_run.counters.span_computations} "
        f"bfs={seed_run.counters.ball_computations} wall={seed_wall:.3f}s"
    )
    print(
        f"  engine : heavy_ops={_heavy_ops(engine_run.counters)} "
        f"spans={engine_run.counters.span_computations} "
        f"bfs={engine_run.counters.ball_computations} wall={engine_wall:.3f}s "
        f"({seed_wall / engine_wall:.2f}x)"
    )
    # The lazy draw picks from the same uniform distribution, so both
    # runs are maximal deletions; sizes agree even though the draws do not.
    graph, protected = _deployment()
    for run in (seed_run, engine_run):
        assert deletable_vertices(run.active, TAU, exclude=protected) == []
    assert abs(engine_run.num_active - seed_run.num_active) <= 0.1 * len(graph)
    assert _heavy_ops(seed_run.counters) >= 2 * _heavy_ops(engine_run.counters)


def test_engine_speedup_distributed(benchmark, bench_record):
    graph, protected = _deployment()
    result, wall = benchmark.pedantic(
        lambda: _timed(
            lambda: distributed_dcc_schedule(
                graph, protected, TAU, rng=random.Random(0)
            )
        ),
        rounds=1,
        iterations=1,
    )
    counters = result.stats.topology
    bench_record(
        "engine_vs_seed_distributed",
        {
            "tau": TAU,
            "wall_s": round(wall, 4),
            "counters": counters.as_dict(),
        },
    )
    print()
    print(f"Engine speedup (distributed DCC, tau={TAU}):")
    print(
        f"  queries={counters.deletability_queries} "
        f"tests={counters.deletability_tests} "
        f"spans={counters.span_computations} "
        f"memo_hits={counters.span_memo_hits} wall={wall:.3f}s"
    )
    # The seed protocol re-tested every queried node from scratch (one
    # span computation per deletability query, no caching); the engine
    # answers the same query stream with >= 2x fewer span computations.
    assert counters.deletability_queries >= 2 * counters.span_computations

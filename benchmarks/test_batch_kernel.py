"""Batched GF(2) verdict kernel vs the scalar span-verdict path.

Results land in ``BENCH_kernel.json`` at the repo root.

The scalar engine answers every fresh Definition 5 verdict through
``kernel.span_verdict`` — one Python big-int elimination per candidate.
With ``REPRO_BATCH_VERDICTS=1`` the schedulers hand whole MIS waves to
:func:`repro.cycles.batch.span_verdict_batch`, which stacks the wave
into uint64 bitmask matrices and runs one vectorized elimination under
a single ``kernel.batch_verdict`` span; only candidates outside the
packed envelope (and sub-``BATCH_MIN_CANDIDATES`` tail waves) still
take the scalar span.  Two claims are asserted:

* **Identity** — the deletion schedule is byte-identical batching on
  vs off (the knob moves *where* verdicts are computed, never what
  they say).
* **Wall** — the ``kernel.span_verdict`` wall collapses (>= 3x at full
  scale: almost every candidate leaves the scalar path), and the total
  verdict wall is a genuine reduction, not a relabelling.  The scalar
  residue's spans *nest inside* ``kernel.batch_verdict`` (the fallback
  loop runs within the batch span), so the batch span wall already IS
  the on-run total.  Both walls ride the entry, so the span migration
  and the end-to-end win are separately auditable.

``REPRO_BENCH_SCALE=smoke`` shrinks the deployment for CI; the identity
assertion is scale-independent, the wall floors relax.
"""

import json
import math
import os
import random
import time

from repro.core.scheduler import dcc_schedule
from repro.network.topologies import geometric_graph
from repro.obs import MetricsRegistry, Tracer, build_run_report, observe

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "full") == "smoke"
TAU = 4
NODES = 1_500 if SMOKE else 10_000
TARGET_DEGREE = 9.0
#: Floor on the scalar-span collapse (off wall / on residual wall).
MIN_SPAN_REDUCTION = 2.0 if SMOKE else 3.0
#: Floor on the *total* verdict-wall reduction — the honest number:
#: scalar span wall vs batch span wall (which contains the residue).
#: ~1.2x traced / ~1.6x untraced at 10k on a 1-CPU box; smoke waves
#: are too thin to amortize the packed path's fixed numpy cost, so the
#: smoke floor only guards against a regression into a clear loss.
MIN_TOTAL_REDUCTION = 0.85 if SMOKE else 1.1


def _deployment(nodes):
    """The shard bench's deployment: uniform disk graph, protected rim."""
    rng = random.Random(21)
    side = math.sqrt(nodes * math.pi / TARGET_DEGREE)
    positions = {
        v: (rng.uniform(0, side), rng.uniform(0, side)) for v in range(nodes)
    }
    graph = geometric_graph(positions, 1.0)
    band = 1.0
    protected = {
        v
        for v, (x, y) in positions.items()
        if x < band or y < band or x > side - band or y > side - band
    }
    return graph, protected


def _traced_schedule(graph, protected, batch_on):
    """One traced serial schedule with the batch knob pinned."""
    previous = os.environ.get("REPRO_BATCH_VERDICTS")
    os.environ["REPRO_BATCH_VERDICTS"] = "1" if batch_on else "0"
    try:
        tracer, metrics = Tracer(), MetricsRegistry()
        start = time.perf_counter()
        with observe(tracer, metrics):
            result = dcc_schedule(
                graph, protected, TAU, rng=random.Random(0), workers=1
            )
        wall = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_BATCH_VERDICTS", None)
        else:
            os.environ["REPRO_BATCH_VERDICTS"] = previous
    phases = build_run_report(
        "batch_on" if batch_on else "batch_off", tracer, metrics
    )["phases"]
    return result, wall, phases


def _span(phases, name):
    entry = phases.get(name)
    if entry is None:
        return 0, 0.0
    return entry["calls"], entry["wall_s"]


def test_batch_verdict_kernel(benchmark, bench_record):
    """10k-node tau=4 schedule: scalar vs batched verdict walls."""

    def measure():
        graph, protected = _deployment(NODES)
        return (
            _traced_schedule(graph, protected, False),
            _traced_schedule(graph, protected, True),
        )

    (off, off_wall, off_phases), (on, on_wall, on_phases) = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    off_calls, off_span_wall = _span(off_phases, "kernel.span_verdict")
    resid_calls, resid_span_wall = _span(on_phases, "kernel.span_verdict")
    batch_calls, batch_wall = _span(on_phases, "kernel.batch_verdict")
    # The residual scalar spans nest inside the batch spans, so the
    # batch wall alone is the on-run total — adding the residue would
    # double count it.
    total_on = batch_wall
    entry = {
        "nodes": NODES,
        "tau": TAU,
        "cpu_count": os.cpu_count(),
        "scale": "smoke" if SMOKE else "full",
        "deletions": len(off.removed),
        "removed_identical": on.removed == off.removed,
        "schedule_wall_off_s": round(off_wall, 4),
        "schedule_wall_on_s": round(on_wall, 4),
        "span_verdict_calls_off": off_calls,
        "span_verdict_wall_off_s": round(off_span_wall, 4),
        "span_verdict_calls_on": resid_calls,
        "span_verdict_wall_on_s": round(resid_span_wall, 4),
        "batch_verdict_calls_on": batch_calls,
        "batch_verdict_wall_on_s": round(batch_wall, 4),
        "span_verdict_reduction": round(
            off_span_wall / max(resid_span_wall, 1e-9), 2
        ),
        "verdict_wall_reduction": round(off_span_wall / max(total_on, 1e-9), 2),
        "fresh_tests_off": off.counters.deletability_tests,
        "fresh_tests_on": on.counters.deletability_tests,
    }
    bench_record("kernel_batch_verdicts", entry)
    print()
    print(f"Batched verdict kernel at {NODES} nodes: {json.dumps(entry)}")
    assert entry["removed_identical"], "batching changed the schedule"
    assert entry["fresh_tests_on"] == entry["fresh_tests_off"], entry
    assert entry["span_verdict_reduction"] >= MIN_SPAN_REDUCTION, entry
    assert entry["verdict_wall_reduction"] >= MIN_TOTAL_REDUCTION, entry

"""Setuptools shim; all metadata lives in pyproject.toml.

The target environment has no network access and no ``wheel`` package, so
PEP 660 editable installs are unavailable; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on a machine with wheel) installs
the package.
"""
from setuptools import setup

setup()

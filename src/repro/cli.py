"""Command-line front end: run any of the paper's experiments.

Examples::

    repro-coverage fig1
    repro-coverage fig3 --runs 3 --nodes 220
    repro-coverage fig4 --runs 2
    repro-coverage fig2 --trace fig2.jsonl --report fig2.json --profile
    repro-coverage all
    python -m repro.cli fig6

Every invocation runs under an enabled tracer and metrics registry (the
per-figure timing printed after each table is the figure's recorded
span, so it always agrees with ``--report``); ``--trace`` / ``--report``
/ ``--profile`` / ``--timeline`` export the observation in the formats
of :mod:`repro.obs.export` and :mod:`repro.obs.timeline`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.checks.sanitizer import current_sanitizer, enable_sanitizer
from repro.parallel.runner import chaos_summary
from repro.analysis.experiments import (
    run_fig1_mobius,
    run_fig2_vertex_deletion,
    run_fig3_confine_size,
    run_fig4_hgc_comparison,
    run_fig5_rssi_cdf,
    run_fig6_trace,
    run_fig7_trace,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    attribution_from_tracer,
    attribution_summary,
    build_run_report,
    lane_timeline_from_tracer,
    observe,
    profile_summary,
    timeline_from_tracer,
    validate_run_report,
    write_run_report,
    write_trace_jsonl,
)


def _cmd_fig1(args: argparse.Namespace) -> str:
    return run_fig1_mobius().format_table()


def _overrides(args: argparse.Namespace, *names: str) -> dict:
    """Keyword overrides for options the user actually supplied."""
    out = {}
    mapping = {"nodes": "count", "degree": "degree", "runs": "runs", "seed": "seed"}
    for name in names:
        value = getattr(args, name)
        if value is not None:
            out[mapping[name]] = value
    return out


def _workers(args: argparse.Namespace) -> int:
    """``--workers`` contract: omitted = auto-detect (0), ``1`` = serial."""
    return args.workers if args.workers is not None else 0


def _cmd_fig2(args: argparse.Namespace) -> str:
    result = run_fig2_vertex_deletion(
        workers=_workers(args),
        shards=args.shards,
        criterion=not args.no_criterion,
        **_overrides(args, "nodes", "degree", "seed"),
    )
    return result.format_table()


def _cmd_fig3(args: argparse.Namespace) -> str:
    result = run_fig3_confine_size(
        paper_scale=args.paper_scale,
        workers=_workers(args),
        **_overrides(args, "nodes", "degree", "runs", "seed"),
    )
    return result.format_table()


def _cmd_fig4(args: argparse.Namespace) -> str:
    result = run_fig4_hgc_comparison(
        workers=_workers(args), **_overrides(args, "nodes", "degree", "runs", "seed")
    )
    return result.format_table()


def _cmd_fig5(args: argparse.Namespace) -> str:
    return run_fig5_rssi_cdf(seed=args.seed if args.seed is not None else 1).format_table()


def _cmd_fig6(args: argparse.Namespace) -> str:
    return run_fig6_trace(
        seed=args.seed if args.seed is not None else 1, workers=_workers(args)
    ).format_table("6")


def _cmd_fig7(args: argparse.Namespace) -> str:
    return run_fig7_trace(
        seed=args.seed if args.seed is not None else 1, workers=_workers(args)
    ).format_table("7")


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description=(
            "Reproduce the evaluation figures of 'Distributed Coverage in "
            "Wireless Ad Hoc and Sensor Networks by Topological Graph "
            "Approaches' (ICDCS 2010)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="node count (driver default if omitted)"
    )
    parser.add_argument(
        "--degree", type=float, default=None, help="target average degree"
    )
    parser.add_argument("--runs", type=int, default=None, help="random repetitions")
    parser.add_argument("--seed", type=int, default=None, help="base RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool size for independent runs/cells "
            "(default: auto-detect; 1 = serial; results are identical "
            "at any worker count)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "partition each schedule into this many halo-exchange region "
            "shards (fig2 only; results are vertex-identical to the "
            "unsharded run — see DESIGN.md section 9)"
        ),
    )
    parser.add_argument(
        "--no-criterion",
        action="store_true",
        help=(
            "skip the full-graph tau-partitionability checks (fig2 only; "
            "they are the scaling bottleneck past ~10k nodes)"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full experiment sizes (slow in pure Python)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "shadow-check kernel verdicts, cached verdicts, k-balls and "
            "parallel metrics merges against dict oracles (slower; "
            "schedules stay byte-identical); equivalent to REPRO_SANITIZE=1"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the span trace as JSON lines (repro.trace/v1)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help=(
            "write a schema-versioned run-report (repro.run_report/v1) "
            "with per-phase wall times and merged metrics"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the span profile tree (inclusive/exclusive wall time)",
    )
    parser.add_argument(
        "--timeline",
        metavar="PATH",
        default=None,
        help=(
            "render the SVG timeline of the traced run (multi-lane "
            "per-shard/worker view when the run recorded distributed "
            "spans, rounds-x-phases grid otherwise)"
        ),
    )
    parser.add_argument(
        "--attribute",
        action="store_true",
        help=(
            "print the distributed wall-clock attribution (per-round "
            "compute / barrier-wait / halo / merge lanes, straggler "
            "spread, critical path) and embed it in --report"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    sanitizer = enable_sanitizer() if args.sanitize else current_sanitizer()
    tracer = Tracer()
    metrics = MetricsRegistry()
    with observe(tracer, metrics):
        for name in names:
            with tracer.trace(f"figure.{name}", experiment=name):
                output = _COMMANDS[name](args)
            print(output)
            # The figure span was recorded on exit, so the printed
            # timing is byte-for-byte the one --report aggregates.
            print(f"  [{name} took {tracer.last_span().wall_s:.1f}s]\n")
    if sanitizer is not None:
        print(sanitizer.summary())
    chaos_line = chaos_summary()
    if chaos_line is not None:
        # To stderr: a REPRO_CHAOS run's stdout must stay byte-identical
        # to the serial baseline (the CI acceptance diff).
        print(chaos_line, file=sys.stderr)
    if args.trace:
        count = write_trace_jsonl(tracer, args.trace)
        print(f"trace: {count} spans -> {args.trace}")
    attribution = None
    if args.attribute:
        attribution = attribution_from_tracer(tracer)
        if attribution is not None:
            metrics.absorb_attribution(attribution)
            print(attribution_summary(attribution))
        else:
            print("attribution: no scheduling rounds recorded")
    if args.report:
        report = build_run_report(
            f"repro-coverage:{args.experiment}",
            tracer,
            metrics,
            meta={
                "experiment": args.experiment,
                "figures": names,
                "nodes": args.nodes,
                "degree": args.degree,
                "runs": args.runs,
                "seed": args.seed,
                "paper_scale": args.paper_scale,
                "workers": args.workers,
            },
            attribution=attribution,
        )
        validate_run_report(report)
        write_run_report(report, args.report)
        print(f"run-report -> {args.report}")
    if args.timeline:
        # The multi-lane view only says something when the trace carries
        # distributed spans (proc-tagged imports / barrier windows).
        spans = tracer.spans()
        distributed = any(
            "proc" in span.attrs or span.name == "shard.barrier"
            for span in spans
        )
        if distributed:
            canvas = lane_timeline_from_tracer(
                tracer, title=f"repro-coverage {args.experiment} (lanes)"
            )
        else:
            canvas = timeline_from_tracer(
                tracer, title=f"repro-coverage {args.experiment}"
            )
        canvas.save(args.timeline)
        print(f"timeline -> {args.timeline}")
    if args.profile:
        print(profile_summary(tracer))
    if sanitizer is not None and sanitizer.violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Betti numbers and relative first homology over GF(2).

For a 2-complex ``R``:

* ``b0 = c`` (connected components);
* ``b1 = dim Z1 - rank(partial_2) = (|E| - |V| + c) - rank(partial_2)``.

For the pair ``(R, F)`` with a fence subcomplex ``F`` (no triangles), the
relative chain groups drop the fence simplices and

* ``b1(R, F) = (|E_rel| - rank(partial_1^rel)) - rank(partial_2^rel)``.

``rank(partial_1^rel)`` has a combinatorial shortcut: grounding the fence
vertices, it equals ``|V_rel|`` minus the number of connected components of
``R`` that contain no fence vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cycles.cycle_space import cycle_space_dimension
from repro.homology.boundary_ops import (
    boundary_2_columns,
    edge_chain_basis,
    gf2_column_rank,
)
from repro.homology.simplicial import FenceSubcomplex, RipsComplex


@dataclass(frozen=True)
class BettiNumbers:
    b0: int
    b1: int
    b2: int = 0

    def euler_characteristic(self) -> int:
        """``b0 - b1 + b2`` — must equal ``V - E + T`` of the complex."""
        return self.b0 - self.b1 + self.b2


def betti_numbers(complex_: RipsComplex) -> BettiNumbers:
    """Absolute Betti numbers ``(b0, b1, b2)`` of the 2-complex over GF(2).

    With no 3-simplices, ``b2`` is simply the kernel dimension of the
    triangle boundary operator.
    """
    graph = complex_.graph
    components = len(graph.connected_components())
    z1 = cycle_space_dimension(graph)
    edge_basis = edge_chain_basis(graph)
    rank_d2 = gf2_column_rank(boundary_2_columns(complex_, edge_basis))
    return BettiNumbers(
        b0=components,
        b1=z1 - rank_d2,
        b2=complex_.num_triangles - rank_d2,
    )


def first_homology_trivial(complex_: RipsComplex) -> bool:
    """Is ``H1(R)`` trivial?  (Every cycle spanned by triangle boundaries.)"""
    return betti_numbers(complex_).b1 == 0


def relative_betti_1(
    complex_: RipsComplex, fence: FenceSubcomplex
) -> int:
    """``dim H1(R, F)`` over GF(2)."""
    graph = complex_.graph
    fence_vertices = set(fence.vertices)
    missing = fence_vertices - graph.vertex_set()
    if missing:
        raise KeyError(
            f"fence vertices not in complex: {sorted(missing)[:5]}"
        )
    edge_basis = edge_chain_basis(graph, exclude=set(fence.edges))
    num_rel_edges = len(edge_basis)
    num_rel_vertices = len(graph) - len(fence_vertices)

    free_components = sum(
        1
        for component in graph.connected_components()
        if not component & fence_vertices
    )
    rank_d1_rel = num_rel_vertices - free_components

    rank_d2_rel = gf2_column_rank(boundary_2_columns(complex_, edge_basis))
    return (num_rel_edges - rank_d1_rel) - rank_d2_rel


def relative_first_homology_trivial(
    complex_: RipsComplex, fence: FenceSubcomplex
) -> bool:
    """Ghrist et al.'s verification condition: ``H1(R, F) = 0``."""
    return relative_betti_1(complex_, fence) == 0

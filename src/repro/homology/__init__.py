"""Simplicial homology substrate and the HGC baseline."""

from repro.homology.boundary_ops import (
    ChainBasis,
    boundary_1_columns,
    boundary_2_columns,
    edge_chain_basis,
    gf2_column_rank,
    vertex_chain_basis,
)
from repro.homology.hgc import (
    HGC_MAX_SENSING_RATIO,
    HGCScheduleResult,
    HGCVerification,
    hgc_schedule,
    hgc_verify,
)
from repro.homology.homology import (
    BettiNumbers,
    betti_numbers,
    first_homology_trivial,
    relative_betti_1,
    relative_first_homology_trivial,
)
from repro.homology.simplicial import (
    FenceSubcomplex,
    RipsComplex,
    Triangle,
    enumerate_triangles,
)

__all__ = [
    "BettiNumbers",
    "ChainBasis",
    "FenceSubcomplex",
    "HGC_MAX_SENSING_RATIO",
    "HGCScheduleResult",
    "HGCVerification",
    "RipsComplex",
    "Triangle",
    "betti_numbers",
    "boundary_1_columns",
    "boundary_2_columns",
    "edge_chain_basis",
    "enumerate_triangles",
    "first_homology_trivial",
    "gf2_column_rank",
    "hgc_schedule",
    "hgc_verify",
    "relative_betti_1",
    "relative_first_homology_trivial",
    "vertex_chain_basis",
]

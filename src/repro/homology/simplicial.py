"""2-dimensional simplicial complexes built from connectivity graphs.

Ghrist et al. model the network as the Vietoris-Rips complex of the
communication graph, truncated at dimension two: vertices are 0-simplices,
communication links are 1-simplices, and every connectivity triangle
(3-clique) is a filled 2-simplex.  Under the sensing condition
``Rs >= Rc / sqrt(3)`` each such triangle is a coverage region without
holes, which is what makes the complex relevant to coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.network.graph import Edge, NetworkGraph, canonical_edge

Triangle = Tuple[int, int, int]


def enumerate_triangles(graph: NetworkGraph) -> List[Triangle]:
    """All 3-cliques ``(u, v, w)`` with ``u < v < w``."""
    out: List[Triangle] = []
    for u, v in graph.edges():  # edges are canonical: u < v
        common = graph.neighbors(u) & graph.neighbors(v)
        for w in sorted(common):
            if w > v:
                out.append((u, v, w))
    return out


@dataclass
class RipsComplex:
    """A graph together with its filled triangles (a 2-complex)."""

    graph: NetworkGraph
    triangles: List[Triangle] = field(default_factory=list)

    @classmethod
    def from_graph(cls, graph: NetworkGraph) -> "RipsComplex":
        return cls(graph=graph, triangles=enumerate_triangles(graph))

    @property
    def num_vertices(self) -> int:
        return len(self.graph)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges()

    @property
    def num_triangles(self) -> int:
        return len(self.triangles)

    def euler_characteristic(self) -> int:
        return self.num_vertices - self.num_edges + self.num_triangles

    def triangle_edges(self, triangle: Triangle) -> List[Edge]:
        u, v, w = triangle
        return [canonical_edge(u, v), canonical_edge(u, w), canonical_edge(v, w)]

    def is_valid(self) -> bool:
        """Closure property: every face of every simplex is present."""
        return all(
            self.graph.has_edge(a, b)
            for triangle in self.triangles
            for a, b in self.triangle_edges(triangle)
        )


@dataclass(frozen=True)
class FenceSubcomplex:
    """The fence: the boundary cycle's vertices and edges as a subcomplex.

    De Silva and Ghrist's relative-homology criterion is taken relative to
    the fence; the fence contains no triangles, so the relative 2-chains
    are all the triangles of the full complex.
    """

    vertices: frozenset
    edges: frozenset

    @classmethod
    def from_cycle(cls, cycle: Sequence[int]) -> "FenceSubcomplex":
        if len(cycle) < 3:
            raise ValueError("a fence cycle needs at least three vertices")
        edges = frozenset(
            canonical_edge(a, b)
            for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]])
        )
        return cls(vertices=frozenset(cycle), edges=edges)

    @classmethod
    def from_cycles(cls, cycles: Sequence[Sequence[int]]) -> "FenceSubcomplex":
        vertices: Set[int] = set()
        edges: Set[Edge] = set()
        for cycle in cycles:
            sub = cls.from_cycle(cycle)
            vertices |= sub.vertices
            edges |= sub.edges
        return cls(vertices=frozenset(vertices), edges=frozenset(edges))

"""GF(2) boundary operators of a 2-complex, as bitmask column lists.

``partial_2`` maps a triangle to the sum of its three edges; ``partial_1``
maps an edge to the sum of its endpoints.  Ranks are computed by the same
pivot-indexed elimination used for cycle spaces.  For relative chains the
fence simplices are simply projected out (their bits dropped).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.cycles.gf2 import GF2Basis
from repro.homology.simplicial import RipsComplex
from repro.network.graph import Edge, NetworkGraph


class ChainBasis:
    """Bit numbering for the simplices of one chain group."""

    __slots__ = ("bit_of",)

    def __init__(self, simplices: Sequence) -> None:
        self.bit_of: Dict = {s: i for i, s in enumerate(simplices)}

    def __len__(self) -> int:
        return len(self.bit_of)

    def __contains__(self, simplex) -> bool:
        return simplex in self.bit_of

    def mask(self, simplices: Sequence) -> int:
        out = 0
        for s in simplices:
            out ^= 1 << self.bit_of[s]
        return out


def edge_chain_basis(
    graph: NetworkGraph, exclude: Optional[Set[Edge]] = None
) -> ChainBasis:
    """Chain basis over the graph's edges, minus an excluded (fence) set."""
    exclude = exclude or set()
    return ChainBasis(
        [e for e in sorted(graph.edges()) if e not in exclude]
    )


def vertex_chain_basis(
    graph: NetworkGraph, exclude: Optional[Set[int]] = None
) -> ChainBasis:
    exclude = exclude or set()
    return ChainBasis([v for v in sorted(graph.vertices()) if v not in exclude])


def boundary_2_columns(
    complex_: RipsComplex, edge_basis: ChainBasis
) -> List[int]:
    """One column per triangle: the mask of its (non-excluded) edges."""
    columns: List[int] = []
    bit_of = edge_basis.bit_of
    for u, v, w in complex_.triangles:
        mask = 0
        for e in ((u, v), (u, w), (v, w)):
            bit = bit_of.get(e)
            if bit is not None:
                mask ^= 1 << bit
        columns.append(mask)
    return columns


def boundary_1_columns(
    graph: NetworkGraph,
    edge_basis: ChainBasis,
    vertex_basis: ChainBasis,
) -> List[int]:
    """One column per (non-excluded) edge: the mask of its endpoints."""
    columns: List[int] = []
    v_bit = vertex_basis.bit_of
    for u, v in edge_basis.bit_of:
        mask = 0
        bit = v_bit.get(u)
        if bit is not None:
            mask ^= 1 << bit
        bit = v_bit.get(v)
        if bit is not None:
            mask ^= 1 << bit
        columns.append(mask)
    return columns


def gf2_column_rank(columns: Sequence[int]) -> int:
    basis = GF2Basis()
    for column in columns:
        basis.add(column)
    return basis.rank

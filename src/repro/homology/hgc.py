"""HGC: the homology-group coverage baseline (Ghrist et al.).

The state-of-the-art connectivity-based comparator of the paper's
evaluation.  Verification lifts the network to its Rips 2-complex and
checks that the first homology group relative to the boundary fence is
trivial; scheduling is the natural completion used for the Figure-4
comparison — centralized greedy vertex removal that keeps the verification
invariant true, so coverage units are always triangles (the granularity
HGC is locked to, per Section III-C).

HGC requires the unit-disk communication model and the sensing condition
``Rs >= Rc / sqrt(3)`` (``gamma <= sqrt(3)``) for its verification to imply
blanket coverage; neither restriction applies to DCC.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.homology.homology import relative_betti_1
from repro.homology.simplicial import FenceSubcomplex, RipsComplex
from repro.network.graph import NetworkGraph

#: HGC's verification implies blanket coverage only up to this ratio.
HGC_MAX_SENSING_RATIO = math.sqrt(3.0)


@dataclass(frozen=True)
class HGCVerification:
    """Outcome of an HGC coverage verification.

    ``verified`` combines the two halves of de Silva and Ghrist's theorem:

    * the first homology group relative to the fence is trivial (what this
      paper's Section II describes), and
    * the boundary certificate: some relative 2-cycle of triangles has the
      fence class as its boundary (``rank(d2) > rank(d2 rel)`` over GF(2)),
      which rules out degenerate cases such as a bare fence ring with no
      triangles at all, where ``H1(F, F) = 0`` holds vacuously.
    """

    relative_betti_1: int
    num_triangles: int
    has_boundary_certificate: bool

    @property
    def verified(self) -> bool:
        return self.relative_betti_1 == 0 and self.has_boundary_certificate


def hgc_verify(
    graph: NetworkGraph, boundary_cycles: Sequence[Sequence[int]]
) -> HGCVerification:
    """Ghrist et al.'s criterion: trivial ``H1`` relative to the fence.

    Note the criterion is *sufficient but not necessary* — the paper's
    Figure 1 Möbius-band network is fully covered yet fails this test,
    while the cycle-partition criterion accepts it.
    """
    from repro.homology.boundary_ops import (
        boundary_2_columns,
        edge_chain_basis,
        gf2_column_rank,
    )

    complex_ = RipsComplex.from_graph(graph)
    fence = FenceSubcomplex.from_cycles(boundary_cycles)
    b1 = relative_betti_1(complex_, fence)
    full_rank = gf2_column_rank(
        boundary_2_columns(complex_, edge_chain_basis(graph))
    )
    rel_rank = gf2_column_rank(
        boundary_2_columns(complex_, edge_chain_basis(graph, set(fence.edges)))
    )
    return HGCVerification(
        relative_betti_1=b1,
        num_triangles=complex_.num_triangles,
        has_boundary_certificate=full_rank > rel_rank,
    )


@dataclass
class HGCScheduleResult:
    """Outcome of the HGC greedy scheduler."""

    active: NetworkGraph
    removed: List[int]
    passes: int
    verifications: int
    initial_betti_1: int
    final_betti_1: int

    @property
    def coverage_set(self) -> Set[int]:
        return self.active.vertex_set()

    @property
    def num_active(self) -> int:
        return len(self.active)


def hgc_schedule(
    graph: NetworkGraph,
    boundary_cycles: Sequence[Sequence[int]],
    protected: Iterable[int],
    rng: Optional[random.Random] = None,
    max_passes: int = 8,
    require_verified: bool = False,
    seed: int = 0,
) -> HGCScheduleResult:
    """Greedy centralized node removal preserving the homology invariant.

    Repeatedly sweeps the internal nodes in random order, removing a node
    whenever the relative first Betti number does not change (so a network
    that verifies stays verified, and a network with pre-existing raster
    holes never grows new ones); stops at a fixed point.  With
    ``require_verified=True`` the input must pass :func:`hgc_verify`
    outright, as in the idealised setting of Ghrist et al.  Reproducible
    by default: without an explicit ``rng``, uses ``random.Random(seed)``.
    """
    rng = rng if rng is not None else random.Random(seed)
    work = graph.copy()
    protected_set = set(protected)
    initial = hgc_verify(work, boundary_cycles)
    if require_verified and not initial.verified:
        raise ValueError(
            "HGC cannot schedule a network that fails its own verification "
            f"(relative b1 = {initial.relative_betti_1})"
        )
    target = (initial.relative_betti_1, initial.has_boundary_certificate)
    removed: List[int] = []
    verifications = 1
    passes = 0
    while passes < max_passes:
        passes += 1
        order = [v for v in work.vertices() if v not in protected_set]
        rng.shuffle(order)
        removed_this_pass = 0
        for v in order:
            candidate = work.copy()
            candidate.remove_vertex(v)
            verifications += 1
            check = hgc_verify(candidate, boundary_cycles)
            if (check.relative_betti_1, check.has_boundary_certificate) == target:
                work = candidate
                removed.append(v)
                removed_this_pass += 1
        if removed_this_pass == 0:
            break
    return HGCScheduleResult(
        active=work,
        removed=removed,
        passes=passes,
        verifications=verifications,
        initial_betti_1=target[0],
        final_betti_1=hgc_verify(work, boundary_cycles).relative_betti_1,
    )

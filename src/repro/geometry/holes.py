"""Minimum enclosing circles, for measuring coverage-hole diameters.

The paper measures the quality of partial coverage by the *diameter of the
minimum circle circumscribing each coverage hole*.  Welzl's randomized
incremental algorithm computes the minimum enclosing circle of a point set
in expected linear time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.network.node import Position


@dataclass(frozen=True)
class Circle:
    """A circle given by centre and radius."""

    center: Position
    radius: float

    @property
    def diameter(self) -> float:
        return 2.0 * self.radius

    def contains(self, p: Position, slack: float = 1e-9) -> bool:
        return math.hypot(p[0] - self.center[0], p[1] - self.center[1]) <= (
            self.radius + slack
        )


def _circle_from_two(a: Position, b: Position) -> Circle:
    center = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
    radius = math.hypot(a[0] - b[0], a[1] - b[1]) / 2.0
    return Circle(center, radius)


def _circle_from_three(a: Position, b: Position, c: Position) -> Optional[Circle]:
    """Circumcircle of a triangle; None when the points are collinear."""
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-14:
        return None
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    center = (ux, uy)
    radius = math.hypot(ax - ux, ay - uy)
    return Circle(center, radius)


def _trivial_circle(support: Sequence[Position]) -> Circle:
    if not support:
        return Circle((0.0, 0.0), 0.0)
    if len(support) == 1:
        return Circle(support[0], 0.0)
    if len(support) == 2:
        return _circle_from_two(support[0], support[1])
    # Three support points: take the smallest of the pairwise circles that
    # covers everything, else the circumcircle.
    for i in range(3):
        for j in range(i + 1, 3):
            circle = _circle_from_two(support[i], support[j])
            if all(circle.contains(p) for p in support):
                return circle
    circumcircle = _circle_from_three(*support)
    if circumcircle is None:
        # Collinear support: the two extreme points define the circle.
        pts = sorted(support)
        return _circle_from_two(pts[0], pts[-1])
    return circumcircle


def minimum_enclosing_circle(
    points: Sequence[Position], seed: int = 0
) -> Circle:
    """Welzl's algorithm (iterative move-to-front variant)."""
    pts = list(points)
    if not pts:
        raise ValueError("cannot enclose an empty point set")
    rng = random.Random(seed)
    rng.shuffle(pts)
    circle = Circle(pts[0], 0.0)
    for i, p in enumerate(pts):
        if circle.contains(p):
            continue
        circle = Circle(p, 0.0)
        for j in range(i):
            q = pts[j]
            if circle.contains(q):
                continue
            circle = _circle_from_two(p, q)
            for k in range(j):
                r = pts[k]
                if circle.contains(r):
                    continue
                circle = _trivial_circle([p, q, r])
    return circle


def point_set_diameter(points: Sequence[Position]) -> float:
    """Diameter of the minimum circle circumscribing ``points``."""
    return minimum_enclosing_circle(points).diameter

"""Sensing-disk primitives.

Small geometric helpers about unions and intersections of sensing disks,
used by tests and by the Proposition 1 validation benches: a connectivity
cycle of ``tau`` hops whose links are all at most ``Rc`` long encloses a
region, and the sensing disks of the cycle nodes leave no hole when
``gamma <= 2 sin(pi / tau)``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.network.node import Position, distance


def disks_cover_point(
    point: Position, centers: Sequence[Position], rs: float
) -> bool:
    """Is ``point`` inside the union of disks of radius ``rs``?"""
    return any(distance(point, c) <= rs + 1e-12 for c in centers)


def disks_cover_segment(
    a: Position,
    b: Position,
    centers: Sequence[Position],
    rs: float,
    samples: int = 64,
) -> bool:
    """Sampled check that a segment lies in the union of sensing disks."""
    for i in range(samples + 1):
        t = i / samples
        point = (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
        if not disks_cover_point(point, centers, rs):
            return False
    return True


def two_disks_cover_segment(a: Position, b: Position, rs: float) -> bool:
    """Do disks of radius ``rs`` at the segment endpoints cover the segment?

    True exactly when ``|ab| <= 2 rs``: the two disks overlap on the
    segment's midpoint.  This is the geometric heart of the blanket
    threshold ``gamma <= 2 sin(pi / tau)`` — the chord of a tau-gon whose
    edges are at most ``Rc`` stays within the sensing disks.
    """
    return distance(a, b) <= 2.0 * rs + 1e-12


def regular_polygon(
    n: int, circumradius: float, center: Position = (0.0, 0.0)
) -> List[Position]:
    """Vertices of a regular n-gon (the worst-case tau-cycle embedding)."""
    if n < 3:
        raise ValueError("polygon needs at least 3 vertices")
    cx, cy = center
    return [
        (
            cx + circumradius * math.cos(2 * math.pi * i / n),
            cy + circumradius * math.sin(2 * math.pi * i / n),
        )
        for i in range(n)
    ]


def regular_polygon_with_side(n: int, side: float) -> List[Position]:
    """Regular n-gon with the given side length, centred at the origin."""
    circumradius = side / (2.0 * math.sin(math.pi / n))
    return regular_polygon(n, circumradius)


def polygon_inradius(n: int, side: float) -> float:
    """Apothem of a regular n-gon with the given side length."""
    return side / (2.0 * math.tan(math.pi / n))


def worst_case_uncovered_radius(tau: int, rc: float, rs: float) -> float:
    """Distance from a worst-case tau-cycle's centre to coverage.

    For a regular tau-gon with side ``Rc`` the centre is at circumradius
    ``Rc / (2 sin(pi/tau))`` from every node; the uncovered slack is that
    minus ``Rs``.  Non-positive means the centre is covered — the boundary
    case of Proposition 1.
    """
    circumradius = rc / (2.0 * math.sin(math.pi / tau))
    return circumradius - rs

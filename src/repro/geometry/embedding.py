"""Valid-embedding checks for communication models (Definition 1 context).

Confine coverage is defined over all *valid embeddings* of the connectivity
graph: node placements in the plane consistent with the communication
model.  The simulator works the other way around — it places nodes first —
so these checks assert that a generated (graph, positions) pair really is a
valid embedding of the model it claims to follow.
"""

from __future__ import annotations

from typing import Dict

from repro.network.graph import NetworkGraph
from repro.network.node import Position, distance


def edges_within_range(
    graph: NetworkGraph, positions: Dict[int, Position], rc: float
) -> bool:
    """Every communication link is at most ``Rc`` long.

    This is the *only* geometric constraint confine coverage places on the
    communication model (no UDG assumption).
    """
    return all(
        distance(positions[u], positions[v]) <= rc + 1e-9
        for u, v in graph.edges()
    )


def is_valid_udg_embedding(
    graph: NetworkGraph, positions: Dict[int, Position], rc: float
) -> bool:
    """UDG validity: links iff distance <= Rc."""
    if not edges_within_range(graph, positions, rc):
        return False
    nodes = sorted(graph.vertices())
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            close = distance(positions[u], positions[v]) <= rc - 1e-9
            if close and not graph.has_edge(u, v):
                return False
    return True


def is_valid_quasi_udg_embedding(
    graph: NetworkGraph,
    positions: Dict[int, Position],
    rc: float,
    alpha: float,
) -> bool:
    """Quasi-UDG validity: links below ``alpha * Rc`` mandatory, above Rc forbidden."""
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    if not edges_within_range(graph, positions, rc):
        return False
    nodes = sorted(graph.vertices())
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            close = distance(positions[u], positions[v]) <= alpha * rc - 1e-9
            if close and not graph.has_edge(u, v):
                return False
    return True


def max_edge_length(
    graph: NetworkGraph, positions: Dict[int, Position]
) -> float:
    """Length of the longest communication link in the embedding."""
    return max(
        (distance(positions[u], positions[v]) for u, v in graph.edges()),
        default=0.0,
    )

"""Geometric ground-truth evaluation of sensing coverage.

The coverage algorithms never see geometry; this module is the simulator's
referee.  It rasterises the target area on a uniform grid, marks the points
within sensing range of an active node, extracts coverage holes as
connected uncovered components, and measures each hole by the diameter of
its minimum circumscribing circle (the paper's QoC metric).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.holes import minimum_enclosing_circle
from repro.network.deployment import Rectangle
from repro.network.node import Position


@dataclass
class CoverageHole:
    """A connected uncovered region of the target area."""

    cell_centers: List[Position]
    cell_size: float

    @property
    def area(self) -> float:
        return len(self.cell_centers) * self.cell_size * self.cell_size

    @property
    def diameter(self) -> float:
        """Diameter of the minimum circle circumscribing the hole.

        Half a cell diagonal is added on each side so raster error can only
        over-estimate, never under-estimate, the true hole diameter.
        """
        circle = minimum_enclosing_circle(self.cell_centers)
        return circle.diameter + self.cell_size * math.sqrt(2.0)


@dataclass
class CoverageReport:
    """Result of evaluating a node set's sensing coverage."""

    covered_fraction: float
    holes: List[CoverageHole] = field(default_factory=list)

    @property
    def is_blanket(self) -> bool:
        return not self.holes

    @property
    def max_hole_diameter(self) -> float:
        return max((hole.diameter for hole in self.holes), default=0.0)

    @property
    def total_hole_area(self) -> float:
        return sum(hole.area for hole in self.holes)


def coverage_grid(
    active_positions: Sequence[Position],
    rs: float,
    target: Rectangle,
    resolution: int = 120,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Boolean coverage raster of the target area.

    Returns ``(covered, xs, ys)`` where ``covered[i, j]`` tells whether the
    cell centre ``(xs[j], ys[i])`` lies within ``rs`` of an active node.
    """
    if resolution < 2:
        raise ValueError("resolution must be at least 2")
    xs = np.linspace(target.x0, target.x1, resolution)
    ys = np.linspace(target.y0, target.y1, resolution)
    grid_x, grid_y = np.meshgrid(xs, ys)
    covered = np.zeros(grid_x.shape, dtype=bool)
    rs_sq = rs * rs
    for px, py in active_positions:
        # Only cells inside the node's bounding box can be covered by it.
        covered |= (grid_x - px) ** 2 + (grid_y - py) ** 2 <= rs_sq
    return covered, xs, ys


def _uncovered_components(covered: np.ndarray) -> List[List[Tuple[int, int]]]:
    """4-connected components of the uncovered cells."""
    rows, cols = covered.shape
    seen = covered.copy()  # treat covered cells as already visited
    components: List[List[Tuple[int, int]]] = []
    for i in range(rows):
        for j in range(cols):
            if seen[i, j]:
                continue
            stack = [(i, j)]
            seen[i, j] = True
            component: List[Tuple[int, int]] = []
            while stack:
                a, b = stack.pop()
                component.append((a, b))
                for da, db in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    na, nb = a + da, b + db
                    if 0 <= na < rows and 0 <= nb < cols and not seen[na, nb]:
                        seen[na, nb] = True
                        stack.append((na, nb))
            components.append(component)
    return components


def evaluate_coverage(
    active_positions: Sequence[Position],
    rs: float,
    target: Rectangle,
    resolution: int = 120,
) -> CoverageReport:
    """Rasterised coverage report for a set of active sensing nodes."""
    covered, xs, ys = coverage_grid(active_positions, rs, target, resolution)
    total = covered.size
    covered_fraction = float(covered.sum()) / total
    cell_size = max(
        (target.x1 - target.x0) / (resolution - 1),
        (target.y1 - target.y0) / (resolution - 1),
    )
    holes = [
        CoverageHole(
            cell_centers=[(float(xs[j]), float(ys[i])) for i, j in component],
            cell_size=cell_size,
        )
        for component in _uncovered_components(covered)
    ]
    return CoverageReport(covered_fraction=covered_fraction, holes=holes)


def coverage_fraction(
    active_positions: Sequence[Position],
    rs: float,
    target: Rectangle,
    resolution: int = 120,
) -> float:
    covered, __, __ = coverage_grid(active_positions, rs, target, resolution)
    return float(covered.sum()) / covered.size

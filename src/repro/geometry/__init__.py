"""Geometric ground truth: coverage rasters, holes, embeddings, disks."""

from repro.geometry.coverage_eval import (
    CoverageHole,
    CoverageReport,
    coverage_fraction,
    coverage_grid,
    evaluate_coverage,
)
from repro.geometry.disks import (
    disks_cover_point,
    disks_cover_segment,
    polygon_inradius,
    regular_polygon,
    regular_polygon_with_side,
    two_disks_cover_segment,
    worst_case_uncovered_radius,
)
from repro.geometry.embedding import (
    edges_within_range,
    is_valid_quasi_udg_embedding,
    is_valid_udg_embedding,
    max_edge_length,
)
from repro.geometry.holes import (
    Circle,
    minimum_enclosing_circle,
    point_set_diameter,
)

__all__ = [
    "Circle",
    "CoverageHole",
    "CoverageReport",
    "coverage_fraction",
    "coverage_grid",
    "disks_cover_point",
    "disks_cover_segment",
    "edges_within_range",
    "evaluate_coverage",
    "is_valid_quasi_udg_embedding",
    "is_valid_udg_embedding",
    "max_edge_length",
    "minimum_enclosing_circle",
    "point_set_diameter",
    "polygon_inradius",
    "regular_polygon",
    "regular_polygon_with_side",
    "two_disks_cover_segment",
    "worst_case_uncovered_radius",
]

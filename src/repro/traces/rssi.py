"""RSSI trace records and their aggregation into a connectivity graph.

Mirrors the paper's GreenOrbs pipeline (Section VI-B): nodes periodically
emit packets carrying the (at most ten) neighbours with the best received
signal strength at that moment; records are accumulated over a time window
into per-directed-edge average RSSI; directed edges are dropped and an
undirected edge is kept when its average RSSI clears a threshold chosen to
retain a target fraction (the paper uses ~80% at about -85 dBm).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.network.graph import NetworkGraph

DirectedEdge = Tuple[int, int]


@dataclass(frozen=True)
class RssiRecord:
    """One neighbour entry of a packet: ``receiver`` heard ``sender``."""

    receiver: int
    sender: int
    rssi_dbm: float


@dataclass
class RssiTrace:
    """An accumulated collection of RSSI records."""

    records: List[RssiRecord] = field(default_factory=list)

    def extend(self, records: Iterable[RssiRecord]) -> None:
        self.records.extend(records)

    def directed_averages(self) -> Dict[DirectedEdge, float]:
        """Average RSSI per directed link (receiver <- sender)."""
        totals: Dict[DirectedEdge, float] = {}
        counts: Dict[DirectedEdge, int] = {}
        for record in self.records:
            key = (record.receiver, record.sender)
            totals[key] = totals.get(key, 0.0) + record.rssi_dbm
            counts[key] = counts.get(key, 0) + 1
        return {key: totals[key] / counts[key] for key in totals}

    def undirected_averages(self) -> Dict[Tuple[int, int], float]:
        """Average RSSI per *undirected* link.

        Only links observed in both directions survive (the paper
        "eliminates directed edges"); the undirected average pools both
        directions' records.
        """
        directed = self.directed_averages()
        out: Dict[Tuple[int, int], float] = {}
        for (receiver, sender), value in directed.items():
            if receiver < sender:
                reverse = directed.get((sender, receiver))
                if reverse is not None:
                    out[(receiver, sender)] = (value + reverse) / 2.0
        return out

    def edge_rssi_values(self) -> List[float]:
        """All undirected average RSSI values (the Figure 5 population)."""
        return sorted(self.undirected_averages().values())


def rssi_cdf(values: Sequence[float], thresholds: Sequence[float]) -> List[float]:
    """Fraction of edges with RSSI >= each threshold (Figure 5's y-axis)."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return [0.0 for __ in thresholds]
    out = []
    for threshold in thresholds:
        # count of values >= threshold via binary search
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if ordered[mid] < threshold:
                lo = mid + 1
            else:
                hi = mid
        out.append((n - lo) / n)
    return out


def threshold_for_fraction(values: Sequence[float], fraction: float) -> float:
    """RSSI threshold keeping the strongest ``fraction`` of edges.

    The paper picks roughly -85 dBm "to utilize 80% of undirected edges".
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(values, reverse=True)
    if not ordered:
        raise ValueError("no RSSI values to threshold")
    index = min(len(ordered) - 1, max(0, int(math.ceil(fraction * len(ordered))) - 1))
    return ordered[index]


def graph_from_trace(
    trace: RssiTrace, threshold_dbm: float
) -> NetworkGraph:
    """The trace topology: undirected links with average RSSI >= threshold."""
    graph = NetworkGraph()
    nodes = set()
    for record in trace.records:
        nodes.add(record.receiver)
        nodes.add(record.sender)
    for node in nodes:
        graph.add_vertex(node)
    for (u, v), rssi in trace.undirected_averages().items():
        if rssi >= threshold_dbm:
            graph.add_edge(u, v)
    return graph

"""Synthetic GreenOrbs-style RSSI traces (see DESIGN.md, substitution 1)."""

from repro.traces.greenorbs import (
    GreenOrbsConfig,
    GreenOrbsTrace,
    generate_greenorbs_trace,
)
from repro.traces.rssi import (
    RssiRecord,
    RssiTrace,
    graph_from_trace,
    rssi_cdf,
    threshold_for_fraction,
)

__all__ = [
    "GreenOrbsConfig",
    "GreenOrbsTrace",
    "RssiRecord",
    "RssiTrace",
    "generate_greenorbs_trace",
    "graph_from_trace",
    "rssi_cdf",
    "threshold_for_fraction",
]

"""A synthetic GreenOrbs-like forest deployment and its RSSI trace.

The paper's Section VI-B evaluates DCC on a topology extracted from two
days of GreenOrbs packets — roughly three hundred sensors scattered in a
forest, a long-narrow overall shape, and radio links that deviate strongly
from the unit disk model.  The raw traces are not public, so this module
synthesises an equivalent workload (see DESIGN.md, substitution 1):

* ~296 nodes in a long-narrow strip, placed as a jittered cluster mixture
  (forest deployments are not uniform);
* log-distance path loss with log-normal shadowing per link (a static
  shadowing offset per node pair plus per-packet fading), which yields
  both long links and missing short links — the non-UDG irregularity the
  experiment exercises;
* every epoch each node emits a packet carrying its <= 10 best-RSSI
  neighbours of that moment;
* records accumulate over the window, directed edges are dropped, and the
  threshold keeps ~80% of undirected edges.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.deployment import Network, Rectangle
from repro.network.graph import NetworkGraph
from repro.network.node import Position, distance
from repro.network.topologies import grid_neighbor_pairs
from repro.traces.rssi import (
    RssiRecord,
    RssiTrace,
    graph_from_trace,
    threshold_for_fraction,
)


@dataclass
class GreenOrbsConfig:
    """Knobs of the synthetic trace generator (defaults mirror the paper)."""

    node_count: int = 296
    strip_width: float = 400.0
    strip_height: float = 90.0
    clusters: int = 12
    cluster_sigma: float = 20.0
    epochs: int = 80
    records_per_packet: int = 10
    tx_power_dbm: float = -48.0
    path_loss_exponent: float = 3.2
    pair_shadowing_sigma_db: float = 2.5
    fading_sigma_db: float = 5.0
    max_range: float = 75.0
    edge_keep_fraction: float = 0.8
    boundary_band: float = 18.0


@dataclass
class GreenOrbsTrace:
    """The generated deployment, raw trace, threshold and final topology."""

    positions: Dict[int, Position]
    trace: RssiTrace
    threshold_dbm: float
    graph: NetworkGraph
    region: Rectangle
    boundary_band: float

    def as_network(self, rc: float, rs: float) -> Network:
        """Wrap the trace topology as a :class:`Network` for scheduling."""
        giant = max(self.graph.connected_components(), key=len)
        graph = self.graph.induced_subgraph(giant)
        network = Network(
            graph=graph,
            positions={v: self.positions[v] for v in giant},
            region=self.region,
            rc=rc,
            rs=rs,
            boundary_band=self.boundary_band,
        )
        network.classify_boundary()
        return network


def _cluster_positions(
    config: GreenOrbsConfig, rng: random.Random
) -> Dict[int, Position]:
    """Forest-like placement: clusters strung along a long-narrow strip."""
    region = Rectangle(0.0, 0.0, config.strip_width, config.strip_height)
    centers = [
        (
            (i + 0.5) * config.strip_width / config.clusters,
            rng.uniform(0.25 * config.strip_height, 0.75 * config.strip_height),
        )
        for i in range(config.clusters)
    ]
    positions: Dict[int, Position] = {}
    for node in range(config.node_count):
        cx, cy = centers[node % config.clusters]
        for __ in range(64):
            x = rng.gauss(cx, config.cluster_sigma)
            y = rng.gauss(cy, config.cluster_sigma * 0.6)
            if region.contains((x, y)):
                positions[node] = (x, y)
                break
        else:
            positions[node] = region.sample(rng)
    return positions


def _mean_rssi(config: GreenOrbsConfig, d: float) -> float:
    d = max(d, 0.1)
    return config.tx_power_dbm - 10.0 * config.path_loss_exponent * math.log10(d)


def generate_greenorbs_trace(
    config: Optional[GreenOrbsConfig] = None, seed: int = 0
) -> GreenOrbsTrace:
    """Synthesize the deployment, run the epochs, threshold the edges."""
    config = config or GreenOrbsConfig()
    rng = random.Random(seed)
    positions = _cluster_positions(config, rng)
    region = Rectangle(0.0, 0.0, config.strip_width, config.strip_height)

    # Static per-pair shadowing: the forest between two nodes does not
    # change across packets, only fast fading does.
    pair_shadow: Dict[Tuple[int, int], float] = {}

    def shadow(u: int, v: int) -> float:
        key = (u, v) if u < v else (v, u)
        value = pair_shadow.get(key)
        if value is None:
            value = rng.gauss(0.0, config.pair_shadowing_sigma_db)
            pair_shadow[key] = value
        return value

    # Grid-bucketed range search; appending both directions of the
    # sorted pair list leaves each adjacency list in ascending order —
    # exactly the order the old all-pairs scan produced, so the rng
    # draws below consume the stream identically.
    nodes = sorted(positions)
    neighbors_in_range: Dict[int, List[int]] = {v: [] for v in nodes}
    for u, v in grid_neighbor_pairs(positions, config.max_range):
        neighbors_in_range[u].append(v)
        neighbors_in_range[v].append(u)

    trace = RssiTrace()
    for __ in range(config.epochs):
        for receiver in nodes:
            heard: List[Tuple[float, int]] = []
            for sender in neighbors_in_range[receiver]:
                d = distance(positions[receiver], positions[sender])
                rssi = (
                    _mean_rssi(config, d)
                    + shadow(receiver, sender)
                    + rng.gauss(0.0, config.fading_sigma_db)
                )
                heard.append((rssi, sender))
            heard.sort(reverse=True)
            trace.extend(
                RssiRecord(receiver=receiver, sender=sender, rssi_dbm=rssi)
                for rssi, sender in heard[: config.records_per_packet]
            )

    values = trace.edge_rssi_values()
    threshold = threshold_for_fraction(values, config.edge_keep_fraction)
    graph = graph_from_trace(trace, threshold)
    return GreenOrbsTrace(
        positions=positions,
        trace=trace,
        threshold_dbm=threshold,
        graph=graph,
        region=region,
        boundary_band=config.boundary_band,
    )

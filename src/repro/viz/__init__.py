"""Dependency-free SVG rendering of networks and schedules."""

from repro.viz.svg import (
    SvgCanvas,
    render_coverage_report,
    render_network,
    render_schedule,
)

__all__ = [
    "SvgCanvas",
    "render_coverage_report",
    "render_network",
    "render_schedule",
]

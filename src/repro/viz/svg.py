"""Minimal SVG writer for network snapshots (Figure 2/7-style pictures).

No plotting dependency is available offline, so this module emits plain
SVG: links as lines, nodes as circles (squares for boundary nodes, as in
the paper's figures), optional boundary-cycle highlighting and coverage
holes.  The output opens in any browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.graph import NetworkGraph
from repro.network.node import Position


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class SvgCanvas:
    """Accumulates SVG elements in world coordinates and scales on render."""

    width: int = 800
    height: int = 600
    margin: int = 24
    elements: List[tuple] = field(default_factory=list)
    _xs: List[float] = field(default_factory=list)
    _ys: List[float] = field(default_factory=list)

    def _track(self, x: float, y: float) -> None:
        self._xs.append(x)
        self._ys.append(y)

    def line(
        self, a: Position, b: Position, color: str = "#999", width: float = 1.0
    ) -> None:
        self._track(*a)
        self._track(*b)
        self.elements.append(
            ("line", a[0], a[1], b[0], b[1], color, width)  # type: ignore[arg-type]
        )

    def circle(
        self,
        center: Position,
        radius_px: float = 4.0,
        fill: str = "#1f77b4",
        stroke: str = "none",
    ) -> None:
        self._track(*center)
        self.elements.append(
            ("circle", center[0], center[1], radius_px, fill, stroke)  # type: ignore[arg-type]
        )

    def square(
        self, center: Position, half_px: float = 4.5, fill: str = "#d62728"
    ) -> None:
        self._track(*center)
        self.elements.append(("square", center[0], center[1], half_px, fill))  # type: ignore[arg-type]

    def rect(
        self,
        corner: Position,
        width: float,
        height: float,
        fill: str = "#1f77b4",
    ) -> None:
        """An axis-aligned world-coordinate rectangle (corner = bottom-left)."""
        self._track(*corner)
        self._track(corner[0] + width, corner[1] + height)
        self.elements.append(
            ("rect", corner[0], corner[1], width, height, fill)  # type: ignore[arg-type]
        )

    def label(self, anchor: Position, text: str, size_px: int = 12) -> None:
        self._track(*anchor)
        self.elements.append(("text", anchor[0], anchor[1], _escape(text), size_px))  # type: ignore[arg-type]

    def render(self) -> str:
        """Serialise to an SVG document string."""
        if not self._xs:
            body = ""
        else:
            min_x, max_x = min(self._xs), max(self._xs)
            min_y, max_y = min(self._ys), max(self._ys)
            span_x = max(max_x - min_x, 1e-9)
            span_y = max(max_y - min_y, 1e-9)
            scale = min(
                (self.width - 2 * self.margin) / span_x,
                (self.height - 2 * self.margin) / span_y,
            )

            def transform(x: float, y: float) -> Tuple[float, float]:
                # SVG's y-axis points down; world coordinates point up.
                px = self.margin + (x - min_x) * scale
                py = self.height - self.margin - (y - min_y) * scale
                return px, py

            parts: List[str] = []
            for element in self.elements:
                kind = element[0]
                if kind == "line":
                    __, x1, y1, x2, y2, color, width = element
                    (px1, py1), (px2, py2) = transform(x1, y1), transform(x2, y2)
                    parts.append(
                        f'<line x1="{px1:.1f}" y1="{py1:.1f}" '
                        f'x2="{px2:.1f}" y2="{py2:.1f}" '
                        f'stroke="{color}" stroke-width="{width}"/>'
                    )
                elif kind == "circle":
                    __, x, y, radius, fill, stroke = element
                    px, py = transform(x, y)
                    stroke_attr = (
                        f' stroke="{stroke}"' if stroke != "none" else ""
                    )
                    parts.append(
                        f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius}" '
                        f'fill="{fill}"{stroke_attr}/>'
                    )
                elif kind == "square":
                    __, x, y, half, fill = element
                    px, py = transform(x, y)
                    parts.append(
                        f'<rect x="{px - half:.1f}" y="{py - half:.1f}" '
                        f'width="{2 * half}" height="{2 * half}" fill="{fill}"/>'
                    )
                elif kind == "rect":
                    __, x, y, w, h, fill = element
                    # Transform both corners; y flips, so the rendered
                    # top-left is the world top-left corner.
                    px, py = transform(x, y + h)
                    px2, py2 = transform(x + w, y)
                    parts.append(
                        f'<rect x="{px:.1f}" y="{py:.1f}" '
                        f'width="{px2 - px:.1f}" height="{py2 - py:.1f}" '
                        f'fill="{fill}"/>'
                    )
                elif kind == "text":
                    __, x, y, text, size = element
                    px, py = transform(x, y)
                    parts.append(
                        f'<text x="{px:.1f}" y="{py:.1f}" '
                        f'font-size="{size}" font-family="sans-serif">'
                        f"{text}</text>"
                    )
            body = "\n  ".join(parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


def render_network(
    graph: NetworkGraph,
    positions: Dict[int, Position],
    boundary: Iterable[int] = (),
    title: str = "",
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """Draw a network: grey links, blue circles, red boundary squares."""
    canvas = canvas or SvgCanvas()
    boundary_set = set(boundary)
    for u, v in graph.edges():
        canvas.line(positions[u], positions[v], color="#cccccc", width=0.6)
    for v in graph.vertices():
        if v in boundary_set:
            canvas.square(positions[v])
        else:
            canvas.circle(positions[v])
    if title:
        xs = [p[0] for p in positions.values()]
        ys = [p[1] for p in positions.values()]
        canvas.label((min(xs), max(ys)), title, size_px=14)
    return canvas


def render_schedule(
    full_graph: NetworkGraph,
    active: NetworkGraph,
    positions: Dict[int, Position],
    boundary: Iterable[int] = (),
    title: str = "",
) -> SvgCanvas:
    """Draw a schedule: sleeping nodes faded, active set highlighted."""
    canvas = SvgCanvas()
    boundary_set = set(boundary)
    active_set = active.vertex_set()
    for u, v in full_graph.edges():
        color = "#cccccc" if u in active_set and v in active_set else "#f0f0f0"
        canvas.line(positions[u], positions[v], color=color, width=0.5)
    for v in full_graph.vertices():
        if v in boundary_set:
            canvas.square(positions[v])
        elif v in active_set:
            canvas.circle(positions[v], fill="#1f77b4")
        else:
            canvas.circle(positions[v], radius_px=2.5, fill="#dddddd")
    if title:
        xs = [p[0] for p in positions.values()]
        ys = [p[1] for p in positions.values()]
        canvas.label((min(xs), max(ys)), title, size_px=14)
    return canvas


def render_coverage_report(
    positions: Sequence[Position],
    rs: float,
    holes: Sequence[Sequence[Position]],
    title: str = "",
) -> SvgCanvas:
    """Draw active sensing nodes and the cells of detected coverage holes."""
    canvas = SvgCanvas()
    for center in positions:
        canvas.circle(center, radius_px=3.0, fill="#2ca02c")
    for hole in holes:
        for cell in hole:
            canvas.square(cell, half_px=2.0, fill="#ff7f0e")
    if title and positions:
        xs = [p[0] for p in positions]
        ys = [p[1] for p in positions]
        canvas.label((min(xs), max(ys)), title, size_px=14)
    return canvas

"""Process-parallel execution layer for independent-by-construction work.

Three fan-out sites in the stack are embarrassingly parallel *by
construction*: deletability verdicts of one MIS round (each verdict is a
pure function of the current graph), sweep cells (each cell builds its
own deployment from its own seed), and repeated figure trials.  This
module runs them on a ``ProcessPoolExecutor`` under one determinism
contract:

* **Work is chunked deterministically.**  Tasks are submitted in a fixed
  order derived from the caller's (already seeded) ordering and results
  are consumed in submission order — never completion order — so output
  is byte-identical to a serial run at the same seeds, regardless of
  worker count or OS scheduling.
* **Workers hold warm, worker-local state.**  A scheduling fan-out ships
  the compact graph once per worker (pickled vertex/edge lists, not the
  object graph) and each worker builds its own
  :class:`~repro.topology.LocalTopologyEngine` — kernel CSR mirror,
  verdict cache and span memo included.  Rounds then send only the
  deletion log suffix each worker is missing; workers replay it through
  the engine's incremental invalidation, so caches stay warm across
  rounds without any shared memory.
* **Counters merge back.**  Workers return
  :class:`~repro.topology.TopologyCounters` deltas with their results;
  the caller merges them into its own counters, so instrumentation is a
  complete account of the run no matter where the work executed.

Verdicts are deterministic functions of ``(graph, tau)``, so the fan-out
changes *where* they are computed but never *what* they are — schedules
and figure rows are reproduced bit-for-bit at fixed seeds.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.topology import TopologyCounters


def resolve_workers(workers: Optional[int]) -> int:
    """Worker-count contract: ``None``/``0`` auto-detect, ``1`` is serial.

    Auto-detection uses ``os.cpu_count()``; explicit positive values are
    taken as given (oversubscription is the caller's choice).
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = auto-detect)")
    return workers


def chunk_evenly(items: Sequence[Any], chunks: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered parts.

    Deterministic: chunk boundaries depend only on ``len(items)`` and
    ``chunks``.  Sizes differ by at most one; empty chunks are dropped.
    """
    count = len(items)
    if count == 0:
        return []
    chunks = max(1, min(chunks, count))
    size, extra = divmod(count, chunks)
    out: List[Sequence[Any]] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def parallel_starmap(
    func: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> List[Any]:
    """``[func(*t) for t in tasks]``, fanned out, in submission order.

    ``func``, ``initializer`` and every task must be picklable
    (top-level functions, plain-data arguments).  With one resolved
    worker (or at most one task) everything runs inline in this process
    — including ``initializer``, so warm-state task functions behave
    identically.  Exceptions propagate from the first failing task in
    *submission* order; later tasks may already have run.
    """
    count = resolve_workers(workers)
    if count <= 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [func(*task) for task in tasks]
    with ProcessPoolExecutor(
        max_workers=count, initializer=initializer, initargs=initargs
    ) as pool:
        futures = [pool.submit(func, *task) for task in tasks]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Scheduling fan-out: warm per-worker engines + deletion-log replay
# ----------------------------------------------------------------------
def compact_graph_blob(graph) -> bytes:
    """A graph serialized as sorted vertex/edge lists (no object graph)."""
    vertices = tuple(sorted(graph.vertices()))
    edges = tuple(sorted(graph.edges()))
    return pickle.dumps((vertices, edges), protocol=pickle.HIGHEST_PROTOCOL)


def graph_from_blob(blob: bytes):
    from repro.network.graph import NetworkGraph

    vertices, edges = pickle.loads(blob)
    graph = NetworkGraph(vertices)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


# Worker-local warm state, installed by the pool initializer.  One
# engine per worker process: its kernel mirror, verdict cache and span
# memo survive across rounds and are kept consistent by replaying the
# deletion log through the engine's own invalidation.
_WORKER_ENGINE = None
_WORKER_APPLIED = 0


def _init_schedule_worker(blob: bytes, tau: int) -> None:
    global _WORKER_ENGINE, _WORKER_APPLIED
    from repro.topology import LocalTopologyEngine

    _WORKER_ENGINE = LocalTopologyEngine(graph_from_blob(blob), tau)
    _WORKER_APPLIED = 0


def _test_candidates(
    log: Tuple[int, ...], chunk: Sequence[int]
) -> Tuple[List[int], List[bool], Dict[str, int]]:
    """Verdicts for ``chunk`` after replaying the missing log suffix."""
    global _WORKER_APPLIED
    engine = _WORKER_ENGINE
    for v in log[_WORKER_APPLIED:]:
        engine.delete_vertex(v)
    _WORKER_APPLIED = len(log)
    before = engine.counters.as_dict()
    verdicts = [engine.deletable(v) for v in chunk]
    after = engine.counters.as_dict()
    delta = {name: after[name] - before[name] for name in after}
    return list(chunk), verdicts, delta


class ScheduleFanout:
    """Per-round deletability fan-out with warm worker engines.

    Built once per schedule from the *initial* graph; each round calls
    :meth:`verdicts` with the candidate order and the caller records the
    round's deletions with :meth:`record_deletions`, which become the
    log prefix every worker replays before its next chunk.  Use as a
    context manager so the pool is torn down on any exit path.
    """

    def __init__(self, graph, tau: int, workers: int) -> None:
        if workers < 2:
            raise ValueError("ScheduleFanout needs at least 2 workers")
        self.workers = workers
        self._log: List[int] = []
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_schedule_worker,
            initargs=(compact_graph_blob(graph), tau),
        )

    def record_deletions(self, batch: Iterable[int]) -> None:
        self._log.extend(batch)

    def verdicts(
        self, candidates: Sequence[int], counters: TopologyCounters
    ) -> Dict[int, bool]:
        """Deletability of every candidate on the current logged graph."""
        log = tuple(self._log)
        futures = [
            self._pool.submit(_test_candidates, log, chunk)
            for chunk in chunk_evenly(list(candidates), self.workers)
        ]
        out: Dict[int, bool] = {}
        for future in futures:
            chunk, verdicts, delta = future.result()
            out.update(zip(chunk, verdicts))
            counters.merge(TopologyCounters(**delta))
        return out

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ScheduleFanout":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Process-parallel execution layer for independent-by-construction work.

Three fan-out sites in the stack are embarrassingly parallel *by
construction*: deletability verdicts of one MIS round (each verdict is a
pure function of the current graph), sweep cells (each cell builds its
own deployment from its own seed), and repeated figure trials.  This
module runs them on a ``ProcessPoolExecutor`` under one determinism
contract:

* **Work is chunked deterministically.**  Tasks are submitted in a fixed
  order derived from the caller's (already seeded) ordering and results
  are consumed in submission order — never completion order — so output
  is byte-identical to a serial run at the same seeds, regardless of
  worker count or OS scheduling.
* **Workers hold warm, worker-local state.**  A scheduling fan-out ships
  the compact graph once per worker (pickled vertex/edge lists, not the
  object graph) and each worker builds its own
  :class:`~repro.topology.LocalTopologyEngine` — kernel CSR mirror,
  verdict cache and span memo included.  Rounds then send only the
  deletion log suffix each worker is missing; workers replay it through
  the engine's incremental invalidation, so caches stay warm across
  rounds without any shared memory.
* **Counters merge back.**  Workers return
  :class:`~repro.topology.TopologyCounters` deltas with their results;
  the caller merges them into its own counters, so instrumentation is a
  complete account of the run no matter where the work executed.
* **Observations merge back the same way.**  When the ambient tracer is
  enabled (or an ambient metrics registry is installed — see
  :func:`repro.obs.tracer.observe`), every task runs under a fresh
  capture-local :class:`~repro.obs.tracer.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry` whose contents ship back
  with the result and merge in *submission order* — in both the
  worker-pool path and the serial inline path, so a serial run and a
  fanned-out run produce identical run-reports once the volatile
  wall-clock fields are stripped (DESIGN.md section 6).

Verdicts are deterministic functions of ``(graph, tau)``, so the fan-out
changes *where* they are computed but never *what* they are — schedules
and figure rows are reproduced bit-for-bit at fixed seeds.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import knobs
from repro.checks.sanitizer import current_sanitizer
from repro.cycles.batch import batch_verdicts_enabled
from repro.parallel.shm import (
    SharedBlocks,
    ShmSource,
    attach_graph,
    publish_graph,
    publish_partition,
    shm_available,
    shm_enabled,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    current_metrics,
    current_tracer,
    observe,
    reset_ambient,
)
from repro.topology import TopologyCounters


#: Below this many graph vertices, a per-round verdict fan-out costs more
#: in process startup, graph shipping and per-round IPC than the verdicts
#: themselves (BENCH_kernel.json: 250-node fig2 at workers=2 ran 13x
#: slower than serial).  Calibrated well above the measured break-even so
#: borderline jobs stay on the always-safe serial path.  The value lives
#: in the knob registry (one documented default for the constant *and*
#: the ``REPRO_FANOUT_MIN_NODES`` override); this name is kept as a
#: read-only alias for callers and benchmarks.
SCHEDULE_FANOUT_MIN_NODES = int(knobs.knob("REPRO_FANOUT_MIN_NODES").default or 0)


def fanout_crossover() -> int:
    """The effective fan-out crossover in graph vertices.

    ``REPRO_FANOUT_MIN_NODES`` overrides the registry default — tests
    set it to ``0`` to force the pool on small graphs, benchmarks record
    the effective value next to their timings.
    """
    return knobs.get_int("REPRO_FANOUT_MIN_NODES")


# ----------------------------------------------------------------------
# Chaos-order sanitizer (REPRO_CHAOS)
# ----------------------------------------------------------------------
class ChaosSchedule:
    """Seeded adversarial perturbation of completion/consumption order.

    The determinism contract says outputs never depend on *when* tasks
    complete, only on the submission-order consumption of their results.
    With ``REPRO_CHAOS`` on, every pool barrier waits on its futures (or
    drains its pipes) in a seeded-permuted order and every worker sleeps
    a tiny seeded delay before replying — the adversarial schedule the
    contract claims to be immune to.  Reports and schedules must stay
    byte-identical to the serial baseline; CI asserts exactly that.

    The permutation stream is its own :class:`random.Random` so chaos
    never consumes the scheduler's RNG.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.permutations = 0
        self._rng = random.Random(seed)

    def permuted(self, items: Iterable[Any]) -> List[Any]:
        """A seeded shuffle of ``items`` (counted as one perturbation)."""
        out = list(items)
        self._rng.shuffle(out)
        self.permutations += 1
        return out

    def delay(self) -> None:
        """Sleep 0-2ms from the seeded stream (worker-side jitter)."""
        time.sleep(self._rng.random() * 0.002)


_CHAOS: Optional[ChaosSchedule] = None


def current_chaos() -> Optional[ChaosSchedule]:
    """The process-local chaos harness, or ``None`` when REPRO_CHAOS is off.

    Gated at call time so tests flip it per case; the harness itself is
    created once per process (the perturbation counter spans the run)
    from the env-exported seed, so pool workers — which inherit the
    environment — build their own worker-local stream.
    """
    global _CHAOS
    if not knobs.get_flag("REPRO_CHAOS"):
        return None
    if _CHAOS is None:
        _CHAOS = ChaosSchedule(knobs.get_int("REPRO_CHAOS_SEED"))
    return _CHAOS


def chaos_summary() -> Optional[str]:
    """One summary line for the CLI, or ``None`` if chaos never ran."""
    if _CHAOS is None:
        return None
    return (
        f"chaos: {_CHAOS.permutations} perturbed orders (seed {_CHAOS.seed})"
    )


def _chaos_wait(futures: Sequence[Future]) -> None:
    """Under chaos, block on ``futures`` in a seeded-permuted order.

    Results are still *consumed* in submission order by the caller;
    this only forces them to materialize in an adversarial order.
    ``Future.exception()`` waits without raising, so the first failure
    still propagates from the submission-order consumption loop.
    """
    chaos = current_chaos()
    if chaos is not None:
        for future in chaos.permuted(futures):
            future.exception()


def fanout_worthwhile(job_size: int, workers: Optional[int]) -> bool:
    """Should a schedule of ``job_size`` vertices fan out at all?

    The crossover guard for :class:`ScheduleFanout`: requesting workers
    on a small job silently runs serial (identical results either way —
    the fan-out only moves where verdicts are computed).
    """
    return resolve_workers(workers) > 1 and job_size >= fanout_crossover()


def resolve_workers(workers: Optional[int]) -> int:
    """Worker-count contract: ``None``/``0`` auto-detect, ``1`` is serial.

    Auto-detection uses ``os.cpu_count()``; explicit positive values are
    taken as given (oversubscription is the caller's choice).
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = auto-detect)")
    return workers


def chunk_evenly(items: Sequence[Any], chunks: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered parts.

    Deterministic: chunk boundaries depend only on ``len(items)`` and
    ``chunks``.  Sizes differ by at most one; empty chunks are dropped.
    """
    count = len(items)
    if count == 0:
        return []
    chunks = max(1, min(chunks, count))
    size, extra = divmod(count, chunks)
    out: List[Sequence[Any]] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _observed_call(
    label: str, func: Callable[..., Any], *args: Any
) -> Tuple[Any, Any, Any]:
    """Run one task under a fresh capture-local observation.

    Installs a per-task :class:`Tracer` / :class:`MetricsRegistry` pair
    as the ambient observers for the duration of the call and returns
    their picklable exports with the result.  Used identically by the
    worker-pool and serial-inline paths of :func:`parallel_starmap`, so
    what gets captured does not depend on where the task ran.  The spans
    ship as an aligned v2 payload labelled ``label`` (the submission
    index, e.g. ``task3``), so merged spans carry a deterministic
    ``proc`` attribute and true timeline positions.
    """
    chaos = current_chaos()
    if chaos is not None:
        # Seeded jitter (pool workers inherit REPRO_CHAOS through the
        # environment): perturbs completion order, never results.
        chaos.delay()
    tracer = Tracer()
    metrics = MetricsRegistry()
    with observe(tracer, metrics):
        result = func(*args)
    return result, tracer.export_payload(process=label), metrics.to_payload()


def parallel_starmap(
    func: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> List[Any]:
    """``[func(*t) for t in tasks]``, fanned out, in submission order.

    ``func``, ``initializer`` and every task must be picklable
    (top-level functions, plain-data arguments).  With one resolved
    worker (or at most one task) everything runs inline in this process
    — including ``initializer``, so warm-state task functions behave
    identically.  Exceptions propagate from the first failing task in
    *submission* order; later tasks may already have run.

    When the *caller's* ambient tracer is enabled (or an ambient metrics
    registry is installed), every task is wrapped in
    :func:`_observed_call`: its spans import under a ``fanout.task``
    span and its metrics merge into the ambient registry, always in
    submission order.  The serial inline path performs the identical
    capture-and-merge, which is what makes run-reports worker-count
    invariant modulo wall-clock fields.
    """
    count = resolve_workers(workers)
    tracer = current_tracer()
    metrics = current_metrics()
    capture = tracer.enabled or metrics is not None
    merged_rows: List[Any] = []

    def consume(index: int, observed: Tuple[Any, Any, Any]) -> Any:
        result, spans, rows = observed
        with tracer.trace("fanout.task", task=index):
            tracer.import_spans(spans)
        if metrics is not None:
            metrics.merge_payload(rows)
            merged_rows.append(rows)
        return result

    def check_merge() -> None:
        # Shadow-oracle: re-associate the submission-order metrics merge
        # and require the re-grouped registries to agree.
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            sanitizer.check_merge(merged_rows)

    if count <= 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        if not capture:
            return [func(*task) for task in tasks]
        results = [
            consume(i, _observed_call(f"task{i}", func, *task))
            for i, task in enumerate(tasks)
        ]
        check_merge()
        return results
    with ProcessPoolExecutor(
        max_workers=count, initializer=initializer, initargs=initargs
    ) as pool:
        if not capture:
            futures = [pool.submit(func, *task) for task in tasks]
            _chaos_wait(futures)
            return [future.result() for future in futures]
        futures = [
            pool.submit(_observed_call, f"task{i}", func, *task)
            for i, task in enumerate(tasks)
        ]
        _chaos_wait(futures)
        results = [
            consume(i, future.result()) for i, future in enumerate(futures)
        ]
        check_merge()
        return results


# ----------------------------------------------------------------------
# Scheduling fan-out: warm per-worker engines + deletion-log replay
# ----------------------------------------------------------------------
def compact_graph_blob(graph) -> bytes:
    """A graph serialized as sorted vertex/edge lists (no object graph)."""
    vertices = tuple(sorted(graph.vertices()))
    edges = tuple(sorted(graph.edges()))
    return pickle.dumps((vertices, edges), protocol=pickle.HIGHEST_PROTOCOL)


def graph_from_blob(blob: bytes):
    from repro.network.graph import NetworkGraph

    vertices, edges = pickle.loads(blob)
    graph = NetworkGraph(vertices)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


# Worker-local warm state, installed by the pool initializer.  One
# engine per worker process: its kernel mirror, verdict cache and span
# memo survive across rounds and are kept consistent by replaying the
# deletion log through the engine's own invalidation.
_WORKER_ENGINE = None
_WORKER_APPLIED = 0


def _init_schedule_worker(source, tau: int) -> None:
    """Build this worker's warm engine from ``source``.

    ``source`` is a compact pickled blob, or a
    :class:`~repro.parallel.shm.ShmSource` naming a shared CSR segment
    — attached read-only, copied into the private engine graph, then
    unmapped (the coordinator owns the segment).
    """
    global _WORKER_ENGINE, _WORKER_APPLIED
    from repro.topology import LocalTopologyEngine

    # Fork-inheritance hygiene (REPRO307): drop any ambient observers
    # inherited from the coordinator — workers observe through explicit
    # capture-local tracers only.
    reset_ambient()
    if isinstance(source, ShmSource):
        graph = attach_graph(source.descriptor)
    else:
        graph = graph_from_blob(source)
    _WORKER_ENGINE = LocalTopologyEngine(graph, tau)
    _WORKER_APPLIED = 0


def _test_candidates(
    log: Tuple[int, ...],
    chunk: Sequence[int],
    capture: bool = False,
    label: Optional[str] = None,
) -> Tuple[List[int], List[bool], Dict[str, int], Optional[Any]]:
    """Verdicts for ``chunk`` after replaying the missing log suffix.

    With ``capture`` a fresh worker-local tracer observes the chunk's
    engine work (verdict and kernel spans) and its export rides back
    with the counter delta; the warm engine is detached from the tracer
    afterwards so later uncaptured rounds pay the null-tracer guard only.
    """
    global _WORKER_APPLIED
    chaos = current_chaos()
    if chaos is not None:
        # Seeded worker-side jitter: perturbs which chunk finishes
        # first, never what any chunk computes.
        chaos.delay()
    engine = _WORKER_ENGINE
    for v in log[_WORKER_APPLIED:]:
        engine.delete_vertex(v)
    _WORKER_APPLIED = len(log)
    before = engine.counters.as_dict()
    trace_payload: Optional[Any] = None
    if batch_verdicts_enabled():
        # Workers inherit REPRO_BATCH_VERDICTS through the environment;
        # the whole chunk becomes one batched kernel call (verdicts are
        # pure, so the answers — and the schedule — are unchanged).
        def chunk_verdicts():
            return engine.span_verdicts_batch(list(chunk))

    else:
        def chunk_verdicts():
            return [engine.deletable(v) for v in chunk]

    if capture:
        tracer = Tracer()
        engine.set_observers(tracer=tracer)
        try:
            verdicts = chunk_verdicts()
        finally:
            engine.set_observers(tracer=NULL_TRACER)
        trace_payload = tracer.export_payload(process=label)
    else:
        verdicts = chunk_verdicts()
    after = engine.counters.as_dict()
    delta = {name: after[name] - before[name] for name in after}
    return list(chunk), verdicts, delta, trace_payload


class ScheduleFanout:
    """Per-round deletability fan-out with warm worker engines.

    Built once per schedule from the *initial* graph; each round calls
    :meth:`verdicts` with the candidate order and the caller records the
    round's deletions with :meth:`record_deletions`, which become the
    log prefix every worker replays before its next chunk.  Use as a
    context manager so the pool is torn down on any exit path.
    """

    def __init__(
        self, graph, tau: int, workers: int, capture: bool = False
    ) -> None:
        if workers < 2:
            raise ValueError("ScheduleFanout needs at least 2 workers")
        self.workers = workers
        self.capture = capture
        self._log: List[int] = []
        self._segment: Optional[SharedBlocks] = None
        try:
            if shm_enabled() and shm_available():
                # Publish once; every worker attaches the same segment
                # instead of unpickling its own copy of the graph.
                self._segment = publish_graph(graph)
                source: Any = ShmSource(self._segment.descriptor)
            else:
                source = compact_graph_blob(graph)
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_schedule_worker,
                initargs=(source, tau),
            )
        except BaseException:
            # Coordinator ownership holds on the failure path too: a
            # published segment must not outlive a pool that never
            # started (/dev/shm leaks survive the process).
            if self._segment is not None:
                self._segment.close()
                self._segment = None
            raise

    def record_deletions(self, batch: Iterable[int]) -> None:
        self._log.extend(batch)

    def verdicts(
        self,
        candidates: Sequence[int],
        counters: TopologyCounters,
        tracer=None,
    ) -> Dict[int, bool]:
        """Deletability of every candidate on the current logged graph.

        With a ``capture``-enabled fan-out and an enabled ``tracer``,
        each worker chunk's spans import under a ``fanout.chunk`` span
        in submission order.
        """
        log = tuple(self._log)
        capture = self.capture and tracer is not None and tracer.enabled
        futures = [
            self._pool.submit(
                _test_candidates, log, chunk, capture, f"chunk{index}"
            )
            for index, chunk in enumerate(
                chunk_evenly(list(candidates), self.workers)
            )
        ]
        _chaos_wait(futures)
        out: Dict[int, bool] = {}
        for index, future in enumerate(futures):
            chunk, verdicts, delta, trace_payload = future.result()
            out.update(zip(chunk, verdicts))
            counters.merge(TopologyCounters(**delta))
            if trace_payload is not None:
                with tracer.trace("fanout.chunk", chunk=index, size=len(chunk)):
                    tracer.import_spans(trace_payload)
        return out

    def close(self) -> None:
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        finally:
            # Unlink even when shutdown itself blows up (e.g. a worker
            # crashed hard): the segment is the only state that would
            # survive this process.
            if self._segment is not None:
                self._segment.close()
                self._segment = None

    def __enter__(self) -> "ScheduleFanout":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Sharded scheduling: persistent warm workers, one partition per shard
# ----------------------------------------------------------------------
def _shard_worker_main(conn, inits, tau: int, capture: bool) -> None:
    """One worker process hosting a fixed set of :class:`LocalShard`\\ s.

    ``inits`` is ``[(shard index, partition source), ...]`` where each
    source is whatever :class:`LocalShard` accepts — pickled parts or a
    shared-memory descriptor; the partitions (CSR mirrors, verdict
    caches) live for the whole schedule and the per-round messages carry
    only rows — the persistent-warm-worker replacement for per-call
    graph shipping.
    """
    from repro.shard.runtime import LocalShard

    # Fork-inheritance hygiene (REPRO307): shard workers never observe
    # through the coordinator's ambient tracer.
    reset_ambient()
    chaos = current_chaos()
    hosted = {
        index: LocalShard(index, tau, source, capture=capture)
        for index, source in inits
    }
    indices = sorted(hosted)
    try:
        while True:
            kind, payload = conn.recv()
            if kind == "stop":
                break
            if chaos is not None:
                # Seeded jitter: workers reply to the barrier in an
                # adversarial order; the decisions are unchanged.
                chaos.delay()
            try:
                out = None
                if kind == "begin":
                    # Payload per shard: (deletion batch, owned rows,
                    # halo rows).  The previous round's deletions ride
                    # this message, and the reply is already the first
                    # sub-round — two fewer roundtrips per round.
                    for index in indices:
                        batch, owned_rows, halo_rows = payload[index]
                        if batch:
                            hosted[index].apply_deletions(batch)
                        hosted[index].begin_round(owned_rows, halo_rows)
                    out = {
                        index: hosted[index].mis_subround()
                        for index in indices
                    }
                elif kind == "subround":
                    for index in indices:
                        rows = payload.get(index)
                        if rows:
                            hosted[index].apply_status(rows)
                    out = {
                        index: hosted[index].mis_subround()
                        for index in indices
                    }
                elif kind == "finish":
                    out = {
                        index: (
                            hosted[index].counters_snapshot(),
                            hosted[index].spans_payload(),
                        )
                        for index in indices
                    }
                else:
                    raise ValueError(f"unknown shard message {kind!r}")
                conn.send(("ok", out))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except EOFError:  # coordinator went away; nothing left to serve
        pass
    finally:
        conn.close()


class ShardWorkerPool:
    """Persistent warm workers for sharded scheduling.

    Unlike :class:`ScheduleFanout` (fresh base graph per pool, deletion
    log replayed per call), each worker here *owns* its shards'
    partitions for the lifetime of the schedule: the partitions ship
    once at startup and every subsequent message is boundary-band rows.
    The startup transport is picked here: shared-memory CSR segments
    when ``REPRO_SHM`` is on and the host supports them (workers attach
    read-only; this pool owns the segments and unlinks them in
    :meth:`close`), pickled partition parts otherwise.  Shards are
    assigned to workers contiguously by index (:func:`chunk_evenly`),
    and all merge points key on shard index, so results are identical
    at any worker count — including the in-process backend at
    ``workers=1``.
    """

    def __init__(
        self,
        graph,
        specs: Sequence[Any],
        tau: int,
        workers: int,
        capture: bool = False,
    ) -> None:
        from repro.shard.plan import partition_parts

        if workers < 2:
            raise ValueError("ShardWorkerPool needs at least 2 workers")
        self._segments: List[SharedBlocks] = []
        self._procs: List[multiprocessing.Process] = []
        self._conns: List[Any] = []
        try:
            if shm_enabled() and shm_available():
                sources: List[Any] = []
                for spec in specs:
                    segment = publish_partition(graph, spec)
                    self._segments.append(segment)
                    sources.append(ShmSource(segment.descriptor))
            else:
                sources = [partition_parts(graph, spec) for spec in specs]
            inits = list(enumerate(sources))
            assignments = chunk_evenly(inits, workers)
            self._assigned: List[List[int]] = [
                [index for index, __ in chunk] for chunk in assignments
            ]
            for chunk in assignments:
                parent_conn, child_conn = multiprocessing.Pipe()
                proc = multiprocessing.Process(
                    target=_shard_worker_main,
                    args=(child_conn, list(chunk), tau, capture),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            # A partially-built pool still owns everything it published
            # and spawned; close() tolerates the partial state.
            self.close()
            raise

    def _roundtrip(self, kind: str, payloads: List[Any]) -> List[Any]:
        # Under chaos, sends and receives are both permuted: each pipe
        # carries only its own worker's reply, so the drain order across
        # pipes is free — exactly the freedom the determinism contract
        # claims not to depend on.
        chaos = current_chaos()
        indices = list(range(len(self._conns)))
        for i in chaos.permuted(indices) if chaos is not None else indices:
            try:
                self._conns[i].send((kind, payloads[i]))
            except (BrokenPipeError, OSError):
                # Dead before the request even landed: same deterministic
                # error as a mid-reply death, same cleanup path (the
                # scheduler's finally runs close(), which unlinks every
                # published segment).
                raise RuntimeError(
                    f"shard worker {i} died mid-schedule "
                    f"(pipe closed before {kind!r})"
                ) from None
        outs: List[Any] = [None] * len(self._conns)
        failures: Dict[int, str] = {}
        for i in chaos.permuted(indices) if chaos is not None else indices:
            try:
                status, out = self._conns[i].recv()
            except EOFError:
                # The worker died without replying (crash, OOM kill).
                # Raising here lands in the scheduler's finally, whose
                # close() still unlinks every published segment.
                raise RuntimeError(
                    f"shard worker {i} died mid-schedule "
                    f"(no reply to {kind!r})"
                ) from None
            if status == "error":
                failures[i] = out
            outs[i] = out
        if failures:
            # Deterministic pick regardless of the drain order above.
            raise RuntimeError(
                f"shard worker failed:\n{failures[min(failures)]}"
            )
        return outs

    def _merged(self, kind: str, payloads: List[Any]) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for out in self._roundtrip(kind, payloads):
            merged.update(out)
        return merged

    def begin_round(
        self,
        batches: Dict[int, List[int]],
        owned_rows: List[list],
        halo_rows: List[list],
    ) -> Dict[int, Any]:
        return self._merged(
            "begin",
            [
                {
                    index: (
                        batches.get(index),
                        owned_rows[index],
                        halo_rows[index],
                    )
                    for index in assigned
                }
                for assigned in self._assigned
            ],
        )

    def mis_subround(self, deliveries: Dict[int, list]) -> Dict[int, Any]:
        return self._merged(
            "subround",
            [
                {
                    index: deliveries[index]
                    for index in assigned
                    if index in deliveries
                }
                for assigned in self._assigned
            ],
        )

    def finish(self) -> Dict[int, Any]:
        return self._merged("finish", [None] * len(self._conns))

    def close(self) -> None:
        try:
            for conn in self._conns:
                try:
                    conn.send(("stop", None))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - defensive teardown
                    proc.terminate()
            for conn in self._conns:
                conn.close()
        finally:
            # Segment unlink is the part that must survive any teardown
            # failure above: /dev/shm outlives the coordinator process.
            segments, self._segments = self._segments, []
            for segment in segments:
                segment.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

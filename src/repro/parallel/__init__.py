"""Process-parallel execution of independent coverage work.

See :mod:`repro.parallel.runner` for the determinism contract (ordered
submission/consumption, worker-local warm engines, counter merging).
"""

from repro.parallel.runner import (
    ScheduleFanout,
    ShardWorkerPool,
    chunk_evenly,
    compact_graph_blob,
    fanout_crossover,
    fanout_worthwhile,
    graph_from_blob,
    parallel_starmap,
    resolve_workers,
)

__all__ = [
    "ScheduleFanout",
    "ShardWorkerPool",
    "chunk_evenly",
    "compact_graph_blob",
    "fanout_crossover",
    "fanout_worthwhile",
    "graph_from_blob",
    "parallel_starmap",
    "resolve_workers",
]

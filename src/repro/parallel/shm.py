"""Shared-memory graph segments for worker startup (publish side).

The worker pools ship their base graph exactly once — but "ship" means
pickling a compact vertex/edge tuple through a pipe and unpickling it in
every worker.  At fan-out scale that serialization is pure overhead: the
payload is immutable for the whole schedule (rounds send only deletion
logs and boundary rows, replayed into each worker's *private* engine
state), which is exactly the shape POSIX shared memory is for.  This
module publishes the base graph as one
:mod:`multiprocessing.shared_memory` segment per partition, laid out as
named ``int64`` blocks in CSR form:

``indptr``/``indices``
    the sorted-id CSR adjacency of the partition (or whole graph);
``owned``/``halo``/``boundary``
    the shard's membership id arrays (absent for whole-graph segments);
``ids``
    the sorted vertex ids the CSR slots refer to (whole-graph segments).

Workers receive only a tiny picklable *descriptor* — segment name plus
the ``(field, offset, length)`` layout — and attach read-only through
:mod:`repro.shard.segment`, the consumer half (kept separate so
shard-local code never imports coordinator-scope modules; REPRO113).

Lifecycle and ownership (DESIGN.md section 10): the **coordinator** owns
every segment — it creates them before the pool starts and unlinks them
in ``close()`` on every exit path.  **Workers** never create or unlink;
they attach, copy what they need into private engine state, and drop
the mapping.

Everything here is gated behind ``REPRO_SHM`` (default **off**): the
pickled-blob path remains the reference transport, and the property
suite pins the two paths to identical schedules and counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import knobs

try:  # pragma: no cover - exercised by the import-time environment
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - stdlib, but guard exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

from repro.shard.segment import (  # noqa: F401  (re-exported)
    Attachment,
    ShmDescriptor,
    ShmSource,
    attach_blocks,
    attach_partition,
    graph_from_csr,
)


def shm_enabled() -> bool:
    """Is the shared-memory transport requested (``REPRO_SHM``)?

    Default **off** (the registry default in :mod:`repro.knobs`); read
    at call time so tests can flip it per case.  The transport
    additionally requires numpy and a usable ``shared_memory`` module —
    callers combine this with :func:`shm_available`.
    """
    return knobs.get_flag("REPRO_SHM")


def shm_available() -> bool:
    """Can shared segments actually be published on this host?"""
    return np is not None and shared_memory is not None


class SharedBlocks:
    """Coordinator-side handle for one published segment.

    Create with :func:`publish_blocks`; hand :attr:`descriptor` to the
    workers; call :meth:`close` (idempotent) when the pool shuts down —
    it both drops this process's mapping and unlinks the segment.
    """

    def __init__(self, segment, descriptor: ShmDescriptor) -> None:
        self._segment = segment
        self.descriptor = descriptor

    def close(self) -> None:
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedBlocks":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def publish_blocks(
    blocks: Sequence[Tuple[str, Sequence[int]]]
) -> SharedBlocks:
    """Publish named ``int64`` blocks as one shared segment.

    ``blocks`` is ``[(field, values), ...]``; values are copied into the
    segment back to back and the returned handle's descriptor records
    the layout.  Raises :class:`RuntimeError` when the host cannot
    publish (callers should gate on :func:`shm_available`).
    """
    if not shm_available():  # pragma: no cover - guarded by callers
        raise RuntimeError("shared-memory transport unavailable")
    arrays = [
        (field, np.ascontiguousarray(values, dtype=np.int64))
        for field, values in blocks
    ]
    total = sum(array.size for __, array in arrays)
    segment = shared_memory.SharedMemory(
        create=True, size=max(total, 1) * 8
    )
    try:
        view = np.ndarray((total,), dtype=np.int64, buffer=segment.buf)
        layout: List[Tuple[str, int, int]] = []
        offset = 0
        for field, array in arrays:
            view[offset : offset + array.size] = array
            layout.append((field, offset, array.size))
            offset += array.size
        del view
    except BaseException:
        # The segment has no owner yet: unlink here or it leaks in
        # /dev/shm past this process (create is dominated by a
        # close/unlink on every exit path — REPRO302's contract).
        segment.close()
        segment.unlink()
        raise
    return SharedBlocks(segment, (segment.name, tuple(layout)))


# ----------------------------------------------------------------------
# Graph -> CSR block conversions (publish side)
# ----------------------------------------------------------------------
def csr_blocks(graph, vertices: Optional[Sequence[int]] = None):
    """``(ids, indptr, indices)`` of ``graph`` over sorted ``vertices``.

    Slots are ranks in the sorted id list (the same order the topology
    kernel assigns), ``indices`` holds neighbour *slots* sorted within
    each row — a canonical, comparison-stable layout.
    """
    ids = sorted(graph.vertices() if vertices is None else vertices)
    rank = {v: slot for slot, v in enumerate(ids)}
    indptr = [0]
    indices: List[int] = []
    for v in ids:
        row = sorted(rank[u] for u in graph.neighbors(v) if u in rank)
        indices.extend(row)
        indptr.append(len(indices))
    return ids, indptr, indices


def publish_partition(graph, spec) -> SharedBlocks:
    """Publish one shard's partition as a shared CSR segment."""
    members = sorted(spec.members)
    __, indptr, indices = csr_blocks(graph, members)
    return publish_blocks(
        [
            ("owned", spec.owned),
            ("halo", spec.halo),
            ("boundary", spec.boundary),
            ("indptr", indptr),
            ("indices", indices),
        ]
    )


def publish_graph(graph) -> SharedBlocks:
    """Publish a whole graph as a shared CSR segment (schedule fan-out)."""
    ids, indptr, indices = csr_blocks(graph)
    return publish_blocks(
        [("ids", ids), ("indptr", indptr), ("indices", indices)]
    )


def graph_from_blocks(blocks: Dict[str, "np.ndarray"]):
    """Rebuild the fan-out base graph from attached blocks."""
    return graph_from_csr(
        blocks["ids"], blocks["indptr"], blocks["indices"]
    )


def attach_graph(descriptor: ShmDescriptor):
    """Attach, copy out a whole graph, and unmap (schedule fan-out)."""
    blocks, attachment = attach_blocks(descriptor)
    try:
        return graph_from_blocks(blocks)
    finally:
        del blocks
        attachment.close()

"""Confine coverage: definitions and Proposition 1 thresholds.

A subgraph ``G'`` achieves *tau-confine coverage* when, in every valid
embedding, each point of the target area is surrounded by a cycle of at most
``tau`` hops (Definition 1 of the paper).  The coverage granularity is
controlled by two knobs:

* the confine size ``tau``;
* the sensing ratio ``gamma = Rc / Rs`` between the maximum communication
  range and the sensing range.

Proposition 1 relates them to the quality of coverage (QoC):

* blanket coverage (no holes at all) whenever ``gamma <= 2 sin(pi / tau)``;
* otherwise a partial coverage whose holes have diameter at most
  ``(tau - 2) * Rc`` for ``gamma <= 2``.

For ``gamma`` far above 2 no connectivity-based method can bound hole sizes,
so the library (like the paper) assumes ``gamma <= 2`` by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

#: Beyond this ratio no connectivity-based scheme can bound coverage holes.
MAX_SUPPORTED_SENSING_RATIO = 2.0

#: Confine sizes are simple-cycle lengths, so at least a triangle.
MIN_CONFINE_SIZE = 3


def blanket_sensing_ratio_threshold(tau: int) -> float:
    """Largest sensing ratio for which tau-confine coverage is blanket.

    ``2 sin(pi / tau)``: for tau = 3 this is sqrt(3), for tau = 4 it is
    sqrt(2), and for tau = 6 it is exactly 1.
    """
    if tau < MIN_CONFINE_SIZE:
        raise ValueError(f"confine size must be >= {MIN_CONFINE_SIZE}")
    return 2.0 * math.sin(math.pi / tau)


def hole_diameter_bound(tau: int, rc: float = 1.0) -> float:
    """Worst-case hole diameter of a tau-confine coverage: ``(tau - 2) Rc``."""
    if tau < MIN_CONFINE_SIZE:
        raise ValueError(f"confine size must be >= {MIN_CONFINE_SIZE}")
    if rc <= 0:
        raise ValueError("communication range must be positive")
    return (tau - 2) * rc


def guarantees_blanket(tau: int, gamma: float) -> bool:
    """Does tau-confine coverage guarantee full blanket coverage at gamma?"""
    # A tiny epsilon absorbs floating-point error at the exact thresholds
    # (gamma = sqrt(3) with tau = 3, gamma = 1 with tau = 6, ...).
    return gamma <= blanket_sensing_ratio_threshold(tau) + 1e-12


def max_blanket_tau(gamma: float, tau_cap: int = 64) -> Optional[int]:
    """Largest tau whose confine coverage is blanket at sensing ratio gamma.

    Returns ``None`` when even triangles cannot guarantee blanket coverage
    (``gamma > sqrt(3)``).  The threshold ``2 sin(pi / tau)`` decreases in
    ``tau``, so the feasible set is a prefix ``{3, ..., tau_max}``.
    """
    if gamma <= 0:
        raise ValueError("sensing ratio must be positive")
    if not guarantees_blanket(MIN_CONFINE_SIZE, gamma):
        return None
    best = MIN_CONFINE_SIZE
    for tau in range(MIN_CONFINE_SIZE + 1, tau_cap + 1):
        if guarantees_blanket(tau, gamma):
            best = tau
        else:
            break
    return best


@dataclass(frozen=True)
class ConfineRequirement:
    """An application-level coverage requirement.

    ``max_hole_diameter`` is the worst-case QoC the application tolerates,
    in the same length unit as ``rc``; zero means full blanket coverage.
    """

    gamma: float
    max_hole_diameter: float = 0.0
    rc: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError("sensing ratio must be positive")
        if self.max_hole_diameter < 0:
            raise ValueError("hole diameter requirement cannot be negative")
        if self.rc <= 0:
            raise ValueError("communication range must be positive")

    @property
    def is_blanket(self) -> bool:
        return self.max_hole_diameter == 0.0

    def tau_is_feasible(self, tau: int) -> bool:
        """Does a tau-confine coverage meet this requirement (Prop. 1)?"""
        if guarantees_blanket(tau, self.gamma):
            return True
        if self.gamma > MAX_SUPPORTED_SENSING_RATIO + 1e-12:
            return False
        return hole_diameter_bound(tau, self.rc) <= self.max_hole_diameter + 1e-12

    def feasible_taus(self, tau_cap: int = 16) -> List[int]:
        return [
            tau
            for tau in range(MIN_CONFINE_SIZE, tau_cap + 1)
            if self.tau_is_feasible(tau)
        ]

    def max_feasible_tau(self, tau_cap: int = 16) -> Optional[int]:
        """The largest usable confine size; larger tau means sparser sets.

        The DCC scheduler should run with this tau: the feasible set is the
        union of a blanket prefix (small tau) and a hole-bound prefix, and
        within it larger cycles let the scheduler delete more nodes.
        """
        taus = self.feasible_taus(tau_cap)
        return max(taus) if taus else None


def ghrist_max_hole_diameter(rc: float = 1.0) -> float:
    """Hole-diameter granularity the HGC baseline is locked to.

    Ghrist et al.'s method always uses triangles as the coverage unit, which
    forces the maximum hole diameter down to ``Rc / sqrt(3)`` even when the
    application would tolerate much larger holes (Section III-C).
    """
    return rc / math.sqrt(3.0)

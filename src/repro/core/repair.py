"""Self-healing: repairing a coverage set after node failures.

Sensor nodes die — batteries drain, hardware fails, animals chew antennas.
This module injects failures into a scheduled coverage set, decides from
connectivity alone whether the coverage guarantee survived, and if not,
wakes a (small) set of sleeping nodes to restore it.

The repair strategy leans on the scheduler's own machinery: re-run maximal
vertex deletion on the alive graph while protecting the surviving active
nodes, so the result keeps the current working set and adds only sleepers
that the VPT rule cannot spare.  Theorem 5 then gives the restored
guarantee whenever the alive graph supports it at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.core.criterion import VertexCycle, is_tau_partitionable
from repro.core.scheduler import dcc_schedule
from repro.network.graph import NetworkGraph
from repro.obs.tracer import traced
from repro.topology import LocalTopologyEngine


@dataclass
class FailureAssessment:
    """Connectivity-only verdict on a failure event."""

    failed: Set[int]
    boundary_hit: bool
    criterion_survived: bool

    @property
    def needs_repair(self) -> bool:
        return not self.criterion_survived


@traced("repair.assess")
def assess_failures(
    active: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    tau: int,
    failed: Iterable[int],
) -> FailureAssessment:
    """Did the coverage criterion survive the failure of ``failed`` nodes?"""
    failed_set = set(failed)
    boundary_nodes = {v for cycle in boundary_cycles for v in cycle}
    survivors = active.vertex_set() - failed_set
    surviving_graph = active.induced_subgraph(survivors)
    boundary_hit = bool(failed_set & boundary_nodes)
    survived = not boundary_hit and is_tau_partitionable(
        surviving_graph, boundary_cycles, tau
    )
    return FailureAssessment(
        failed=failed_set,
        boundary_hit=boundary_hit,
        criterion_survived=survived,
    )


@dataclass
class RepairResult:
    """Outcome of a repair attempt."""

    restored: bool
    woken: List[int] = field(default_factory=list)
    active: Optional[NetworkGraph] = None
    assessment: Optional[FailureAssessment] = None


@traced("repair.coverage")
def repair_coverage(
    full_graph: NetworkGraph,
    active_set: Iterable[int],
    boundary_cycles: Sequence[VertexCycle],
    protected: Iterable[int],
    tau: int,
    failed: Iterable[int],
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> RepairResult:
    """Restore tau-confine coverage after ``failed`` nodes die.

    ``full_graph`` is the original deployment (sleepers included);
    ``active_set`` the coverage set before the failure.  Surviving active
    nodes are kept on duty; the scheduler picks which sleepers must wake.
    Returns ``restored=False`` when even waking every sleeper cannot
    satisfy the criterion (e.g. a boundary node died, or the failures tore
    a hole no surviving node can stitch).

    The feasibility check and the repair schedule share one
    :class:`LocalTopologyEngine` on the alive graph, so the criterion's
    cycle-space work is not recomputed by the scheduler.  Reproducible by
    default (``random.Random(seed)``).
    """
    rng = rng if rng is not None else random.Random(seed)
    failed_set = set(failed)
    protected_set = set(protected) - failed_set
    survivors_all = full_graph.vertex_set() - failed_set
    alive_graph = full_graph.induced_subgraph(survivors_all)
    active_survivors = set(active_set) - failed_set

    active_graph = full_graph.induced_subgraph(
        set(active_set) & full_graph.vertex_set()
    )
    assessment_active = assess_failures(
        active_graph, boundary_cycles, tau, failed_set
    )
    if assessment_active.criterion_survived:
        return RepairResult(
            restored=True,
            woken=[],
            active=full_graph.induced_subgraph(active_survivors),
            assessment=assessment_active,
        )

    # Even with every sleeper awake the criterion may be gone for good.
    engine = LocalTopologyEngine(alive_graph, tau)
    if assessment_active.boundary_hit or not engine.boundary_partitionable(
        boundary_cycles
    ):
        return RepairResult(
            restored=False, woken=[], active=None, assessment=assessment_active
        )

    keep_on = (active_survivors | protected_set) & survivors_all
    schedule = dcc_schedule(alive_graph, keep_on, tau, rng=rng, engine=engine)
    woken = sorted(schedule.coverage_set - active_survivors - protected_set)
    return RepairResult(
        restored=True,
        woken=woken,
        active=schedule.active,
        assessment=assessment_active,
    )


def inject_random_failures(
    nodes: Iterable[int],
    count: int,
    rng: random.Random,
    spare: Optional[Set[int]] = None,
) -> Set[int]:
    """Pick ``count`` distinct victims uniformly, avoiding ``spare``."""
    pool = sorted(set(nodes) - (spare or set()))
    if count > len(pool):
        raise ValueError(
            f"cannot fail {count} nodes: only {len(pool)} candidates"
        )
    return set(rng.sample(pool, count))

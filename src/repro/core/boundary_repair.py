"""Multi-boundary preprocessing: cone filling (Section V-B).

A multiply-connected target area gives the network several boundary cycles.
The paper reduces this to the simply-connected case by *filling a cone* onto
every boundary except one: a virtual apex node is added and connected to all
nodes of that boundary.  Every inner boundary cycle then becomes a sum of
apex triangles, hence trivially 3-partitionable, and the criterion only
needs the remaining (outer) boundary.  Apexes and repaired boundary nodes
are protected from deletion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from repro.network.graph import NetworkGraph


@dataclass
class RepairedNetwork:
    """A graph with inner boundaries cone-filled, plus bookkeeping."""

    graph: NetworkGraph
    apexes: List[int] = field(default_factory=list)
    protected: Set[int] = field(default_factory=set)


def fill_boundary_cone(
    graph: NetworkGraph, boundary_nodes: Iterable[int], apex: int
) -> None:
    """Attach a virtual ``apex`` joined to every node of one boundary."""
    nodes = list(boundary_nodes)
    if not nodes:
        raise ValueError("cannot cone-fill an empty boundary")
    if apex in graph:
        raise ValueError(f"apex id {apex} already exists in the graph")
    graph.add_vertex(apex)
    for v in nodes:
        graph.add_edge(apex, v)


def repair_inner_boundaries(
    graph: NetworkGraph,
    boundaries: Sequence[Iterable[int]],
    outer_index: int = 0,
) -> RepairedNetwork:
    """Cone-fill every boundary except ``boundaries[outer_index]``.

    Returns a repaired *copy*; the original graph is untouched.  All
    boundary nodes of every boundary plus the new apexes are protected.
    """
    if not boundaries:
        raise ValueError("at least one boundary is required")
    if not 0 <= outer_index < len(boundaries):
        raise IndexError("outer_index out of range")
    repaired = graph.copy()
    protected: Set[int] = set()
    apexes: List[int] = []
    next_id = max(graph.vertices(), default=-1) + 1
    for i, boundary in enumerate(boundaries):
        nodes = list(boundary)
        protected.update(nodes)
        if i == outer_index:
            continue
        apex = next_id
        next_id += 1
        fill_boundary_cone(repaired, nodes, apex)
        apexes.append(apex)
        protected.add(apex)
    return RepairedNetwork(graph=repaired, apexes=apexes, protected=protected)

"""Barrier coverage as an instance of confine coverage (Section III-C).

The paper observes that confine coverage "bridges the gap" between blanket
and barrier coverage: barrier coverage is confine coverage with a confine
size of network scale.  This module makes that concrete for the classic
belt-region setting with a connectivity-only test.

The key geometric fact: when ``gamma = Rc / Rs <= 2``, any two
communication neighbours have overlapping sensing disks (their distance is
at most ``Rc <= 2 Rs``), so a *communication path* between the belt's left
and right anchor bands is a chain of overlapping disks — an unbroken
sensing wall no crossing trajectory can avoid.  k-barrier coverage follows
from ``k`` internally vertex-disjoint such paths (Menger).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.network.graph import NetworkGraph

#: Above this sensing ratio neighbouring disks may fail to overlap and a
#: communication path no longer implies a sensing barrier.
MAX_BARRIER_SENSING_RATIO = 2.0


@dataclass
class BarrierResult:
    """Outcome of a barrier-coverage analysis."""

    strength: int
    chains: List[List[int]] = field(default_factory=list)

    @property
    def covered(self) -> bool:
        return self.strength >= 1

    def provides(self, k: int) -> bool:
        return self.strength >= k


def _validate(gamma: float) -> None:
    if gamma <= 0:
        raise ValueError("sensing ratio must be positive")
    if gamma > MAX_BARRIER_SENSING_RATIO + 1e-12:
        raise ValueError(
            "a communication chain only implies a sensing barrier for "
            f"gamma <= {MAX_BARRIER_SENSING_RATIO}"
        )


def barrier_exists(
    graph: NetworkGraph,
    left_anchor: Iterable[int],
    right_anchor: Iterable[int],
    gamma: float,
) -> bool:
    """Is there at least one sensing barrier across the belt?

    ``left_anchor`` / ``right_anchor`` are the nodes touching the belt's
    short sides (the analogue of the boundary-role assumption).  Uses only
    connectivity.
    """
    _validate(gamma)
    left = set(left_anchor)
    right = set(right_anchor)
    if not left or not right:
        return False
    if left & right:
        return True
    frontier = sorted(left & graph.vertex_set())
    seen = set(frontier)
    while frontier:
        node = frontier.pop()
        if node in right:
            return True
        for neighbor in sorted(graph.neighbors(node)):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return bool(seen & right)


def barrier_strength(
    graph: NetworkGraph,
    left_anchor: Iterable[int],
    right_anchor: Iterable[int],
    gamma: float,
) -> BarrierResult:
    """Maximum ``k`` such that the belt is k-barrier covered.

    Computes the maximum number of internally vertex-disjoint
    communication paths between the anchors (Menger / max-flow with unit
    vertex capacities), plus one witness chain per unit of strength.
    """
    _validate(gamma)
    import networkx as nx

    left = set(left_anchor) & graph.vertex_set()
    right = set(right_anchor) & graph.vertex_set()
    if not left or not right:
        return BarrierResult(strength=0)

    # Standard vertex-disjoint-paths reduction: split every vertex into an
    # in/out pair with unit capacity (anchors included, so chains never
    # share any sensor), infinite-capacity arcs along edges and from the
    # super source/sink to the anchors.
    flow = nx.DiGraph()
    source, sink = "S", "T"
    infinite = len(graph) + 1
    for v in graph.vertices():
        flow.add_edge(("in", v), ("out", v), capacity=1)
    for v in left:
        flow.add_edge(source, ("in", v), capacity=infinite)
    for v in right:
        flow.add_edge(("out", v), sink, capacity=infinite)
    for u, v in graph.edges():
        flow.add_edge(("out", u), ("in", v), capacity=infinite)
        flow.add_edge(("out", v), ("in", u), capacity=infinite)

    strength_value, flow_dict = nx.maximum_flow(flow, source, sink)
    chains = _decompose_flow_chains(flow_dict, source, sink, int(strength_value))
    return BarrierResult(strength=int(strength_value), chains=chains)


def _decompose_flow_chains(
    flow_dict, source, sink, strength: int
) -> List[List[int]]:
    """Trace unit flows through the in/out-split network into chains.

    Greedy witness extraction (shortest remaining path, delete, repeat)
    can sever the belt diagonally and under-produce chains; decomposing
    the maximum flow itself always yields exactly ``strength`` disjoint
    chains.
    """
    residual = {
        u: {v: int(f) for v, f in targets.items() if f > 0}
        for u, targets in flow_dict.items()
    }
    chains: List[List[int]] = []
    for __ in range(strength):
        chain: List[int] = []
        node = source
        while node != sink:
            targets = residual.get(node, {})
            nxt = next((v for v, f in targets.items() if f > 0), None)
            if nxt is None:
                return chains  # flow exhausted (defensive)
            targets[nxt] -= 1
            if isinstance(nxt, tuple) and nxt[0] == "in":
                chain.append(nxt[1])
            node = nxt
        chains.append(chain)
    return chains


def schedule_barrier(
    graph: NetworkGraph,
    left_anchor: Iterable[int],
    right_anchor: Iterable[int],
    gamma: float,
    k: int = 1,
) -> Optional[Set[int]]:
    """A sparse active set providing k-barrier coverage, or ``None``.

    Activates only the nodes of ``k`` disjoint witness chains — the
    confine-coverage view with "cycles of network scale": everything else
    sleeps, yet no trajectory crosses the belt undetected.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    result = barrier_strength(graph, left_anchor, right_anchor, gamma)
    if result.strength < k or len(result.chains) < k:
        return None
    active: Set[int] = set()
    for chain in result.chains[:k]:
        active.update(chain)
    return active

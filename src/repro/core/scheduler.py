"""The DCC scheduler: maximal vertex deletion for sparse coverage sets.

Given the connectivity graph, the protected boundary nodes and a confine
size ``tau``, the scheduler repeatedly deletes internal vertices that pass
the void-preserving test (Definition 5) until none remains deletable.  Two
execution modes produce the same *kind* of fixed point:

* ``parallel`` — the paper's round structure: every still-deletable internal
  node becomes a candidate, an m-hop MIS (``m = ceil(tau/2) + 1``) of the
  candidates is selected at random, and all MIS members delete themselves
  simultaneously.  Nodes at pairwise distance >= m have disjoint deletion
  neighbourhoods, so the parallel round is equivalent to some sequential
  order.
* ``sequential`` — a centralized emulation that deletes one random deletable
  vertex at a time; cheaper in total work, used for large simulations.

Deletability results are cached per vertex and invalidated only inside the
k-ball of each deletion (a deletion cannot change ``Gamma^k`` of vertices
farther than ``k`` hops away, because no path through the deleted vertex
realises a distance <= k for them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.criterion import VertexCycle, is_tau_partitionable
from repro.core.vpt import deletion_radius, vertex_deletable
from repro.network.graph import NetworkGraph


@dataclass
class ScheduleResult:
    """Outcome of a DCC scheduling run."""

    active: NetworkGraph
    removed: List[int]
    tau: int
    rounds: int
    deletions_per_round: List[int] = field(default_factory=list)
    deletability_tests: int = 0

    @property
    def coverage_set(self) -> Set[int]:
        return self.active.vertex_set()

    @property
    def num_active(self) -> int:
        return len(self.active)

    @property
    def num_removed(self) -> int:
        return len(self.removed)


class DeletabilityCache:
    """Memoised vertex-deletability with k-ball invalidation."""

    def __init__(self, graph: NetworkGraph, tau: int) -> None:
        self._graph = graph
        self._tau = tau
        self._radius = deletion_radius(tau)
        self._cache: Dict[int, bool] = {}
        self.tests = 0

    def deletable(self, v: int) -> bool:
        cached = self._cache.get(v)
        if cached is not None:
            return cached
        result = vertex_deletable(self._graph, v, self._tau)
        self.tests += 1
        self._cache[v] = result
        return result

    def invalidate_ball(self, center: int) -> None:
        """Invalidate cached results within k hops of ``center``.

        Must be called *before* ``center`` is removed from the graph, while
        its ball is still reachable.
        """
        for v in self._graph.k_hop_neighborhood(center, self._radius):
            self._cache.pop(v, None)
        self._cache.pop(center, None)


def mis_by_distance(
    graph: NetworkGraph,
    candidates: Sequence[int],
    min_separation: int,
    rng: random.Random,
) -> List[int]:
    """A maximal set of candidates at pairwise hop distance >= min_separation.

    Emulates the distributed random-priority MIS: candidates are visited in
    a random order (the priority draw) and join the set when no earlier
    member lies within ``min_separation - 1`` hops.
    """
    order = list(candidates)
    rng.shuffle(order)
    selected: Set[int] = set()
    out: List[int] = []
    for v in order:
        ball = graph.bfs_distances(v, cutoff=min_separation - 1)
        if selected.isdisjoint(ball):
            selected.add(v)
            out.append(v)
    return out


def dcc_schedule(
    graph: NetworkGraph,
    protected: Iterable[int],
    tau: int,
    rng: Optional[random.Random] = None,
    mode: str = "parallel",
) -> ScheduleResult:
    """Compute a sparse tau-confine coverage set by maximal vertex deletion.

    ``protected`` nodes (boundary nodes and any cone apexes) are never
    deleted.  The returned :class:`ScheduleResult` holds the reduced graph;
    by Theorem 5 its boundary is still tau-partitionable whenever the input
    boundary was, and by Theorem 6 the set is non-redundant when the input
    graph's irreducible cycles are bounded by ``tau``.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = rng or random.Random()
    work = graph.copy()
    protected_set = set(protected)
    missing = protected_set - work.vertex_set()
    if missing:
        raise KeyError(f"protected nodes not in graph: {sorted(missing)[:5]}")
    cache = DeletabilityCache(work, tau)
    removed: List[int] = []
    deletions_per_round: List[int] = []
    separation = deletion_radius(tau) + 1

    while True:
        candidates = [
            v
            for v in work.vertices()
            if v not in protected_set and cache.deletable(v)
        ]
        if not candidates:
            break
        if mode == "parallel":
            batch = mis_by_distance(work, candidates, separation, rng)
        else:
            batch = [candidates[rng.randrange(len(candidates))]]
        for v in batch:
            cache.invalidate_ball(v)
            work.remove_vertex(v)
            removed.append(v)
        deletions_per_round.append(len(batch))

    return ScheduleResult(
        active=work,
        removed=removed,
        tau=tau,
        rounds=len(deletions_per_round),
        deletions_per_round=deletions_per_round,
        deletability_tests=cache.tests,
    )


def is_non_redundant(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    tau: int,
    protected: Iterable[int],
) -> bool:
    """Definition 6 check: no single internal node can be spared.

    ``graph`` should be the *reduced* graph returned by the scheduler.  The
    check recomputes the global criterion once per internal node, so use it
    on small graphs (tests, examples).
    """
    protected_set = set(protected)
    if not is_tau_partitionable(graph, boundary_cycles, tau):
        return False
    for v in graph.vertices():
        if v in protected_set:
            continue
        thinner = graph.copy()
        thinner.remove_vertex(v)
        if is_tau_partitionable(thinner, boundary_cycles, tau):
            return False
    return True

"""The DCC scheduler: maximal vertex deletion for sparse coverage sets.

Given the connectivity graph, the protected boundary nodes and a confine
size ``tau``, the scheduler repeatedly deletes internal vertices that pass
the void-preserving test (Definition 5) until none remains deletable.  Two
execution modes produce the same *kind* of fixed point:

* ``parallel`` — the paper's round structure: an m-hop MIS
  (``m = ceil(tau/2) + 1``) of the deletable internal nodes is selected at
  random, and all MIS members delete themselves simultaneously.  Nodes at
  pairwise distance >= m have disjoint deletion neighbourhoods, so the
  parallel round is equivalent to some sequential order.  The MIS is drawn
  lazily: vertices are visited in a random priority order, and a vertex
  already inside a winner's separation ball is skipped *without* the
  expensive deletability test (it cannot join the MIS regardless).  The
  induced order on the deletable set is still a uniform permutation, so the
  winner-set distribution matches the eager draw exactly.
* ``sequential`` — a centralized emulation that deletes one uniformly random
  deletable vertex at a time; cheaper in total work, used for large
  simulations.  The victim is drawn lazily: vertices are visited in a random
  order and the first deletable one is removed, which is the same uniform
  distribution over the deletable set but skips testing the vertices behind
  the winner — repeated invalidations of a vertex coalesce into a single
  retest instead of one per deletion.

All local-topology work (k-ball extraction, deletability verdicts, MIS
separation balls) runs through a :class:`repro.topology.LocalTopologyEngine`,
which caches results and invalidates only the dirty region of each deletion.
The engine's instrumentation counters ride on :class:`ScheduleResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Set

from repro.core.criterion import VertexCycle, is_tau_partitionable
from repro.cycles.batch import batch_verdicts_enabled
from repro.network.graph import NetworkGraph
from repro.obs.tracer import current_metrics, current_tracer
from repro.parallel.runner import (
    ScheduleFanout,
    fanout_worthwhile,
    resolve_workers,
)
from repro.topology import LocalTopologyEngine, TopologyCounters, mis_separation
from repro.topology.mis import WaveMIS


@dataclass
class ScheduleResult:
    """Outcome of a DCC scheduling run."""

    active: NetworkGraph
    removed: List[int]
    tau: int
    rounds: int
    deletions_per_round: List[int] = field(default_factory=list)
    deletability_tests: int = 0
    counters: Optional[TopologyCounters] = None
    #: sharding account (:class:`repro.shard.scheduler.ShardStats`),
    #: ``None`` for unsharded runs.
    shard_stats: Optional[object] = None

    @property
    def coverage_set(self) -> Set[int]:
        return self.active.vertex_set()

    @property
    def num_active(self) -> int:
        return len(self.active)

    @property
    def num_removed(self) -> int:
        return len(self.removed)


def mis_by_distance(
    graph: NetworkGraph,
    candidates: Sequence[int],
    min_separation: int,
    rng: random.Random,
    engine: Optional[LocalTopologyEngine] = None,
) -> List[int]:
    """A maximal set of candidates at pairwise hop distance >= min_separation.

    Emulates the distributed random-priority MIS: candidates are visited in
    a random order (the priority draw) and join the set when no earlier
    member lies within ``min_separation - 1`` hops.  With an ``engine``, the
    separation balls are served from its cache and survive across rounds —
    only candidates near a previous round's deletions are re-extracted.
    """
    order = list(candidates)
    rng.shuffle(order)
    selected: Set[int] = set()
    out: List[int] = []
    for v in order:
        if engine is not None:
            ball = engine.ball(v, min_separation - 1)
        else:
            ball = graph.bfs_distances(v, cutoff=min_separation - 1)
        if selected.isdisjoint(ball):
            selected.add(v)
            out.append(v)
    return out


def dcc_schedule(
    graph: NetworkGraph,
    protected: Iterable[int],
    tau: int,
    rng: Optional[random.Random] = None,
    mode: str = "parallel",
    seed: int = 0,
    engine: Optional[LocalTopologyEngine] = None,
    workers: Optional[int] = 1,
    tracer=None,
    metrics=None,
    shards: Optional[int] = None,
) -> ScheduleResult:
    """Compute a sparse tau-confine coverage set by maximal vertex deletion.

    ``protected`` nodes (boundary nodes and any cone apexes) are never
    deleted.  The returned :class:`ScheduleResult` holds the reduced graph;
    by Theorem 5 its boundary is still tau-partitionable whenever the input
    boundary was, and by Theorem 6 the set is non-redundant when the input
    graph's irreducible cycles are bounded by ``tau``.

    Runs are reproducible by default: without an explicit ``rng`` the
    scheduler uses ``random.Random(seed)`` (``seed=0``).  ``graph`` is never
    mutated unless a prebuilt ``engine`` is supplied, in which case the
    engine's graph is consumed in place (that is the point: callers like
    boundary repair share one engine across criterion checks and
    scheduling).

    ``workers`` (``1`` = serial, ``0``/``None`` = auto-detect) fans the
    round's deletability verdicts across a process pool of warm engine
    replicas in ``parallel`` mode — see :mod:`repro.parallel`.  Verdicts
    are pure functions of the current graph, so the schedule is
    bit-identical to the serial run at any worker count; the fan-out
    tests every candidate eagerly (trading the serial path's lazy
    blocked-candidate skips for concurrency).  Jobs below the
    :func:`repro.parallel.runner.fanout_crossover` size never fan out —
    the pool would cost more than the verdicts.  ``sequential`` mode
    takes one verdict per round and always runs serially.

    ``shards`` partitions the deployment into halo-exchange region
    shards (see :mod:`repro.shard`) and runs the round-synchronous
    sharded coordinator instead of the monolithic loop; the schedule is
    vertex-identical either way.  Sharded runs require ``parallel`` mode
    and no prebuilt ``engine``; ``workers`` then counts persistent shard
    workers (``1`` hosts every shard in-process).

    ``tracer`` / ``metrics`` default to the ambient observers
    (:func:`repro.obs.tracer.observe`); a run with both disabled pays
    only the null-tracer guards.  When observed, every round records a
    ``scheduler.round`` span with nested candidate-discovery, MIS-draw
    and deletion phases, and the engine's counter delta is absorbed into
    the registry under ``topology.*``.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = rng if rng is not None else random.Random(seed)
    tracer = tracer if tracer is not None else current_tracer()
    metrics = metrics if metrics is not None else current_metrics()
    if shards is not None:
        if mode != "parallel":
            raise ValueError("sharded scheduling requires parallel mode")
        if engine is not None:
            raise ValueError("sharded scheduling cannot reuse a prebuilt engine")
        from repro.shard.scheduler import sharded_dcc_schedule

        return sharded_dcc_schedule(
            graph,
            protected,
            tau,
            rng,
            shards,
            workers=workers if workers is not None else 0,
            tracer=tracer,
            metrics=metrics,
        )
    if engine is None:
        engine = LocalTopologyEngine(
            graph.copy(), tau, tracer=tracer, metrics=metrics
        )
    elif engine.tau != tau:
        raise ValueError("engine was built for a different tau")
    elif tracer.enabled or metrics is not None:
        engine.set_observers(tracer=tracer, metrics=metrics)
    work = engine.graph
    protected_set = set(protected)
    missing = protected_set - work.vertex_set()
    if missing:
        raise KeyError(f"protected nodes not in graph: {sorted(missing)[:5]}")
    fanout = None
    if mode == "parallel":
        pool_size = resolve_workers(workers)
        # Crossover guard: on small graphs the pool's startup + per-round
        # IPC dwarfs the verdicts, so the request silently runs serial
        # (results are identical either way).
        if pool_size > 1 and fanout_worthwhile(len(work), pool_size):
            fanout = ScheduleFanout(work, tau, pool_size, capture=tracer.enabled)
    try:
        return _dcc_schedule_rounds(
            engine, work, protected_set, tau, rng, mode, fanout, tracer, metrics
        )
    finally:
        if fanout is not None:
            fanout.close()


def _dcc_schedule_rounds(
    engine: LocalTopologyEngine,
    work: NetworkGraph,
    protected_set: Set[int],
    tau: int,
    rng: random.Random,
    mode: str,
    fanout,
    tracer,
    metrics,
) -> ScheduleResult:
    removed: List[int] = []
    deletions_per_round: List[int] = []
    separation = mis_separation(tau)
    counters_before = engine.counters.as_dict() if metrics is not None else None
    use_batch = (
        mode == "parallel"
        and batch_verdicts_enabled()
        and engine.kernel is not None
    )
    round_no = 0

    while True:
        round_start = perf_counter()
        with tracer.trace("scheduler.round", round=round_no, mode=mode):
            if mode == "parallel":
                # Lazy MIS: one random priority order over the internal
                # vertices; a vertex blocked by an earlier winner skips the
                # deletability test entirely.  A blocked vertex can never be
                # selected and never blocks anyone else, so the winners are
                # exactly the greedy MIS over the induced (uniform) order on
                # the deletable set — the eager candidates-then-MIS draw's
                # distribution, minus its wasted span tests.  Blocking is
                # marked from the winner's side: hop distance is symmetric,
                # so ``v`` lies in some winner's separation ball iff a winner
                # lies in ``v``'s — one ball extraction per *winner* (and an
                # O(1) membership probe per candidate) instead of one BFS per
                # candidate.
                with tracer.trace(
                    "scheduler.candidates", round=round_no
                ) as discovery:
                    order = [
                        v for v in work.vertices() if v not in protected_set
                    ]
                    rng.shuffle(order)
                    discovery.set(candidates=len(order))
                    if fanout is not None:
                        # The coordinator blocks here on the worker pool;
                        # the barrier span minus the imported chunk busy
                        # time is the fanned run's wait lane in the
                        # attribution analysis.
                        with tracer.trace("fanout.barrier", round=round_no):
                            verdict_of = fanout.verdicts(
                                order, engine.counters, tracer
                            )
                    else:
                        verdict_of = None
                with tracer.trace("scheduler.mis_draw", round=round_no) as draw:
                    blocked: Set[int] = set()
                    batch = []
                    if verdict_of is None and use_batch:
                        # Wave MIS: each step's label propagation finds
                        # every candidate whose smaller-priority
                        # neighbours within the separation radius are
                        # all decided — testable candidates are
                        # pairwise conflict-free and resolve in one
                        # batched kernel call; candidates inside a
                        # winner's radius drop without any test.  The
                        # tested set and the winner set equal the lazy
                        # scan's exactly, with zero ball extractions
                        # (the lazy scan pays one BFS per winner).
                        mis = WaveMIS(
                            engine.kernel,
                            (
                                (v, position)
                                for position, v in enumerate(order)
                            ),
                            separation - 1,
                        )
                        # Loop to the fixpoint, not until a testable-
                        # empty step: a wave may decide only blocked
                        # candidates (every current local minimum sits
                        # inside a winner's radius) while later-priority
                        # candidates still await their turn.
                        while mis.undecided_count():
                            testable, wave_blocked = mis.step()
                            if not testable and not wave_blocked:
                                break  # pragma: no cover - unreachable
                            for v, verdict in zip(
                                testable,
                                engine.span_verdicts_batch(testable),
                            ):
                                mis.record_verdict(v, verdict)
                        # winners() is priority-ascending: the lazy
                        # scan's deletion order.
                        batch = mis.winners()
                    else:
                        for v in order:
                            if v in blocked:
                                continue
                            if (
                                verdict_of[v]
                                if verdict_of is not None
                                else engine.deletable(v)
                            ):
                                batch.append(v)
                                blocked |= engine.ball(v, separation - 1)
                    draw.set(winners=len(batch))
                if not batch:
                    break
            else:
                # Lazy uniform draw: the first deletable vertex of a
                # uniformly random permutation is uniform over the
                # deletable set.
                with tracer.trace("scheduler.mis_draw", round=round_no) as draw:
                    order = [
                        v for v in work.vertices() if v not in protected_set
                    ]
                    rng.shuffle(order)
                    batch = []
                    for v in order:
                        if engine.deletable(v):
                            batch.append(v)
                            break
                    draw.set(winners=len(batch))
                if not batch:
                    break
            with tracer.trace(
                "scheduler.deletion", round=round_no, deletions=len(batch)
            ):
                for v in batch:
                    engine.delete_vertex(v)
                    removed.append(v)
            if fanout is not None:
                fanout.record_deletions(batch)
            deletions_per_round.append(len(batch))
        if metrics is not None:
            metrics.observe(
                "scheduler.round_wall_s",
                perf_counter() - round_start,
                volatile=True,
            )
            metrics.observe("scheduler.deletions_per_round", len(batch))
            if mode == "parallel":
                metrics.observe("scheduler.mis_size", len(batch))
        round_no += 1

    if metrics is not None:
        metrics.inc("scheduler.runs")
        metrics.inc("scheduler.rounds", len(deletions_per_round))
        metrics.inc("scheduler.deletions", len(removed))
        after = engine.counters.as_dict()
        metrics.absorb_topology(
            TopologyCounters(
                **{
                    name: after[name] - counters_before[name]
                    for name in after
                }
            )
        )

    return ScheduleResult(
        active=work,
        removed=removed,
        tau=tau,
        rounds=len(deletions_per_round),
        deletions_per_round=deletions_per_round,
        deletability_tests=engine.counters.deletability_tests,
        counters=engine.counters,
    )


def is_non_redundant(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    tau: int,
    protected: Iterable[int],
) -> bool:
    """Definition 6 check: no single internal node can be spared.

    ``graph`` should be the *reduced* graph returned by the scheduler.  The
    check recomputes the global criterion once per internal node, so use it
    on small graphs (tests, examples).
    """
    protected_set = set(protected)
    if not is_tau_partitionable(graph, boundary_cycles, tau):
        return False
    for v in graph.vertices():
        if v in protected_set:
            continue
        thinner = graph.copy()
        thinner.remove_vertex(v)
        if is_tau_partitionable(thinner, boundary_cycles, tau):
            return False
    return True

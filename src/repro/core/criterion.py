"""The cycle-partition coverage criterion (Propositions 2 and 3).

A cycle set ``C`` is a *cycle partition* of a cycle ``C0`` when the GF(2)
sum of its members equals ``C0`` (Definition 2); ``C0`` is
*tau-partitionable* when some partition uses only cycles of length at most
``tau`` (Definition 3).  The coverage criterion is then:

* simply-connected target area — the subgraph ``G'`` achieves tau-confine
  coverage if the outer boundary cycle is tau-partitionable in ``G'``
  (Proposition 2);
* multiply-connected target area — same with the GF(2) sum of all boundary
  cycles (Proposition 3).

Equivalently, the boundary sum must lie in the span of all cycles of length
at most ``tau``, which :class:`repro.cycles.ShortCycleSpan` computes from
length-capped Horton candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cycles.cycle_space import Cycle, EdgeIndex
from repro.cycles.gf2 import gf2_solve
from repro.cycles.horton import ShortCycleSpan, horton_candidate_cycles
from repro.network.graph import Edge, NetworkGraph, canonical_edge

VertexCycle = Sequence[int]


def cycle_edges(cycle: VertexCycle) -> List[Edge]:
    """Edges of a cycle given as a vertex sequence (closing edge implicit)."""
    if len(cycle) < 3:
        raise ValueError("a simple cycle needs at least three vertices")
    return [
        canonical_edge(a, b)
        for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]])
    ]


def boundary_edge_sum(boundary_cycles: Sequence[VertexCycle]) -> List[Edge]:
    """GF(2) sum (symmetric difference) of the boundary cycles' edge sets."""
    parity: Dict[Edge, int] = {}
    for cycle in boundary_cycles:
        for edge in cycle_edges(cycle):
            parity[edge] = parity.get(edge, 0) ^ 1
    return [edge for edge, bit in parity.items() if bit]


def is_tau_partitionable(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    tau: int,
    span: Optional[ShortCycleSpan] = None,
) -> bool:
    """Is the boundary (sum) tau-partitionable in ``graph``?

    This is the computational form of Propositions 2/3: the boundary sum
    must be a GF(2) combination of cycles of length at most ``tau`` that
    live entirely inside ``graph``.  Pass a prebuilt ``span`` to amortise
    the Horton computation across several queries on the same graph.
    """
    if not boundary_cycles:
        raise ValueError("at least one boundary cycle is required")
    if span is None:
        span = ShortCycleSpan(graph, tau)
    elif span.graph is not graph or span.tau != tau:
        raise ValueError("span was built for a different graph or tau")
    return span.contains_edges(boundary_edge_sum(boundary_cycles))


@dataclass(frozen=True)
class CoverageVerdict:
    """Outcome of a coverage-criterion check."""

    tau: int
    partitionable: bool
    cycle_space_rank: int
    short_cycle_rank: int

    @property
    def achieves_confine_coverage(self) -> bool:
        return self.partitionable


def verify_confine_coverage(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    tau: int,
) -> CoverageVerdict:
    """Check the cycle-partition criterion and report diagnostics."""
    span = ShortCycleSpan(graph, tau)
    ok = is_tau_partitionable(graph, boundary_cycles, tau, span=span)
    return CoverageVerdict(
        tau=tau,
        partitionable=ok,
        cycle_space_rank=span.cycle_space_dimension,
        short_cycle_rank=span.rank,
    )


def find_cycle_partition(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    tau: int,
) -> Optional[List[Cycle]]:
    """An explicit tau-bounded cycle partition of the boundary sum.

    Returns a list of cycles of length at most ``tau`` whose GF(2) sum
    equals the boundary sum, or ``None`` when the boundary is not
    tau-partitionable.  This materialises all capped Horton candidates and
    solves a full linear system, so it is intended for reporting and tests
    on small graphs; scheduling only ever needs the boolean test.
    """
    index = EdgeIndex.from_graph(graph)
    target_edges = boundary_edge_sum(boundary_cycles)
    for u, v in target_edges:
        if not graph.has_edge(u, v):
            return None
    target_mask = index.mask_of_edges(target_edges)
    candidates = horton_candidate_cycles(graph, max_length=tau)
    candidates.sort(key=len)
    masks = [index.mask_of_vertex_cycle(c) for c in candidates]
    chosen = gf2_solve(target_mask, masks)
    if chosen is None:
        return None
    return [Cycle.from_vertices(candidates[i], index) for i in chosen]


def partition_is_valid(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    partition: Sequence[Cycle],
    tau: int,
) -> bool:
    """Verify that ``partition`` really is a tau-bounded cycle partition."""
    if any(cycle.length > tau for cycle in partition):
        return False
    index = EdgeIndex.from_graph(graph)
    target = index.mask_of_edges(boundary_edge_sum(boundary_cycles))
    total = 0
    for cycle in partition:
        total ^= index.mask_of_vertex_cycle(cycle.vertices)
    return total == target

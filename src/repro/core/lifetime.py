"""Network-lifetime extension: rotating DCC coverage shifts.

The paper motivates confine coverage with energy ("improve the network
lifetime") but stops at computing one sparse coverage set.  The natural
completion, implemented here, is *rotation*: time is divided into shifts;
each shift recomputes a coverage set over the currently-alive nodes with
an energy-aware twist — the scheduler prefers to put *low-energy* nodes to
sleep, spreading duty across the deployment — and the network lives until
the alive nodes can no longer support the coverage criterion.

Energy-aware scheduling reuses the exact VPT rule (so Theorem 5 still
applies shift by shift); only the deletion *order* changes, which affects
who rests, not whether coverage holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.criterion import VertexCycle
from repro.core.scheduler import ScheduleResult
from repro.network.energy import EnergyModel, EnergyState
from repro.network.graph import NetworkGraph
from repro.topology import LocalTopologyEngine


def energy_aware_schedule(
    graph: NetworkGraph,
    protected: Iterable[int],
    tau: int,
    residual: Dict[int, float],
    rng: Optional[random.Random] = None,
    seed: int = 0,
    engine: Optional[LocalTopologyEngine] = None,
) -> ScheduleResult:
    """DCC scheduling that sends the lowest-energy nodes to sleep first.

    Sequential maximal vertex deletion where, at every step, the deletable
    candidate with the least residual energy is removed (ties broken
    randomly).  The fixed point is still a maximal deletion under the same
    VPT rule, so all correctness properties of :func:`dcc_schedule` carry
    over; the bias only redistributes which redundant nodes rest.

    A prebuilt ``engine`` (e.g. a fork of the rotation's persistent engine)
    is consumed in place, inheriting still-valid deletability verdicts from
    earlier shifts; otherwise a fresh engine is built on a copy of
    ``graph``.  Reproducible by default (``random.Random(seed)``).
    """
    rng = rng if rng is not None else random.Random(seed)
    if engine is None:
        engine = LocalTopologyEngine(graph.copy(), tau)
    elif engine.tau != tau:
        raise ValueError("engine was built for a different tau")
    work = engine.graph
    protected_set = set(protected)
    missing = protected_set - work.vertex_set()
    if missing:
        raise KeyError(f"protected nodes not in graph: {sorted(missing)[:5]}")
    removed: List[int] = []
    deletions_per_round: List[int] = []

    while True:
        candidates = [
            v
            for v in work.vertices()
            if v not in protected_set and engine.deletable(v)
        ]
        if not candidates:
            break
        victim = min(
            candidates, key=lambda v: (residual.get(v, 0.0), rng.random())
        )
        engine.delete_vertex(victim)
        removed.append(victim)
        deletions_per_round.append(1)

    return ScheduleResult(
        active=work,
        removed=removed,
        tau=tau,
        rounds=len(deletions_per_round),
        deletions_per_round=deletions_per_round,
        deletability_tests=engine.counters.deletability_tests,
        counters=engine.counters,
    )


@dataclass
class ShiftRecord:
    """One shift of the rotation simulation."""

    shift: int
    alive: int
    active: int
    criterion_holds: bool
    min_residual: float


@dataclass
class LifetimeReport:
    """Outcome of a rotation simulation."""

    shifts_survived: int
    always_on_shifts: int
    records: List[ShiftRecord] = field(default_factory=list)
    cause_of_death: str = ""

    @property
    def lifetime_gain(self) -> float:
        """How much longer rotation lives than the always-on baseline."""
        if self.always_on_shifts <= 0:
            raise ValueError("always-on baseline must be positive")
        return self.shifts_survived / self.always_on_shifts

    def format_table(self) -> str:
        lines = [
            f"Lifetime: {self.shifts_survived} shifts with rotation vs "
            f"{self.always_on_shifts} always-on "
            f"({self.lifetime_gain:.2f}x), ended by {self.cause_of_death}"
        ]
        for record in self.records:
            lines.append(
                f"  shift {record.shift:3d}: alive={record.alive:4d} "
                f"active={record.active:4d} criterion={record.criterion_holds} "
                f"min residual={record.min_residual:6.1f}"
            )
        return "\n".join(lines)


def rotation_simulation(
    graph: NetworkGraph,
    boundary_cycles: Sequence[VertexCycle],
    protected: Iterable[int],
    tau: int,
    model: Optional[EnergyModel] = None,
    rng: Optional[random.Random] = None,
    max_shifts: int = 10_000,
    boundary_immortal: bool = True,
    record_every: int = 1,
    seed: int = 0,
) -> LifetimeReport:
    """Simulate rotating coverage shifts until coverage collapses.

    Per shift: (1) schedule an energy-aware coverage set over the alive
    subgraph, (2) the coverage set pays the active cost while everyone
    else sleeps, (3) depleted nodes leave the network.  The simulation
    ends when the boundary sum stops being tau-partitionable in the alive
    subgraph (coverage no longer guaranteed) or when a protected node dies.

    ``boundary_immortal`` models mains-powered or battery-swapped perimeter
    nodes; with it off, the perimeter's own duty bounds the lifetime.

    One :class:`LocalTopologyEngine` persists over the alive graph for the
    whole simulation: node deaths invalidate only their dirty region, the
    per-shift criterion check reuses the version-cached full-graph span,
    and each shift's scheduler runs on a fork that inherits still-valid
    deletability verdicts from previous shifts.
    """
    model = model or EnergyModel()
    rng = rng if rng is not None else random.Random(seed)
    protected_set = set(protected)
    energy = EnergyState(graph.vertices(), model)
    alive = LocalTopologyEngine(graph.copy(), tau)
    work = alive.graph

    report = LifetimeReport(
        shifts_survived=0,
        always_on_shifts=model.always_on_shifts,
    )
    for shift in range(1, max_shifts + 1):
        if not alive.boundary_partitionable(boundary_cycles):
            report.cause_of_death = "criterion lost"
            break
        schedule = energy_aware_schedule(
            work, protected_set & work.vertex_set(), tau,
            energy.residual, rng=rng, engine=alive.fork(),
        )
        active = schedule.active.vertex_set()
        died = energy.drain_shift(active)
        if boundary_immortal:
            for node in died & protected_set:
                energy.recharge(node)
            died -= protected_set
        report.shifts_survived = shift
        if shift % record_every == 0 or died:
            residuals = [
                energy.residual_of(v)
                for v in work.vertices()
                if v not in protected_set or not boundary_immortal
            ]
            report.records.append(
                ShiftRecord(
                    shift=shift,
                    alive=len(work),
                    active=len(active),
                    criterion_holds=True,
                    min_residual=min(residuals) if residuals else 0.0,
                )
            )
        if died & protected_set:
            report.cause_of_death = "protected node depleted"
            break
        for node in died:
            if node in work:
                alive.delete_vertex(node)
    else:
        report.cause_of_death = "max shifts reached"
    return report

"""The paper's primary contribution: confine coverage, criterion, DCC."""

from repro.core.boundary_repair import (
    RepairedNetwork,
    fill_boundary_cone,
    repair_inner_boundaries,
)
from repro.core.confine import (
    MAX_SUPPORTED_SENSING_RATIO,
    MIN_CONFINE_SIZE,
    ConfineRequirement,
    blanket_sensing_ratio_threshold,
    ghrist_max_hole_diameter,
    guarantees_blanket,
    hole_diameter_bound,
    max_blanket_tau,
)
from repro.core.barrier import (
    BarrierResult,
    MAX_BARRIER_SENSING_RATIO,
    barrier_exists,
    barrier_strength,
    schedule_barrier,
)
from repro.core.lifetime import (
    LifetimeReport,
    ShiftRecord,
    energy_aware_schedule,
    rotation_simulation,
)
from repro.core.repair import (
    FailureAssessment,
    RepairResult,
    assess_failures,
    inject_random_failures,
    repair_coverage,
)
from repro.core.criterion import (
    CoverageVerdict,
    boundary_edge_sum,
    cycle_edges,
    find_cycle_partition,
    is_tau_partitionable,
    partition_is_valid,
    verify_confine_coverage,
)
from repro.core.scheduler import (
    ScheduleResult,
    dcc_schedule,
    is_non_redundant,
    mis_by_distance,
)
from repro.core.vpt import (
    VoidPreservingTransformation,
    deletable_vertices,
    deletion_radius,
    edge_deletable,
    vertex_deletable,
)

__all__ = [
    "BarrierResult",
    "MAX_BARRIER_SENSING_RATIO",
    "MAX_SUPPORTED_SENSING_RATIO",
    "MIN_CONFINE_SIZE",
    "ConfineRequirement",
    "CoverageVerdict",
    "FailureAssessment",
    "LifetimeReport",
    "RepairResult",
    "RepairedNetwork",
    "ScheduleResult",
    "VoidPreservingTransformation",
    "blanket_sensing_ratio_threshold",
    "boundary_edge_sum",
    "cycle_edges",
    "assess_failures",
    "barrier_exists",
    "barrier_strength",
    "dcc_schedule",
    "deletable_vertices",
    "energy_aware_schedule",
    "deletion_radius",
    "edge_deletable",
    "fill_boundary_cone",
    "find_cycle_partition",
    "ghrist_max_hole_diameter",
    "guarantees_blanket",
    "hole_diameter_bound",
    "is_non_redundant",
    "inject_random_failures",
    "is_tau_partitionable",
    "max_blanket_tau",
    "repair_coverage",
    "rotation_simulation",
    "ShiftRecord",
    "mis_by_distance",
    "partition_is_valid",
    "repair_inner_boundaries",
    "schedule_barrier",
    "verify_confine_coverage",
    "vertex_deletable",
]

"""Void Preserving Transformation (Definition 5).

A vertex ``x`` may be deleted from ``H`` when its punctured k-hop
neighbourhood graph ``Gamma^k_H(x) = H[N^k_H(x)]`` (which excludes ``x``)
is connected and all its irreducible cycles have length at most ``tau``,
with ``k = ceil(tau / 2)``.  Deleting such a vertex preserves the
tau-partitionability of the boundary (Theorem 5): every short cycle through
``x`` lives inside the k-ball and can be rewritten as a sum of short cycles
that avoid ``x``.

The irreducible-cycle bound is evaluated through the equivalent (and much
cheaper) spanning test of :class:`repro.cycles.ShortCycleSpan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.cycles.horton import ShortCycleSpan
from repro.network.graph import NetworkGraph
from repro.topology import (
    LocalTopologyEngine,
    neighborhood_radius,
    punctured_deletable,
)


def deletion_radius(tau: int) -> int:
    """The neighbourhood radius ``k = ceil(tau / 2)`` of Definition 5."""
    return neighborhood_radius(tau)


def vertex_deletable(
    graph: NetworkGraph,
    v: int,
    tau: int,
    engine: Optional[LocalTopologyEngine] = None,
) -> bool:
    """Can ``v`` be removed by a tau-void-preserving transformation?

    The test uses only the connectivity of the k-hop neighbourhood of
    ``v`` — exactly the information a node can gather locally in a
    distributed execution.  Pass an ``engine`` built on ``graph`` to get
    cached, incrementally-invalidated verdicts; without one, the test is
    a one-shot copy-free computation.
    """
    if engine is not None:
        if engine.graph is not graph or engine.tau != tau:
            raise ValueError("engine was built for a different graph or tau")
        return engine.deletable(v)
    return punctured_deletable(graph, v, tau)


def edge_deletable(graph: NetworkGraph, u: int, v: int, tau: int) -> bool:
    """Can edge ``(u, v)`` be removed by a tau-void-preserving transformation?

    The local graph is the induced subgraph on the union of the endpoints'
    k-hop balls with the edge itself removed; the edge is deletable when its
    endpoints stay connected there and every irreducible cycle of the local
    graph is bounded by ``tau`` — then any short cycle through the edge can
    be re-expressed with cycles that avoid it.
    """
    if not graph.has_edge(u, v):
        raise KeyError(f"edge ({u}, {v}) not in graph")
    k = deletion_radius(tau)
    ball = graph.k_hop_neighborhood(u, k) | graph.k_hop_neighborhood(v, k)
    ball.update((u, v))
    local = graph.induced_subgraph(ball)
    local.remove_edge(u, v)
    if local.shortest_path(u, v) is None:
        return False
    return ShortCycleSpan(local, tau).spans_cycle_space()


@dataclass
class TransformationStep:
    """One recorded operation of a void preserving transformation."""

    kind: str  # "vertex" or "edge"
    target: Tuple[int, ...]


@dataclass
class VoidPreservingTransformation:
    """A checked, replayable sequence of void-preserving deletions.

    Wraps a working copy of the input graph behind a
    :class:`LocalTopologyEngine`; every requested deletion is validated
    against Definition 5 before it is applied, so any reachable state of
    :attr:`graph` preserves boundary tau-partitionability.  Deletability
    caches survive between steps and only the dirty region of each
    deletion is re-examined.
    """

    graph: NetworkGraph
    tau: int
    steps: List[TransformationStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tau < 3:
            raise ValueError("confine size must be at least 3")
        self._engine = LocalTopologyEngine(self.graph.copy(), self.tau)
        self.graph = self._engine.graph

    @property
    def engine(self) -> LocalTopologyEngine:
        return self._engine

    def delete_vertex(self, v: int) -> None:
        if not self._engine.deletable(v):
            raise ValueError(
                f"vertex {v} is not {self.tau}-void-preserving deletable"
            )
        self._engine.delete_vertex(v)
        self.steps.append(TransformationStep("vertex", (v,)))

    def delete_edge(self, u: int, v: int) -> None:
        if not edge_deletable(self.graph, u, v, self.tau):
            raise ValueError(
                f"edge ({u}, {v}) is not {self.tau}-void-preserving deletable"
            )
        self._engine.delete_edge(u, v)
        self.steps.append(TransformationStep("edge", (u, v)))

    def try_delete_vertex(self, v: int) -> bool:
        """Delete ``v`` if permitted; report whether it happened."""
        if v not in self.graph or not self._engine.deletable(v):
            return False
        self._engine.delete_vertex(v)
        self.steps.append(TransformationStep("vertex", (v,)))
        return True


def deletable_vertices(
    graph: NetworkGraph,
    tau: int,
    exclude: Optional[Set[int]] = None,
    engine: Optional[LocalTopologyEngine] = None,
) -> List[int]:
    """All vertices currently deletable under the tau-VPT rule."""
    exclude = exclude or set()
    return [
        v
        for v in sorted(graph.vertices())
        if v not in exclude and vertex_deletable(graph, v, tau, engine=engine)
    ]

"""Ground-truth boundary cycle extraction from the valid embedding.

The paper *assumes* every node knows whether it is a boundary node (located
in the periphery band) — an assumption shared by all existing
connectivity-based coverage methods — and finds boundaries with its
companion fine-grained recognition algorithm [13].  In the simulator we
have the embedding, so the boundary labelling is exact; this module also
constructs an explicit *outer boundary cycle* ``C_outer`` through the band,
which the cycle-partition criterion consumes.

Construction: order band nodes by their position along the deployment
region's perimeter, stitch consecutive ones with shortest paths inside the
band subgraph, splice the closed walk into a simple cycle, and verify with
the winding number that the cycle actually encloses the target area.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.network.deployment import Network
from repro.network.graph import NetworkGraph
from repro.network.node import Position


def winding_number(polygon: Sequence[Position], point: Position) -> float:
    """Winding number of a closed polygon around a point (in turns)."""
    total = 0.0
    px, py = point
    n = len(polygon)
    for i in range(n):
        ax, ay = polygon[i]
        bx, by = polygon[(i + 1) % n]
        angle_a = math.atan2(ay - py, ax - px)
        angle_b = math.atan2(by - py, bx - px)
        delta = angle_b - angle_a
        while delta > math.pi:
            delta -= 2 * math.pi
        while delta < -math.pi:
            delta += 2 * math.pi
        total += delta
    return total / (2 * math.pi)


def polygon_encloses(polygon: Sequence[Position], point: Position) -> bool:
    return abs(winding_number(polygon, point)) > 0.5


def _simplify_closed_walk(walk: Sequence[int]) -> List[int]:
    """Loop-erase a closed walk into a simple cycle.

    ``walk`` is closed (the edge from the last vertex back to the first is
    implicit).  Whenever a vertex repeats, the excursion since its first
    occurrence is spliced out.  Perimeter-ordered stitching only produces
    short back-tracking excursions, so loop erasure preserves the enclosing
    cycle; the winding-number check in the caller guards against the
    pathological case where a large loop is erased.
    """
    result: List[int] = []
    position: Dict[int, int] = {}
    for vertex in walk:
        seen_at = position.get(vertex)
        if seen_at is not None:
            for dropped in result[seen_at + 1:]:
                position.pop(dropped, None)
            del result[seen_at + 1:]
        else:
            position[vertex] = len(result)
            result.append(vertex)
    return result


def _extract_enclosing_cycle(
    walk: Sequence[int],
    positions: Dict[int, Position],
    probes: Sequence[Position],
) -> Optional[List[int]]:
    """Extract from a closed walk a simple cycle enclosing probe points.

    Outer-face walks legitimately repeat vertices (cut vertices; bridges
    are traversed twice).  Whenever a vertex repeats, the excursion since
    its first occurrence is itself a simple closed polygon: if it winds
    around a majority of the probe points it *is* the enclosing cycle,
    otherwise it is a spike or ear and is spliced out.  Several probes make
    the test robust to non-convex rims whose notches may contain any single
    reference point.
    """
    if not probes:
        return None

    def encloses_most(cycle: Sequence[int]) -> bool:
        polygon = [positions[v] for v in cycle]
        enclosed = sum(
            1 for p in probes if abs(winding_number(polygon, p)) > 0.5
        )
        return 2 * enclosed > len(probes)

    result: List[int] = []
    position: Dict[int, int] = {}
    for vertex in walk:
        seen_at = position.get(vertex)
        if seen_at is not None:
            excursion = result[seen_at:]
            if len(excursion) >= 3 and encloses_most(excursion):
                return excursion
            for dropped in result[seen_at + 1:]:
                position.pop(dropped, None)
            del result[seen_at + 1:]
        else:
            position[vertex] = len(result)
            result.append(vertex)
    if len(result) >= 3 and encloses_most(result):
        return result
    return None


def trace_outer_face(
    graph: NetworkGraph,
    positions: Dict[int, Position],
    probes: Optional[Sequence[Position]] = None,
) -> List[int]:
    """Trace the outer face of an embedded graph (right-hand rule).

    Starting from the bottom-most vertex, repeatedly take the next edge in
    clockwise rotational order after the reversed incoming edge.  For a
    planar drawing this walks the outer rim; the closed walk is then
    reduced to the simple cycle enclosing most of the ``probes`` (default:
    a deterministic sample of the node positions themselves).
    """
    if len(graph) < 3:
        raise RuntimeError("graph too small to have an outer face")
    start = min(graph.vertices(), key=lambda v: (positions[v][1], positions[v][0]))
    if not graph.neighbors(start):
        raise RuntimeError("outer-face start vertex is isolated")

    def angle(a: int, b: int) -> float:
        ax, ay = positions[a]
        bx, by = positions[b]
        return math.atan2(by - ay, bx - ax)

    # First step: pretend we arrived at the bottom-most vertex from due
    # south; the right-hand rule below then leaves along the most easterly
    # neighbour, starting a counter-clockwise walk of the outer rim.
    south = -math.pi / 2.0
    first = min(
        graph.neighbors(start),
        key=lambda w: ((angle(start, w) - south) % (2 * math.pi))
        or 2 * math.pi,
    )
    if probes is None:
        # A deterministic spread of actual node positions: unlike the
        # centroid these are guaranteed to lie in occupied space, not in a
        # notch of a non-convex rim.
        sample = sorted(graph.vertices())
        stride = max(1, len(sample) // 24)
        probes = [positions[v] for v in sample[::stride]]

    walk = [start]
    edge = (start, first)
    max_steps = 4 * graph.num_edges() + 8
    for __ in range(max_steps):
        u, v = edge
        walk.append(v)
        back = angle(v, u)
        # Next edge: smallest strictly-positive CCW rotation from the
        # reversed incoming edge keeps the exterior on the right.
        next_vertex = min(
            graph.neighbors(v),
            key=lambda w: ((angle(v, w) - back) % (2 * math.pi))
            or 2 * math.pi,
        )
        edge = (v, next_vertex)
        if edge == (start, first):
            cycle = _extract_enclosing_cycle(walk, positions, probes)
            if cycle is None:
                raise RuntimeError(
                    "outer-face walk closed without enclosing the network"
                )
            return cycle
    raise RuntimeError("outer-face trace did not close")


def planar_backbone(
    graph: NetworkGraph, positions: Dict[int, Position]
) -> NetworkGraph:
    """The planar subgraph: communication links that are Delaunay edges.

    Face tracing is only well-defined on planar drawings; crossing
    communication links make the raw graph's rotation system wander.  The
    Delaunay triangulation of the node positions is planar and spans every
    node, so its intersection with the communication graph is a planar
    spanning subgraph whose outer face hugs the deployment rim.
    """
    from scipy.spatial import Delaunay  # deferred: scipy is a dev extra

    ids = sorted(graph.vertices())
    if len(ids) < 3:
        raise RuntimeError("planar backbone needs at least three nodes")
    import numpy as np

    points = np.array([positions[v] for v in ids])
    triangulation = Delaunay(points)
    backbone = NetworkGraph(ids)
    for simplex in triangulation.simplices:
        a, b, c = (ids[int(i)] for i in simplex)
        for u, v in ((a, b), (a, c), (b, c)):
            if graph.has_edge(u, v):
                backbone.add_edge(u, v)
    return backbone


def outer_boundary_cycle(
    network: Network,
    max_rotations: int = 8,
) -> List[int]:
    """An outer boundary cycle through the periphery band.

    Returns the cycle as a vertex list (closing edge implicit).  The
    primary method traces the outer face of the planar Delaunay backbone of
    the embedding; if that fails the perimeter-ordered stitching fallback
    is tried.  Raises ``RuntimeError`` when no enclosing simple cycle
    exists — in practice only for deployments too sparse to contain a
    connected boundary band, which the paper's model excludes.
    """
    target_center = network.region.center
    try:
        backbone = planar_backbone(network.graph, network.positions)
        giant = max(backbone.connected_components(), key=len)
        backbone = backbone.induced_subgraph(giant)
        cycle = trace_outer_face(backbone, network.positions)
        if len(cycle) >= 3:
            polygon = [network.positions[v] for v in cycle]
            if polygon_encloses(polygon, target_center):
                return cycle
    except RuntimeError:
        pass

    band_nodes = sorted(network.boundary_nodes)
    if len(band_nodes) < 3:
        raise RuntimeError("periphery band has fewer than three nodes")
    band_graph = network.graph.induced_subgraph(band_nodes)
    components = band_graph.connected_components()
    band_component = max(components, key=len)
    band_graph = band_graph.induced_subgraph(band_component)

    region = network.region
    ordered = sorted(
        band_component,
        key=lambda v: region.perimeter_parameter(network.positions[v]),
    )

    for rotation in range(max_rotations):
        shift = (rotation * len(ordered)) // max_rotations
        sequence = ordered[shift:] + ordered[:shift]
        cycle = _stitch_cycle(band_graph, sequence)
        if cycle is None or len(cycle) < 3:
            continue
        polygon = [network.positions[v] for v in cycle]
        if polygon_encloses(polygon, target_center):
            return cycle
    raise RuntimeError("failed to stitch an enclosing outer boundary cycle")


def _stitch_cycle(
    band_graph: NetworkGraph, ordered: Sequence[int]
) -> Optional[List[int]]:
    """Join perimeter-ordered nodes with shortest paths into a simple cycle."""
    walk: List[int] = []
    n = len(ordered)
    for i in range(n):
        a, b = ordered[i], ordered[(i + 1) % n]
        path = band_graph.shortest_path(a, b)
        if path is None:
            return None
        walk.extend(path[:-1])
    cycle = _simplify_closed_walk(walk)
    if len(cycle) < 3:
        return None
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        if not band_graph.has_edge(a, b):
            return None
    return cycle


def enclosure_fraction(
    network: Network, cycle: Sequence[int], sample: int = 200, seed: int = 0
) -> float:
    """Fraction of internal nodes enclosed by the cycle (verification aid)."""
    polygon = [network.positions[v] for v in cycle]
    internal = sorted(network.internal_nodes)
    if not internal:
        return 1.0
    rng = random.Random(seed)
    if len(internal) > sample:
        internal = rng.sample(internal, sample)
    enclosed = sum(
        1
        for v in internal
        if polygon_encloses(polygon, network.positions[v])
    )
    return enclosed / len(internal)

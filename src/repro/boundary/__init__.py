"""Boundary recognition: geometric ground truth and a location-free heuristic."""

from repro.boundary.geometric import (
    enclosure_fraction,
    outer_boundary_cycle,
    polygon_encloses,
    winding_number,
)
from repro.boundary.topological import (
    boundary_agreement,
    boundary_candidates_by_neighborhood,
    detect_boundary_nodes,
    neighborhood_sizes,
)

__all__ = [
    "boundary_agreement",
    "boundary_candidates_by_neighborhood",
    "detect_boundary_nodes",
    "enclosure_fraction",
    "neighborhood_sizes",
    "outer_boundary_cycle",
    "polygon_encloses",
    "winding_number",
]

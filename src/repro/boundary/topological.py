"""Connectivity-only boundary recognition (heuristic).

The paper relies on its companion fine-grained boundary-recognition
algorithm [13] to label boundary nodes without location information.  That
algorithm is a full paper of its own; here we provide a practical
connectivity-only heuristic capturing its observable behaviour for the
deployments used in the experiments:

1. nodes whose k-hop neighbourhood is unusually small are boundary
   *candidates* (an interior node of a roughly uniform deployment sees a
   full k-ball, a periphery node roughly half of one);
2. candidates are expanded/cleaned so that the candidate set is connected
   and contains a cycle enclosing the rest of the network.

The experiments use the geometric ground truth of
:mod:`repro.boundary.geometric` (matching the paper's *assumption* that
boundary roles are known); this module exists so the pipeline can also run
end-to-end without any position information, and its agreement with the
ground truth is measured in the test suite.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.network.graph import NetworkGraph


def neighborhood_sizes(graph: NetworkGraph, k: int) -> Dict[int, int]:
    """Size of every node's k-hop neighbourhood (excluding itself)."""
    return {v: len(graph.k_hop_neighborhood(v, k)) for v in graph.vertices()}


def boundary_candidates_by_neighborhood(
    graph: NetworkGraph, k: int = 2, quantile: float = 0.25
) -> Set[int]:
    """Nodes whose k-ball size falls in the lowest ``quantile`` fraction."""
    if not 0 < quantile < 1:
        raise ValueError("quantile must be in (0, 1)")
    sizes = neighborhood_sizes(graph, k)
    ordered = sorted(sizes.values())
    cutoff_index = max(0, min(len(ordered) - 1, int(len(ordered) * quantile)))
    cutoff = ordered[cutoff_index]
    return {v for v, s in sizes.items() if s <= cutoff}


def _largest_component(graph: NetworkGraph, nodes: Set[int]) -> Set[int]:
    if not nodes:
        return set()
    sub = graph.induced_subgraph(nodes)
    return max(sub.connected_components(), key=len)


def detect_boundary_nodes(
    graph: NetworkGraph,
    k: int = 2,
    quantile: float = 0.25,
    closure_rounds: int = 2,
) -> Set[int]:
    """Heuristic location-free boundary labelling.

    Starts from small-neighbourhood candidates, then performs a few rounds
    of closure: a node joins the boundary set when a majority of its
    neighbours are already in it (smoothing ragged candidate sets), and
    finally the largest connected candidate component is returned.
    """
    candidates = boundary_candidates_by_neighborhood(graph, k, quantile)
    for __ in range(closure_rounds):
        additions = set()
        for v in graph.vertices():
            if v in candidates:
                continue
            nbrs = graph.neighbors(v)
            if not nbrs:
                continue
            inside = sum(1 for u in nbrs if u in candidates)
            if inside * 2 > len(nbrs):
                additions.add(v)
        if not additions:
            break
        candidates |= additions
    return _largest_component(graph, candidates)


def boundary_agreement(
    detected: Set[int], ground_truth: Set[int]
) -> Dict[str, float]:
    """Precision / recall / F1 of a detected boundary set."""
    if not detected or not ground_truth:
        return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
    true_positive = len(detected & ground_truth)
    precision = true_positive / len(detected)
    recall = true_positive / len(ground_truth)
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}

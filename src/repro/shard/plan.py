"""Deterministic region partitioning of a deployment into shards.

A :class:`ShardPlan` splits the vertex set into disjoint *owned* regions
(seeded multi-source BFS growth, so regions are hop-ball shaped and
contiguous wherever the graph is) and surrounds each region with a
⌈τ/2⌉-hop *halo band* — exactly the radius
:func:`repro.topology.neighborhood_radius` gives the deletability test
and the MIS separation probe.  That radius is what makes sharding sound:

* Any path of length <= k from an owned vertex stays inside
  owned ∪ halo, so a shard's partition graph answers k-balls and
  punctured-neighbourhood verdicts for its owned vertices *exactly* as
  the global graph would.
* Deletions only lengthen distances, so the halo computed on the
  *initial* graph remains sufficient for every later round.
* A winner that blocks one of the shard's owned candidates is at hop
  distance <= k, hence inside the halo band — cross-shard agreement
  needs only boundary-band traffic (see :mod:`repro.shard.halo`).

Everything here is coordinator-side, deterministic and seed-driven: the
same ``(graph, tau, shards, seed)`` always yields the same plan, and the
*schedule* computed over any plan is identical to the unsharded one, so
the partition seed never leaks into results.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.topology import halo_radius


@dataclass(frozen=True)
class ShardSpec:
    """One shard's static membership: owned region plus halo band.

    ``owned`` and ``halo`` are disjoint, sorted tuples.  ``boundary`` is
    the subset of ``owned`` that appears in *some other* shard's halo —
    the only vertices whose verdicts and MIS statuses ever need to leave
    this shard.
    """

    index: int
    owned: Tuple[int, ...]
    halo: Tuple[int, ...]
    boundary: Tuple[int, ...]

    @property
    def members(self) -> Tuple[int, ...]:
        """Owned first, then halo — the partition's insertion order.

        The CSR mirror re-sorts ids into slots, so owned/halo *slots*
        are rank-derived sets (see ``LocalShard.owned_slots``), not
        contiguous ranges; the insertion order here only fixes the
        partition graph's deterministic ``vertices()`` order.
        """
        return self.owned + self.halo


@dataclass
class ShardPlan:
    """The full partition: specs plus the cross-shard routing tables."""

    tau: int
    halo_radius: int
    seed: int
    specs: Tuple[ShardSpec, ...]
    #: vertex -> owning shard index (a total map over the graph).
    owner: Dict[int, int]
    #: vertex -> sorted shard indices holding it in their halo band.
    subscribers: Dict[int, Tuple[int, ...]]

    @property
    def shard_count(self) -> int:
        return len(self.specs)

    def signature(self) -> Tuple:
        """A hashable fingerprint for determinism assertions."""
        return (
            self.tau,
            self.halo_radius,
            self.seed,
            tuple((s.owned, s.halo) for s in self.specs),
        )

    def member_sets(self) -> List[Set[int]]:
        """Per-shard ``owned ∪ halo`` membership sets, by shard index."""
        return [set(spec.members) for spec in self.specs]


def partition_parts(
    graph: NetworkGraph, spec: ShardSpec
) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...], Tuple]:
    """A shard's partition as plain tuples (no object graph).

    ``(owned, halo, boundary, induced edges sorted)`` — the in-process
    transport: the inline backend hands this straight to
    :class:`~repro.shard.runtime.LocalShard`, and the pickled and
    shared-memory transports both derive from it.
    """
    members = set(spec.members)
    edges: List[Tuple[int, int]] = []
    for u in spec.members:
        for v in sorted(graph.neighbors(u)):
            if u < v and v in members:
                edges.append((u, v))
    edges.sort()
    return (spec.owned, spec.halo, spec.boundary, tuple(edges))


def partition_blob(graph: NetworkGraph, spec: ShardSpec) -> bytes:
    """:func:`partition_parts`, pickled (the cross-process byte blob)."""
    return pickle.dumps(
        partition_parts(graph, spec), protocol=pickle.HIGHEST_PROTOCOL
    )


def _farthest_seeds(
    graph: NetworkGraph, vertices: Sequence[int], count: int, seed: int
) -> List[int]:
    """Greedy farthest-point seeds under hop distance (deterministic).

    The first seed is drawn with ``random.Random(seed)``; each next seed
    maximises the hop distance to the chosen set (unreachable vertices
    count as infinitely far), ties broken by smallest vertex id.
    """
    rng = random.Random(seed)
    seeds = [vertices[rng.randrange(len(vertices))]]
    while len(seeds) < count:
        # Coordinator-side farthest-point seeding is a whole-graph
        # planning sweep, not a verdict ball; the unbounded BFS is
        # intentional and runs once per plan.
        # repro: allow[radius-unproven]
        dist = _multi_source_distances(graph, seeds, cutoff=None)
        best: Optional[int] = None
        best_dist = -1
        for v in vertices:
            d = dist.get(v)
            d = len(vertices) + 1 if d is None else d  # unreachable wins
            if d > best_dist:
                best, best_dist = v, d
        if best is None or best_dist == 0:
            break  # fewer distinct positions than requested shards
        seeds.append(best)
    return seeds


def _multi_source_distances(
    graph: NetworkGraph, sources: Sequence[int], cutoff: Optional[int]
) -> Dict[int, int]:
    """BFS hop distances from a source set, layer-deterministic."""
    dist: Dict[int, int] = {}
    frontier: List[int] = []
    for s in sources:
        if s not in dist:
            dist[s] = 0
            frontier.append(s)
    depth = 0
    while frontier and (cutoff is None or depth < cutoff):
        depth += 1
        next_frontier: List[int] = []
        for u in frontier:
            for v in sorted(graph.neighbors(u)):
                if v not in dist:
                    dist[v] = depth
                    next_frontier.append(v)
        frontier = next_frontier
    return dist


def build_shard_plan(
    graph: NetworkGraph, tau: int, shards: int, seed: int = 0
) -> ShardPlan:
    """Partition ``graph`` into ``shards`` regions with ⌈τ/2⌉-hop halos.

    Regions grow layer-by-layer from greedy farthest-point seeds placed
    in the largest connected component, smallest region first (vertices
    visited in sorted-neighbour order), so region assignment is a pure
    function of ``(graph, tau, shards, seed)`` and sizes stay
    near-balanced.  Vertices unreachable from every seed (disconnected
    remainders) are assigned round-robin in sorted order.  The schedule computed over a plan is identical to
    the unsharded schedule, so the choice of ``seed`` only shapes load
    balance, never results.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    vertices = sorted(graph.vertices())
    if not vertices:
        raise ValueError("cannot shard an empty graph")
    k = halo_radius(tau)
    shards = min(shards, len(vertices))

    # Seed inside the largest component only: under "unreachable wins"
    # farthest-point selection a deployment's stray two-node islands
    # would each capture a whole shard (observed at 10k nodes: owned
    # sizes [7299, 2, 1, 2698]).  Island vertices still get owners via
    # the round-robin leftover pass below.
    giant = max(
        graph.connected_components(), key=lambda comp: (len(comp), -min(comp))
    )
    pool = sorted(giant)
    shards = min(shards, len(pool))
    seeds = _farthest_seeds(graph, pool, shards, seed)
    shards = len(seeds)
    owner: Dict[int, int] = {}
    frontiers: List[List[int]] = []
    sizes: List[int] = []
    for index, s in enumerate(seeds):
        owner[s] = index
        frontiers.append([s])
        sizes.append(1)
    # Size-balanced growth: each step the smallest live region (ties:
    # lowest shard index — a fixed, documented tie-break) claims one BFS
    # layer.  Plain hop-Voronoi growth lets a central seed dominate
    # (observed at 10k nodes: owned sizes [6409, 1238, 1180, 1173]);
    # growing the laggard first keeps regions near-equal wherever the
    # graph allows while still claiming every vertex exactly once.
    while True:
        live = [index for index in range(shards) if frontiers[index]]
        if not live:
            break
        index = min(live, key=lambda i: (sizes[i], i))
        next_frontier: List[int] = []
        for u in frontiers[index]:
            for v in sorted(graph.neighbors(u)):
                if v not in owner:
                    owner[v] = index
                    next_frontier.append(v)
        sizes[index] += len(next_frontier)
        frontiers[index] = next_frontier
    leftovers = [v for v in vertices if v not in owner]
    for position, v in enumerate(leftovers):
        owner[v] = position % shards

    owned_lists: List[List[int]] = [[] for _ in range(shards)]
    for v in vertices:
        owned_lists[owner[v]].append(v)

    halos: List[Tuple[int, ...]] = []
    subscribers: Dict[int, List[int]] = {}
    for index in range(shards):
        dist = _multi_source_distances(graph, owned_lists[index], cutoff=k)
        halo = tuple(
            sorted(v for v in dist if owner[v] != index)
        )
        halos.append(halo)
        for v in halo:
            subscribers.setdefault(v, []).append(index)
    # The loop above appends per-halo in shard index order already, but
    # rebuild defensively so the routing table is sorted and duplicate
    # free no matter how halos were produced.
    subscriber_map: Dict[int, Tuple[int, ...]] = {
        v: tuple(sorted(set(indices))) for v, indices in subscribers.items()
    }

    specs: List[ShardSpec] = []
    for index in range(shards):
        owned = tuple(owned_lists[index])
        boundary = tuple(v for v in owned if v in subscriber_map)
        specs.append(
            ShardSpec(
                index=index, owned=owned, halo=halos[index], boundary=boundary
            )
        )
    return ShardPlan(
        tau=tau,
        halo_radius=k,
        seed=seed,
        specs=tuple(specs),
        owner=owner,
        subscribers=subscriber_map,
    )

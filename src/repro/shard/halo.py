"""Round-synchronous halo exchange between shards.

The coordinator is the only party that knows the routing tables; shards
never see the plan (that discipline is linted by REPRO113).  Everything
a shard learns about the outside world arrives as *rows* — plain
``(vertex, payload)`` tuples — and only for vertices inside its halo
band:

* **priority rows** at round start (the global MIS priority draw,
  restricted to the shard's halo candidates),
* **verdict rows** after the eager deletability pass (a halo
  candidate's verdict is computed once, by its owner, and shipped),
* **status rows** after each MIS sub-round (boundary-band WINNER /
  LOSER decisions), and
* **deletion rows** after the round's batch commits (halo members
  deleted by their owners).

:class:`HaloExchange` routes owner-exported rows to subscriber shards
and accounts for the traffic — rows and (pickled) bytes per round —
which is the number the scaling story is about: interior state never
crosses a shard boundary, so traffic is proportional to the boundary
band, not the deployment.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Iterable, List, Tuple


class HaloExchange:
    """Route boundary-band rows between shards and meter the traffic."""

    def __init__(self, subscribers: Dict[int, Tuple[int, ...]]) -> None:
        self._subscribers = subscribers
        self.rows_total = 0
        self.bytes_total = 0
        self.rows_per_round: List[int] = []
        self.bytes_per_round: List[int] = []
        self._round_rows = 0
        self._round_bytes = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(
        self, exported: Dict[int, List[Tuple[int, Any]]]
    ) -> Dict[int, List[Tuple[int, Any]]]:
        """Fan owner-exported rows out to each vertex's subscribers.

        ``exported`` maps source shard -> rows for its boundary-band
        vertices.  Delivery order is deterministic: sources ascending,
        rows in export order.  A vertex's owner never receives its own
        row back.
        """
        deliveries: Dict[int, List[Tuple[int, Any]]] = {}
        for source in sorted(exported):
            for row in exported[source]:
                for target in self._subscribers.get(row[0], ()):
                    if target != source:
                        deliveries.setdefault(target, []).append(row)
        self._account(deliveries)
        return deliveries

    def route_deletions(self, batch: Iterable[int]) -> Dict[int, List[int]]:
        """Subscriber deliveries for a committed deletion batch.

        Owners apply their own deletions locally (not halo traffic);
        every subscriber holding the vertex in its halo gets a row.
        """
        deliveries: Dict[int, List[int]] = {}
        for v in batch:
            for target in self._subscribers.get(v, ()):
                deliveries.setdefault(target, []).append(v)
        self._account(deliveries)
        return deliveries

    def account_broadcast(
        self, rows_by_shard: Dict[int, List[Tuple[int, Any]]]
    ) -> None:
        """Meter coordinator-to-shard halo rows (the priority band)."""
        self._account(rows_by_shard)

    def _account(self, deliveries: Dict[int, List[Any]]) -> None:
        for target in sorted(deliveries):
            rows = deliveries[target]
            if not rows:
                continue
            self._round_rows += len(rows)
            self._round_bytes += len(
                pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
            )

    # ------------------------------------------------------------------
    # Round accounting
    # ------------------------------------------------------------------
    def round_meter(self) -> Tuple[int, int]:
        """The open round's ``(rows, bytes)`` so far.

        Reading the meter before and after one routing call yields that
        call's traffic delta — how the coordinator's ``halo.route`` spans
        get their ``rows``/``bytes`` attributes without a second
        accounting pass.
        """
        return self._round_rows, self._round_bytes

    def end_round(self) -> Tuple[int, int]:
        """Close the current round's meter; returns ``(rows, bytes)``."""
        rows, nbytes = self._round_rows, self._round_bytes
        self.rows_per_round.append(rows)
        self.bytes_per_round.append(nbytes)
        self.rows_total += rows
        self.bytes_total += nbytes
        self._round_rows = 0
        self._round_bytes = 0
        return rows, nbytes

"""Round-synchronous sharded DCC scheduling.

The coordinator here reproduces :func:`repro.core.scheduler.dcc_schedule`'s
parallel mode *exactly* — same priority draw (one ``rng.shuffle`` per
round over the same candidate order), same winner set, same deletion
order — but computes every verdict and every MIS decision inside region
shards that communicate only boundary-band rows:

1. **Priority broadcast.**  The global draw is restricted per shard to
   its owned candidates and its halo candidates and shipped as rows.
2. **MIS sub-rounds.**  Shards run the wave formulation of the greedy
   MIS (see :mod:`repro.shard.runtime`) with a status barrier per
   sub-round: each wave decides the candidates whose smaller-priority
   competitors are settled, testing deletability only for owned
   candidates whose verdict is due — a boundary candidate is tested by
   exactly one shard, and boundary-band WINNER/LOSER rows are routed by
   the :class:`~repro.shard.halo.HaloExchange` to subscribers.  The
   fixpoint is the greedy outcome, by induction over the priority
   order.
3. **Batch commit.**  Winners are merged and sorted by global priority —
   exactly the serial append order — deleted from the coordinator's
   graph, and shipped to owners and halo subscribers.

Determinism rules for the cross-shard merges (DESIGN.md section 9):
rows route sources-ascending, shards merge by index, winners sort by
the round's priority draw, and end-of-run counters/spans merge in shard
index order.  Nothing anywhere consumes ``rng`` besides the per-round
shuffle, so sharded and unsharded runs consume the stream identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.obs.tracer import current_metrics, current_tracer
from repro.shard.halo import HaloExchange
from repro.shard.plan import ShardPlan, build_shard_plan, partition_parts
from repro.topology import TopologyCounters


@dataclass
class ShardStats:
    """Per-run sharding account, attached to ``ScheduleResult.shard_stats``."""

    shard_count: int
    halo_radius: int
    plan_seed: int
    workers: int
    owned_sizes: List[int] = field(default_factory=list)
    halo_sizes: List[int] = field(default_factory=list)
    halo_rows_total: int = 0
    halo_bytes_total: int = 0
    halo_rows_per_round: List[int] = field(default_factory=list)
    halo_bytes_per_round: List[int] = field(default_factory=list)
    subrounds_per_round: List[int] = field(default_factory=list)


def _route_traced(tracer, exchange, round_no: int, kind: str, call):
    """Run one exchange call under a ``halo.route`` span.

    The span carries the call's rows/bytes delta read off the exchange's
    round meter — the numbers the attribution analysis and the timeline
    overlay consume.  With tracing disabled the call runs bare.
    """
    if not tracer.enabled:
        return call()
    rows0, bytes0 = exchange.round_meter()
    with tracer.trace("halo.route", round=round_no, kind=kind) as handle:
        out = call()
        rows1, bytes1 = exchange.round_meter()
        handle.set(rows=rows1 - rows0, bytes=bytes1 - bytes0)
    return out


class _InlineBackend:
    """All shards hosted in this process (``workers=1``)."""

    def __init__(
        self, sources: List[Any], tau: int, capture: bool
    ) -> None:
        from repro.shard.runtime import LocalShard

        self._shards = [
            LocalShard(index, tau, source, capture=capture)
            for index, source in enumerate(sources)
        ]

    def begin_round(
        self,
        batches: Dict[int, List[int]],
        owned_rows: List[list],
        halo_rows: List[list],
    ) -> Dict[int, Tuple[list, list, int]]:
        for s in self._shards:
            batch = batches.get(s.index)
            if batch:
                s.apply_deletions(batch)
            s.begin_round(owned_rows[s.index], halo_rows[s.index])
        return {s.index: s.mis_subround() for s in self._shards}

    def mis_subround(
        self, deliveries: Dict[int, list]
    ) -> Dict[int, Tuple[list, list, int]]:
        for s in self._shards:
            rows = deliveries.get(s.index)
            if rows:
                s.apply_status(rows)
        return {s.index: s.mis_subround() for s in self._shards}

    def finish(self) -> Dict[int, Tuple[dict, object]]:
        return {
            s.index: (s.counters_snapshot(), s.spans_payload())
            for s in self._shards
        }

    def close(self) -> None:
        pass


def sharded_dcc_schedule(
    graph: NetworkGraph,
    protected: Iterable[int],
    tau: int,
    rng: random.Random,
    shards: int,
    workers: int = 1,
    tracer=None,
    metrics=None,
    plan_seed: int = 0,
    plan: Optional[ShardPlan] = None,
):
    """Parallel-mode DCC scheduling over region shards.

    Returns the same :class:`~repro.core.scheduler.ScheduleResult` the
    unsharded scheduler would produce for the same ``(graph, protected,
    tau, rng)`` — vertex-identical ``removed`` order, rounds and active
    set — with :class:`ShardStats` attached.  ``workers=1`` hosts every
    shard in-process; ``workers>1`` (or ``0`` for auto) hosts them in
    persistent worker processes via
    :class:`~repro.parallel.runner.ShardWorkerPool`.  ``plan`` overrides
    the partition (for tests); otherwise one is built from
    ``(graph, tau, shards, plan_seed)``.
    """
    from repro.core.scheduler import ScheduleResult
    from repro.parallel.runner import (
        ShardWorkerPool,
        chunk_evenly,
        current_chaos,
        resolve_workers,
    )

    tracer = tracer if tracer is not None else current_tracer()
    metrics = metrics if metrics is not None else current_metrics()
    if plan is None:
        plan = build_shard_plan(graph, tau, shards, seed=plan_seed)
    elif plan.tau != tau:
        raise ValueError("shard plan was built for a different tau")
    work = graph.copy()
    protected_set = set(protected)
    missing = protected_set - work.vertex_set()
    if missing:
        raise KeyError(f"protected nodes not in graph: {sorted(missing)[:5]}")

    capture = tracer.enabled
    pool_size = min(resolve_workers(workers), plan.shard_count)
    if pool_size > 1:
        # The pool picks the cross-process transport (shared-memory CSR
        # segments under REPRO_SHM, pickled parts otherwise) and owns
        # any published segments until close().
        backend = ShardWorkerPool(
            graph, plan.specs, tau, pool_size, capture=capture
        )
    else:
        backend = _InlineBackend(
            [partition_parts(graph, spec) for spec in plan.specs],
            tau,
            capture,
        )
    exchange = HaloExchange(plan.subscribers)
    if capture:
        # Zero-wall marker span recording the shard-to-worker assignment
        # (contiguous by index, the pool's own chunking) — the attribution
        # analysis reconstructs per-worker critical paths from it.
        assignment = [
            list(chunk)
            for chunk in chunk_evenly(list(range(plan.shard_count)), pool_size)
        ]
        tracer.add_span(
            "shard.config",
            0.0,
            shards=plan.shard_count,
            workers=pool_size,
            assignment=assignment,
        )
    member_sets = plan.member_sets()
    owner = plan.owner
    subscribers = plan.subscribers
    stats = ShardStats(
        shard_count=plan.shard_count,
        halo_radius=plan.halo_radius,
        plan_seed=plan.seed,
        workers=pool_size,
        owned_sizes=[len(spec.owned) for spec in plan.specs],
        halo_sizes=[len(spec.halo) for spec in plan.specs],
    )

    removed: List[int] = []
    deletions_per_round: List[int] = []
    round_no = 0
    pending: Dict[int, List[int]] = {}
    try:
        while True:
            round_start = perf_counter()
            with tracer.trace("scheduler.round", round=round_no, mode="sharded"):
                with tracer.trace(
                    "scheduler.candidates", round=round_no
                ) as discovery:
                    order = [
                        v for v in work.vertices() if v not in protected_set
                    ]
                    rng.shuffle(order)
                    discovery.set(candidates=len(order))
                    prio = {v: position for position, v in enumerate(order)}
                    owned_rows: List[list] = [
                        [] for __ in range(plan.shard_count)
                    ]
                    halo_rows: List[list] = [
                        [] for __ in range(plan.shard_count)
                    ]
                    for v in order:
                        row = (v, prio[v])
                        owned_rows[owner[v]].append(row)
                        for target in subscribers.get(v, ()):
                            halo_rows[target].append(row)
                    _route_traced(
                        tracer,
                        exchange,
                        round_no,
                        "priority",
                        lambda: exchange.account_broadcast(
                            {
                                index: rows
                                for index, rows in enumerate(halo_rows)
                                if rows
                            }
                        ),
                    )
                    # The previous round's committed deletions ride the
                    # begin message (one roundtrip instead of two), and
                    # the reply already carries the first sub-round.
                    # The barrier span times the coordinator-side wait on
                    # the backend; subtracting the shards' own busy spans
                    # from it is what isolates barrier wait.
                    with tracer.trace(
                        "shard.barrier", round=round_no, subround=0
                    ):
                        results = backend.begin_round(
                            pending, owned_rows, halo_rows
                        )
                    pending = {}
                with tracer.trace(
                    "scheduler.mis_draw", round=round_no
                ) as draw:
                    winners: List[int] = []
                    subrounds = 0
                    while True:
                        subrounds += 1
                        statuses: Dict[int, list] = {}
                        undecided_total = 0
                        for index in sorted(results):
                            won, exported_rows, undecided = results[index]
                            winners.extend(won)
                            if exported_rows:
                                statuses[index] = exported_rows
                            undecided_total += undecided
                        if undecided_total == 0:
                            break
                        chaos = current_chaos()
                        if chaos is not None and statuses:
                            # Adversarial insertion order into the
                            # exchange: route() sorts sources ascending,
                            # so deliveries must not depend on it.
                            statuses = {
                                index: statuses[index]
                                for index in chaos.permuted(statuses)
                            }
                        # Foreign statuses piggyback on the next request:
                        # one roundtrip per barrier instead of two.
                        deliveries = _route_traced(
                            tracer,
                            exchange,
                            round_no,
                            "status",
                            lambda rows=statuses: exchange.route(rows),
                        )
                        with tracer.trace(
                            "shard.barrier",
                            round=round_no,
                            subround=subrounds,
                        ):
                            results = backend.mis_subround(deliveries)
                    batch = sorted(winners, key=prio.__getitem__)
                    draw.set(winners=len(batch), subrounds=subrounds)
                stats.subrounds_per_round.append(subrounds)
                if not batch:
                    exchange.end_round()
                    break
                with tracer.trace(
                    "scheduler.deletion", round=round_no, deletions=len(batch)
                ):
                    for v in batch:
                        work.remove_vertex(v)
                        removed.append(v)
                    _route_traced(
                        tracer,
                        exchange,
                        round_no,
                        "deletion",
                        lambda rows=batch: exchange.route_deletions(rows),
                    )
                    pending = {
                        index: [v for v in batch if v in member_sets[index]]
                        for index in range(plan.shard_count)
                    }
                deletions_per_round.append(len(batch))
            rows, nbytes = exchange.end_round()
            if metrics is not None:
                metrics.observe(
                    "scheduler.round_wall_s",
                    perf_counter() - round_start,
                    volatile=True,
                )
                metrics.observe("scheduler.deletions_per_round", len(batch))
                metrics.observe("scheduler.mis_size", len(batch))
                metrics.inc("shard.halo_rows", rows)
                metrics.inc("shard.halo_bytes", nbytes)
                metrics.observe("shard.subrounds", subrounds)
            round_no += 1
        accounts = backend.finish()
    finally:
        backend.close()

    counters = TopologyCounters()
    for index in sorted(accounts):
        snapshot, spans_payload = accounts[index]
        counters.merge(TopologyCounters(**snapshot))
        if spans_payload is not None:
            # v2 payloads align on the exporter's epoch: the shard's
            # spans land at their true positions on the coordinator
            # timeline (tagged proc=shardN), not at merge time; the
            # merge span itself times only the import.
            with tracer.trace("shard.merge", shard=index):
                tracer.import_spans(spans_payload)

    stats.halo_rows_total = exchange.rows_total
    stats.halo_bytes_total = exchange.bytes_total
    stats.halo_rows_per_round = list(exchange.rows_per_round)
    stats.halo_bytes_per_round = list(exchange.bytes_per_round)

    if metrics is not None:
        metrics.inc("scheduler.runs")
        metrics.inc("scheduler.rounds", len(deletions_per_round))
        metrics.inc("scheduler.deletions", len(removed))
        metrics.set_gauge("shard.count", plan.shard_count)
        metrics.absorb_topology(counters)

    return ScheduleResult(
        active=work,
        removed=removed,
        tau=tau,
        rounds=len(deletions_per_round),
        deletions_per_round=deletions_per_round,
        deletability_tests=counters.deletability_tests,
        counters=counters,
        shard_stats=stats,
    )

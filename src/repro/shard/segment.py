"""Shard-side attachment of shared partition segments.

The coordinator publishes each shard's partition as one
:mod:`multiprocessing.shared_memory` segment of named ``int64`` blocks
(see :mod:`repro.parallel.shm` for the publish side, the layout, and
the lifecycle contract).  This module is the *consumer* half, and it is
deliberately the only shared-memory code a shard may import: attaching
a segment hands the shard exactly its own owned/halo membership and
induced CSR adjacency — the same bytes a pickled partition blob would
carry — never a path back to coordinator-scope state, so the REPRO113
locality lint stays satisfiable.

Attachment maps ``/dev/shm/<name>`` directly with :mod:`mmap` where
available: on CPython < 3.13,
:class:`~multiprocessing.shared_memory.SharedMemory` registers *every*
attachment with the per-process ``resource_tracker``, which then
unlinks segments still in use when the first worker exits.  The mmap
path never touches the tracker; the ``SharedMemory`` attach is kept as
a fallback for hosts without a ``/dev/shm`` tmpfs.  Workers copy what
they need into private engine state and unmap immediately — every
numpy view on the mapping must be dropped before the buffer closes
(``mmap`` refuses to close with exported pointers), which is why the
copy-then-unmap order lives in :func:`attach_partition` rather than at
each call site.
"""

from __future__ import annotations

import mmap
import os
from typing import Dict, Tuple

try:  # pragma: no cover - exercised by the import-time environment
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - stdlib, but guard exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

#: ``(segment name, ((field, offset items, length items), ...))`` —
#: everything a worker needs to attach, small enough to ride any pipe.
ShmDescriptor = Tuple[str, Tuple[Tuple[str, int, int], ...]]


class ShmSource:
    """Tagged descriptor: 'build your partition from this segment'.

    A tiny picklable wrapper so receivers can distinguish a
    shared-memory source from a pickled-parts source by type alone.
    """

    __slots__ = ("descriptor",)

    def __init__(self, descriptor: ShmDescriptor) -> None:
        self.descriptor = descriptor

    def __getstate__(self):
        return self.descriptor

    def __setstate__(self, state):
        self.descriptor = state


class Attachment:
    """A worker's read-only view of a segment (close after copying)."""

    def __init__(self, buffer, closer) -> None:
        self.buffer = buffer
        self._closer = closer

    def close(self) -> None:
        closer, self._closer = self._closer, None
        if closer is not None:
            closer()


def _map_readonly(name: str, nbytes: int) -> Attachment:
    """Map a segment read-only without the resource tracker.

    Prefers a direct ``mmap`` of ``/dev/shm/<name>`` (Linux tmpfs);
    falls back to a ``SharedMemory`` attach elsewhere — acceptable for
    the fallback because non-Linux hosts are not the perf target and
    the coordinator outlives its workers in every pool here.
    """
    path = f"/dev/shm/{name.lstrip('/')}"
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        segment = shared_memory.SharedMemory(name=name)
        return Attachment(segment.buf, segment.close)
    try:
        mapped = mmap.mmap(fd, nbytes, access=mmap.ACCESS_READ)
    finally:
        os.close(fd)
    return Attachment(mapped, mapped.close)


def attach_blocks(
    descriptor: ShmDescriptor,
) -> Tuple[Dict[str, "np.ndarray"], Attachment]:
    """Attach a published segment and slice out its named blocks.

    Returns ``(blocks, attachment)``: read-only ``int64`` views keyed by
    field name, plus the attachment keeping them alive — close it once
    the data has been copied into private structures (the views die with
    it).
    """
    name, layout = descriptor
    total = sum(length for __, __, length in layout)
    attachment = _map_readonly(name, max(total, 1) * 8)
    base = np.frombuffer(attachment.buffer, dtype=np.int64, count=total)
    blocks = {
        field: base[offset : offset + length]
        for field, offset, length in layout
    }
    return blocks, attachment


def graph_from_csr(ids, indptr, indices):
    """Rebuild a :class:`NetworkGraph` from CSR blocks (upper triangle)."""
    from repro.network.graph import NetworkGraph

    ids = [int(v) for v in ids]
    graph = NetworkGraph(ids)
    bounds = [int(i) for i in indptr]
    flat = [int(j) for j in indices]
    for slot, u in enumerate(ids):
        for j in flat[bounds[slot] : bounds[slot + 1]]:
            if slot < j:
                graph.add_edge(u, ids[j])
    return graph


def partition_from_blocks(blocks: Dict[str, "np.ndarray"]):
    """``(owned, halo, boundary, partition graph)`` from attached blocks."""
    owned = tuple(int(v) for v in blocks["owned"])
    halo = tuple(int(v) for v in blocks["halo"])
    boundary = tuple(int(v) for v in blocks["boundary"])
    ids = sorted(owned + halo)
    graph = graph_from_csr(ids, blocks["indptr"], blocks["indices"])
    return owned, halo, boundary, graph


def attach_partition(descriptor: ShmDescriptor):
    """Attach, copy out a partition, and unmap — the worker-side dance.

    Returns ``(owned, halo, boundary, partition graph)`` built from
    private copies; no view on the mapping survives the call.
    """
    blocks, attachment = attach_blocks(descriptor)
    try:
        return partition_from_blocks(blocks)
    finally:
        del blocks
        attachment.close()

"""Shard-local state: one partition engine plus MIS round bookkeeping.

This module is the *local* side of the shard abstraction, the analogue
of a per-region process on real hardware.  A :class:`LocalShard` is
constructed from a partition blob (its own owned/halo membership and
induced edges — never the plan or the global graph) and afterwards
communicates exclusively through rows handed to / returned from its
methods.  The REPRO113 lint rule enforces that discipline statically
(no reads of coordinator-scope state), and the partition engine's
``owned`` guard enforces the verdict half dynamically: asking for a
deletability verdict outside the owned region raises
:class:`~repro.topology.OwnedRegionError`.

The MIS the shards compute together is the *local-minimum fixpoint*
formulation of the scheduler's greedy draw: a candidate wins once every
smaller-priority competitor within the separation radius has lost, and
loses once any such competitor has won.  Decisions are taken against a
snapshot per sub-round and applied at the barrier, so the fixpoint —
and therefore the deletion schedule — is vertex-identical to the
unsharded engine's at the same priority draw.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Sequence, Tuple

from repro.network.graph import NetworkGraph
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.topology import LocalTopologyEngine

#: MIS statuses; plain ints so status rows pickle small.
UNDECIDED, WINNER, LOSER = 0, 1, 2

StatusRow = Tuple[int, int]  # (vertex, status)
VerdictRow = Tuple[int, bool]  # (vertex, deletable)
PriorityRow = Tuple[int, int]  # (vertex, priority index)


class LocalShard:
    """One shard's partition engine and per-round MIS state."""

    def __init__(
        self, index: int, tau: int, blob: bytes, capture: bool = False
    ) -> None:
        owned, halo, boundary, edges = pickle.loads(blob)
        partition = NetworkGraph(owned + halo)
        for u, v in edges:
            partition.add_edge(u, v)
        self.index = index
        self.owned = tuple(owned)
        self.halo = tuple(halo)
        # The CSR mirror assigns slots in sorted-id order, so owned and
        # halo slots interleave; expose them as rank-derived sets.
        rank = {v: i for i, v in enumerate(sorted(owned + halo))}
        self.owned_slots = frozenset(rank[v] for v in owned)
        self.halo_slots = frozenset(rank[v] for v in halo)
        self._boundary = frozenset(boundary)
        self.tracer = Tracer() if capture else NULL_TRACER
        self.engine = LocalTopologyEngine(
            partition,
            tau,
            owned=frozenset(owned),
            tracer=self.tracer if capture else None,
        )
        self._radius = self.engine.radius
        self._prio: Dict[int, int] = {}
        self._status: Dict[int, int] = {}
        self._undecided: List[int] = []
        self._competitors: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Round protocol (driven by the coordinator / worker loop)
    # ------------------------------------------------------------------
    def begin_round(
        self,
        owned_rows: Sequence[PriorityRow],
        halo_rows: Sequence[PriorityRow],
    ) -> List[VerdictRow]:
        """Start a round: eager verdicts for the owned candidates.

        ``owned_rows`` / ``halo_rows`` carry the global priority draw
        restricted to this shard's candidates (owned region and halo
        band).  Returns the boundary-band verdict rows to export; the
        interior verdicts never leave the shard.
        """
        self._prio = {}
        self._status = {}
        self._undecided = []
        self._competitors = {}
        for v, priority in halo_rows:
            self._prio[v] = priority
        exported: List[VerdictRow] = []
        with self.tracer.trace(
            "shard.verdicts", shard=self.index, candidates=len(owned_rows)
        ):
            for v, priority in owned_rows:
                self._prio[v] = priority
                verdict = self.engine.deletable(v)
                if verdict:
                    self._status[v] = UNDECIDED
                    self._undecided.append(v)
                if v in self._boundary:
                    exported.append((v, verdict))
        return exported

    def absorb_verdicts(self, rows: Sequence[VerdictRow]) -> None:
        """Record halo candidates' verdicts, then freeze competitor lists.

        A competitor of an owned candidate ``v`` is any deletable
        candidate with smaller priority within the separation radius;
        by the halo-sufficiency invariant every such vertex is inside
        the partition, so the lists are complete.
        """
        for v, verdict in rows:
            if verdict:
                self._status[v] = UNDECIDED
        status = self._status
        prio = self._prio
        for v in self._undecided:
            mine = prio[v]
            self._competitors[v] = [
                u
                for u in sorted(self.engine.ball(v, self._radius))
                if u != v and u in status and prio[u] < mine
            ]

    def mis_subround(self) -> Tuple[List[int], List[StatusRow], int]:
        """One snapshot-semantics sub-round of the local-minimum MIS.

        Against the statuses frozen at entry: a candidate loses if any
        smaller-priority competitor already won, stays undecided while
        one is still open, and wins once all of them have lost.
        Decisions apply locally at exit (the barrier); foreign
        boundary-band decisions arrive via :meth:`apply_status` before
        the next sub-round.  Returns ``(winners, exported status rows,
        undecided remaining)``.
        """
        status = self._status
        decided: List[StatusRow] = []
        for v in self._undecided:
            stay = False
            outcome = WINNER
            for u in self._competitors[v]:
                other = status[u]
                if other == WINNER:
                    outcome = LOSER
                    stay = False
                    break
                if other == UNDECIDED:
                    stay = True
            if not stay:
                decided.append((v, outcome))
        winners: List[int] = []
        exported: List[StatusRow] = []
        if decided:
            decided_set = {v for v, _ in decided}
            self._undecided = [
                v for v in self._undecided if v not in decided_set
            ]
            for v, outcome in decided:
                status[v] = outcome
                if outcome == WINNER:
                    winners.append(v)
                if v in self._boundary:
                    exported.append((v, outcome))
        return winners, exported, len(self._undecided)

    def apply_status(self, rows: Sequence[StatusRow]) -> None:
        """Apply foreign boundary-band decisions (the sub-round barrier)."""
        for v, outcome in rows:
            self._status[v] = outcome

    def apply_deletions(self, batch: Sequence[int]) -> None:
        """Delete the round's committed batch members held locally.

        ``batch`` preserves the global deletion order restricted to this
        partition, so the engine's dirty-region invalidation sees the
        same mutation sequence the unsharded engine would.
        """
        with self.tracer.trace(
            "shard.apply", shard=self.index, deletions=len(batch)
        ):
            for v in batch:
                self.engine.delete_vertex(v)

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[int, int]:
        """The partition engine's counters as a plain dict."""
        return self.engine.counters.as_dict()

    def spans_payload(self):
        """Captured spans (``None`` when capture was off)."""
        if self.tracer is NULL_TRACER:
            return None
        return self.tracer.export_spans()

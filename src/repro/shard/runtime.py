"""Shard-local state: one partition engine plus MIS round bookkeeping.

This module is the *local* side of the shard abstraction, the analogue
of a per-region process on real hardware.  A :class:`LocalShard` is
constructed from a partition blob (its own owned/halo membership and
induced edges — never the plan or the global graph) and afterwards
communicates exclusively through rows handed to / returned from its
methods.  The REPRO113 lint rule enforces that discipline statically
(no reads of coordinator-scope state), and the partition engine's
``owned`` guard enforces the verdict half dynamically: asking for a
deletability verdict outside the owned region raises
:class:`~repro.topology.OwnedRegionError`.

The MIS the shards compute together is the wave formulation of the
scheduler's greedy draw (:class:`~repro.topology.mis.WaveMIS`): each
sub-round decides, against the statuses frozen at the barrier, every
candidate whose smaller-priority competitors within the separation
radius are all settled — blocked candidates lose without a test, and
the shard runs deletability tests *only* for the owned candidates whose
verdict is actually due.  A boundary candidate is therefore tested by
exactly one shard (its owner), and the union of tests across shards and
sub-rounds equals the serial lazy scan's tested set — the eager
per-round verdict sweep (and its cross-shard redundancy) is gone.
Decisions apply at the barrier, so the fixpoint — and the deletion
schedule — is vertex-identical to the unsharded engine's at the same
priority draw.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cycles.batch import batch_verdicts_enabled
from repro.network.graph import NetworkGraph
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.shard.segment import ShmSource, attach_partition
from repro.topology import LocalTopologyEngine
from repro.topology.mis import LOSER, UNDECIDED, WINNER, WaveMIS

StatusRow = Tuple[int, int]  # (vertex, status)
PriorityRow = Tuple[int, int]  # (vertex, priority index)


class LocalShard:
    """One shard's partition engine and per-round MIS state.

    ``source`` is any of the three partition transports, normalised
    here: a pickled blob (:func:`~repro.shard.plan.partition_blob`), a
    plain parts tuple (:func:`~repro.shard.plan.partition_parts`, the
    inline backend's zero-copy hand-off), or a
    :class:`~repro.parallel.shm.ShmSource` descriptor for a shared CSR
    segment (attached read-only under a ``shm.attach`` span, copied
    into the private engine, then unmapped — the coordinator owns the
    segment's lifetime).
    """

    def __init__(
        self, index: int, tau: int, source, capture: bool = False
    ) -> None:
        self.index = index
        self.tracer = Tracer() if capture else NULL_TRACER
        # Round/sub-round cursors for span attribution: begin_round opens
        # round r and resets the sub-round counter; apply_deletions always
        # precedes the begin it rides with, so its spans belong to r + 1.
        self._round = -1
        self._subround = 0
        if isinstance(source, (bytes, bytearray)):
            source = pickle.loads(source)
        if isinstance(source, ShmSource):
            if self.tracer.enabled:
                with self.tracer.trace("shm.attach", shard=index):
                    owned, halo, boundary, partition = attach_partition(
                        source.descriptor
                    )
            else:
                owned, halo, boundary, partition = attach_partition(
                    source.descriptor
                )
        else:
            owned, halo, boundary, edges = source
            partition = NetworkGraph(tuple(owned) + tuple(halo))
            for u, v in edges:
                partition.add_edge(u, v)
        self.owned = tuple(owned)
        self.halo = tuple(halo)
        # The CSR mirror assigns slots in sorted-id order, so owned and
        # halo slots interleave; expose them as rank-derived sets.
        rank = {v: i for i, v in enumerate(sorted(self.owned + self.halo))}
        self.owned_slots = frozenset(rank[v] for v in self.owned)
        self.halo_slots = frozenset(rank[v] for v in self.halo)
        self._owned_set = frozenset(self.owned)
        self._boundary = frozenset(boundary)
        self.engine = LocalTopologyEngine(
            partition,
            tau,
            owned=self._owned_set,
            tracer=self.tracer if capture else None,
        )
        self._radius = self.engine.radius
        self._use_batch = batch_verdicts_enabled()
        self._mis: Optional[WaveMIS] = None

    # ------------------------------------------------------------------
    # Round protocol (driven by the coordinator / worker loop)
    # ------------------------------------------------------------------
    def begin_round(
        self,
        owned_rows: Sequence[PriorityRow],
        halo_rows: Sequence[PriorityRow],
    ) -> None:
        """Start a round: freeze the wave-MIS view of this partition.

        ``owned_rows`` / ``halo_rows`` carry the global priority draw
        restricted to this shard's candidates (owned region and halo
        band).  No verdict is computed here — tests happen lazily in
        :meth:`mis_subround`, only for owned candidates whose wave has
        arrived.
        """
        rows = list(owned_rows)
        rows.extend(halo_rows)
        self._round += 1
        self._subround = 0
        self._mis = WaveMIS(
            self.engine.kernel, rows, self._radius, owned=self._owned_set
        )

    def mis_subround(self) -> Tuple[List[int], List[StatusRow], int]:
        """Run MIS waves until this shard needs foreign input.

        Each wave decides, against the statuses at its entry, every
        candidate whose smaller-priority competitors within the
        separation radius are settled: candidates inside a winner's
        radius lose outright, and owned candidates whose verdict is due
        take their deletability test (winner iff deletable).  The
        greedy-MIS fixpoint is monotone, so interior chains may resolve
        locally without waiting for the barrier — the loop steps until
        no further local progress is possible, which happens only when
        every remaining owned candidate waits on a foreign decision.
        Those arrive via :meth:`apply_status` before the next
        sub-round.  Returns ``(winners, exported status rows, owned
        undecided remaining)``.

        When capture is on, the whole sub-round records a
        ``shard.subround`` span (attrs ``shard``/``round``/``subround``)
        — the per-shard busy interval the attribution analysis and the
        multi-lane timeline consume; hot-path tracing stays behind
        ``tracer.enabled`` guards (REPRO114).
        """
        tracer = self.tracer
        subround = self._subround
        self._subround = subround + 1
        if tracer.enabled:
            with tracer.trace(
                "shard.subround",
                shard=self.index,
                round=self._round,
                subround=subround,
            ):
                return self._mis_waves(subround)
        return self._mis_waves(subround)

    def _mis_waves(self, subround: int) -> Tuple[List[int], List[StatusRow], int]:
        mis = self._mis
        boundary = self._boundary
        tracer = self.tracer
        exported: List[StatusRow] = []
        winners: List[int] = []
        while True:
            testable, blocked = mis.step()
            exported.extend((v, LOSER) for v in blocked if v in boundary)
            if testable:
                if tracer.enabled:
                    with tracer.trace(
                        "shard.verdicts",
                        shard=self.index,
                        round=self._round,
                        subround=subround,
                        candidates=len(testable),
                    ):
                        verdicts = self._verdicts_of(testable)
                else:
                    verdicts = self._verdicts_of(testable)
                for v, verdict in zip(testable, verdicts):
                    mis.record_verdict(v, verdict)
                    if verdict:
                        winners.append(v)
                    if v in boundary:
                        exported.append((v, WINNER if verdict else LOSER))
            elif not blocked:
                break
        return winners, exported, mis.undecided_count()

    def _verdicts_of(self, testable: Sequence[int]) -> List[bool]:
        if self._use_batch:
            return self.engine.span_verdicts_batch(testable)
        return [self.engine.deletable(v) for v in testable]

    def apply_status(self, rows: Sequence[StatusRow]) -> None:
        """Apply foreign boundary-band decisions (the sub-round barrier)."""
        mis = self._mis
        for v, outcome in rows:
            mis.apply_row(v, outcome)

    def apply_deletions(self, batch: Sequence[int]) -> None:
        """Delete the round's committed batch members held locally.

        ``batch`` preserves the global deletion order restricted to this
        partition, so the engine's dirty-region invalidation sees the
        same mutation sequence the unsharded engine would.
        """
        if self.tracer.enabled:
            # Deletions ride the *next* round's begin message, so the
            # span belongs to the round about to open.
            with self.tracer.trace(
                "shard.apply",
                shard=self.index,
                round=self._round + 1,
                deletions=len(batch),
            ):
                for v in batch:
                    self.engine.delete_vertex(v)
        else:
            for v in batch:
                self.engine.delete_vertex(v)

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[int, int]:
        """The partition engine's counters as a plain dict."""
        return self.engine.counters.as_dict()

    def spans_payload(self):
        """Captured spans as an aligned v2 payload (``None`` if capture off).

        The payload carries this shard's time origin and a
        ``shard{index}`` process label, so the coordinator's
        :meth:`~repro.obs.tracer.Tracer.import_spans` places the spans on
        the shared timeline and stamps each with a ``proc`` attribute.
        """
        if self.tracer is NULL_TRACER:
            return None
        return self.tracer.export_payload(process=f"shard{self.index}")

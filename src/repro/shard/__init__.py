"""Region sharding: halo-exchange partitions of a deployment.

The paper's locality property — every coverage decision reads only a
⌈τ/2⌉-hop neighbourhood — is what makes the monolithic simulator
shardable at all: partition the deployment into owned regions, surround
each with a ⌈τ/2⌉-hop halo band, and every verdict, separation probe
and MIS decision a shard needs is answerable from its own partition.
This package owns that decomposition:

* :mod:`repro.shard.plan` — the deterministic partitioner and
  :class:`ShardPlan` (owned regions, halo bands, routing tables);
* :mod:`repro.shard.runtime` — :class:`LocalShard`, the shard-local
  partition engine and MIS state (REPRO113-linted: it never reads
  coordinator state);
* :mod:`repro.shard.halo` — :class:`HaloExchange`, the round-synchronous
  boundary-band row router with traffic metering;
* :mod:`repro.shard.scheduler` — the coordinator producing schedules
  vertex-identical to the unsharded engine's.

Entry point: ``dcc_schedule(..., shards=N)``; see DESIGN.md section 9.
"""

from repro.shard.halo import HaloExchange
from repro.shard.plan import (
    ShardPlan,
    ShardSpec,
    build_shard_plan,
    partition_blob,
    partition_parts,
)
from repro.shard.scheduler import ShardStats, sharded_dcc_schedule

__all__ = [
    "HaloExchange",
    "ShardPlan",
    "ShardSpec",
    "ShardStats",
    "build_shard_plan",
    "partition_blob",
    "partition_parts",
    "sharded_dcc_schedule",
]

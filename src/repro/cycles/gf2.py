"""GF(2) linear algebra on bitmask integers.

The cycle space of a graph is a vector space over GF(2); we represent its
elements as arbitrary-precision Python integers used as bitmasks.  XOR is
vector addition, and Gaussian elimination reduces to a pivot-indexed
dictionary of reduced rows.  CPython's big-integer XOR runs in C, which makes
this representation the fastest pure-Python option by a wide margin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class GF2Basis:
    """An incrementally built, pivot-reduced basis of GF(2) vectors.

    Rows are stored indexed by their leading (highest) set bit.  ``add``
    performs one step of online Gaussian elimination.
    """

    __slots__ = ("_pivots",)

    def __init__(self, vectors: Iterable[int] = ()) -> None:
        self._pivots: Dict[int, int] = {}
        for vec in vectors:
            self.add(vec)

    @property
    def rank(self) -> int:
        """Dimension of the span of all vectors added so far."""
        return len(self._pivots)

    def reduce(self, vector: int) -> int:
        """Reduce ``vector`` against the basis; the residue is returned.

        A zero residue means the vector lies in the span of the basis.
        """
        pivots = self._pivots
        while vector:
            lead = vector.bit_length() - 1
            row = pivots.get(lead)
            if row is None:
                break
            vector ^= row
        return vector

    def add(self, vector: int) -> bool:
        """Insert ``vector``; return ``True`` iff it increased the rank."""
        residue = self.reduce(vector)
        if residue == 0:
            return False
        self._pivots[residue.bit_length() - 1] = residue
        return True

    def contains(self, vector: int) -> bool:
        """``True`` iff ``vector`` is in the span of the basis."""
        return self.reduce(vector) == 0

    def vectors(self) -> List[int]:
        """The reduced basis rows (one per pivot)."""
        return list(self._pivots.values())

    def copy(self) -> "GF2Basis":
        clone = GF2Basis()
        clone._pivots = dict(self._pivots)
        return clone

    def __len__(self) -> int:
        return len(self._pivots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF2Basis(rank={self.rank})"


def gf2_rank(vectors: Iterable[int]) -> int:
    """Rank of a collection of GF(2) bitmask vectors."""
    return GF2Basis(vectors).rank


def gf2_in_span(vector: int, vectors: Iterable[int]) -> bool:
    """Is ``vector`` a GF(2) linear combination of ``vectors``?"""
    return GF2Basis(vectors).contains(vector)


def gf2_solve(target: int, vectors: List[int]) -> Optional[List[int]]:
    """Express ``target`` as a XOR of a subset of ``vectors``.

    Returns the indices of the chosen subset, or ``None`` when ``target``
    is not in the span.  Runs full elimination with combination tracking,
    so it is meant for small systems (tests, explanations), not hot paths.
    """
    pivots: Dict[int, int] = {}
    combos: Dict[int, int] = {}
    residue_target = target
    target_combo = 0
    for idx, vec in enumerate(vectors):
        combo = 1 << idx
        while vec:
            lead = vec.bit_length() - 1
            if lead in pivots:
                vec ^= pivots[lead]
                combo ^= combos[lead]
            else:
                pivots[lead] = vec
                combos[lead] = combo
                break
    while residue_target:
        lead = residue_target.bit_length() - 1
        if lead not in pivots:
            return None
        residue_target ^= pivots[lead]
        target_combo ^= combos[lead]
    return [i for i in range(len(vectors)) if (target_combo >> i) & 1]


def popcount(vector: int) -> int:
    """Number of set bits (hamming weight) of ``vector``."""
    return vector.bit_count()

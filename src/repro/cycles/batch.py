"""Batched uint64 GF(2) span verdicts over stacked candidate matrices.

The scalar kernel (:meth:`repro.cycles.kernel.CSRGraph.span_connected_verdict`)
answers Definition 5 one candidate at a time with tight Python loops.  A
MIS round, however, produces *many* independent candidates against the
same frozen graph — the verdicts are pure, so they can be stacked and
answered with a handful of vectorized numpy passes instead of millions
of interpreter steps.

Representation.  Every candidate's punctured k-ball has at most
``BATCH_MAX_MEMBERS`` (= 64) members at the radii the schedulers use, so
one ``uint64`` word per member encodes its adjacency *within the
candidate* (bit ``j`` set = adjacent to local member ``j``).  All
candidates of a round are concatenated into flat member/edge arrays;
per-candidate reductions are ``bitwise_or.reduceat`` over the candidate
boundaries.  The pipeline is the exact staged shape of the scalar
kernel:

1. connectivity by batched bit-propagation (``reach |= OR of rows in
   the frontier``) — disconnected candidates resolve here;
2. a BFS forest read off the propagation layers, chords numbered in
   sorted edge order, cycle coordinates taken in the *chord space*
   (a cycle's coordinate vector in the fundamental basis is the
   indicator of the chords it contains, so rank is spanning-tree
   independent; rows are ``ceil(nu / 64)`` uint64 words, at most
   ``BATCH_MAX_CHORD_WORDS``);
3. stage 1 triangles / stage 2 first-wedge-thinned 4-cycles — the same
   cycle families the scalar kernel streams — eliminated by a
   vectorized column-pivot GF(2) absorption loop.

Early exit is per candidate *and* per slab: cycle rows are fed to the
elimination in per-candidate slabs of roughly ``nu`` rows with doubling
limits, so a candidate that reaches full rank early (the common case —
dense neighbourhoods resolve midway through their triangles) never
builds or reduces the rest of its rows.  Candidates are also grouped by
chord-row width so narrow cycle spaces pay for one word, not the wave
maximum.

Verdict: connected **and** rank == nu (= E - V + 1).  The span tested
is a canonical function of the subgraph, so verdicts agree with the
scalar kernel and the dict oracles bit for bit — the property suite
drives all three against each other.

Bypass (scalar fallback, same answer, documented in DESIGN.md §10):
``tau >= 5`` (stage 3 truncated-BFS closures stay scalar), more than 64
members, more than ``64 * BATCH_MAX_CHORD_WORDS`` chords, or numpy
missing entirely.
"""

from __future__ import annotations

import weakref
from itertools import chain
from typing import List, Optional, Sequence

from repro import knobs

try:  # pragma: no cover - exercised by the import-time environment
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Largest tau the packed path accepts.  The elimination pipeline packs
#: one adjacency word per member, which is sound only while the verdict
#: reduces to the tau<=4 quad/triangle chord structure; larger confine
#: sizes take the scalar kernel.  repro-bounds (REPRO406) pins the
#: bypass guard to this name.
PACKED_TAU_MAX = 4
#: Largest candidate (member count) the packed path accepts; one uint64
#: adjacency word per member.
BATCH_MAX_MEMBERS = 64
#: Widest chord row the packed path accepts, in 64-bit words.  10k-node
#: unit-disk deployments at tau=4 peak around nu=240, i.e. 4 words.
BATCH_MAX_CHORD_WORDS = 4
#: Below this many packable candidates a call runs the scalar kernel
#: per candidate instead: the packed pipeline's fixed per-call numpy
#: cost (a few dozen kernel launches) only amortizes on fat waves, and
#: the tail waves of a round are small.
BATCH_MIN_CANDIDATES = 24
#: Per-candidate slack above ``nu`` in the first elimination slab.
_SLAB_PAD = 32
#: Below this many residual rows an absorption switches to the big-int
#: tail loop (see ``_EliminationState._eliminate_tail``).
_TAIL_ROWS = 96
_WORD_MASK = (1 << 64) - 1

_ONE = None if np is None else np.uint64(1)
_ZERO = None if np is None else np.uint64(0)

#: Per-kernel flat adjacency arrays, keyed weakly so dead kernels drop
#: their cache with them.  See :func:`_flat_adjacency` for staleness.
_FLAT_ADJ_CACHE = weakref.WeakKeyDictionary()

#: Per-kernel packed slot-adjacency bit matrices (see
#: :func:`_adjacency_bits`), same staleness rule as the flat arrays.
_ADJ_BITS_CACHE = weakref.WeakKeyDictionary()

_LMAJOR_PAIRS = None
_TRANSPOSE_STEPS = None


def numpy_available() -> bool:
    """True when the vectorized path can run at all."""
    return np is not None


def batch_verdicts_enabled() -> bool:
    """Should schedulers route verdict waves through the batch kernel?

    Gated on ``REPRO_BATCH_VERDICTS`` (off by default; ``0``/``false``/
    ``off``/empty disable) *and* on numpy being importable.  Read at
    call time, not import time, so tests and CI can flip it per run;
    worker processes inherit the environment and therefore the setting.
    Schedules are byte-identical either way — the knob only moves where
    the verdicts are computed.
    """
    if not knobs.get_flag("REPRO_BATCH_VERDICTS"):
        return False
    return np is not None


def _lmajor_pairs():
    """``(i, l)`` local pair index arrays in l-major order.

    l-major enumeration is *prefix closed*: the first ``m*(m-1)/2``
    entries are exactly the pairs over the first ``m`` members, so one
    shared table serves every candidate size up to
    ``BATCH_MAX_MEMBERS`` by slicing.
    """
    global _LMAJOR_PAIRS
    if _LMAJOR_PAIRS is None:
        counts = np.arange(1, BATCH_MAX_MEMBERS, dtype=np.int64)
        _LMAJOR_PAIRS = (
            np.concatenate([np.arange(l, dtype=np.int64) for l in counts]),
            np.repeat(counts, counts),
        )
    return _LMAJOR_PAIRS


def _transpose64(blocks):
    """In-place bitwise transpose of stacked 64x64 bit blocks.

    ``blocks`` is ``(n, 64)`` uint64; bit ``x`` of row ``r`` moves to
    bit ``r`` of row ``x`` within each block (Hacker's Delight masked
    swap ladder, vectorized across blocks).
    """
    global _TRANSPOSE_STEPS
    if _TRANSPOSE_STEPS is None:
        steps = []
        j, m = 32, 0x00000000FFFFFFFF
        while j:
            steps.append((j, np.uint64(j), np.uint64(m)))
            j >>= 1
            m ^= m << j
        _TRANSPOSE_STEPS = steps
    n = blocks.shape[0]
    for j, shift, mask in _TRANSPOSE_STEPS:
        # Rows with bit j clear vs set are contiguous j-long runs, so
        # both operands are reshape *views* — every op is in place.
        view = blocks.reshape(n, 64 // (2 * j), 2, j)
        a0 = view[:, :, 0, :]
        a1 = view[:, :, 1, :]
        t = ((a0 >> shift) ^ a1) & mask
        a0 ^= t << shift
        a1 ^= t
    return blocks


def _leadbit(w):
    """Leading set-bit positions of positive uint64 words, vectorized.

    float64 conversion rounds to nearest, so ``frexp``'s exponent is the
    bit length or one above it (rounding can only carry *up* across a
    power of two); a single probe of the claimed bit corrects it.
    """
    e = np.frexp(w.astype(np.float64))[1].astype(np.int64) - 1
    np.minimum(e, 63, out=e)
    e -= (((w >> e.astype(np.uint64)) & _ONE) == 0).astype(np.int64)
    return e


def _segment_or(values, group_of, size):
    """OR ``values`` grouped by sorted ``group_of`` keys into ``size`` slots."""
    out = np.zeros(size, np.uint64)
    if values.size:
        starts = np.flatnonzero(np.diff(group_of, prepend=-1))
        out[group_of[starts]] = np.bitwise_or.reduceat(values, starts)
    return out


def _group_prior(groups, counts):
    """Exclusive per-group running sum of ``counts`` (groups pre-sorted).

    ``prior[i]`` is how many units elements of the same group contribute
    before element ``i`` — the per-candidate budget check that lets the
    stages expand only the first ~nu cycle rows of each candidate.
    """
    cum = np.cumsum(counts)
    starts = np.flatnonzero(np.diff(groups, prepend=-1))
    sizes = np.diff(np.append(starts, groups.size))
    base = np.repeat(cum[starts] - counts[starts], sizes)
    return cum - counts - base


class _EliminationState:
    """Per-class GF(2) pivot tables, rank counters and early-exit masks.

    Candidates are grouped by chord-row width before elimination (see
    ``_packed_verdicts``); within a class every absorb call runs on one
    stacked matrix.  The dominant ``width == 1`` class keeps its rows as
    a flat 1-D uint64 array — every pass is a handful of scalar-typed
    vector ops with no 2-D fancy indexing.  ``rank``, ``nu`` and
    ``alive`` are indexed by class-candidate position.
    """

    __slots__ = ("nu", "width", "span", "rank", "alive", "pivcols", "filled")

    def __init__(self, nu, width: int) -> None:
        self.nu = nu
        self.width = width
        self.span = 64 * width
        self.rank = np.zeros(nu.size, np.int64)
        self.alive = np.ones(nu.size, bool)
        self.pivcols = [
            np.zeros(nu.size * self.span, np.uint64) for _ in range(width)
        ]
        self.filled = np.zeros(nu.size * self.span, bool)

    def absorb(self, cand, edge_ids, edge_word, edge_bit) -> None:
        """Feed cycle rows, each the XOR of 3 or 4 edge coordinates.

        ``edge_ids`` is a tuple of index arrays into the edge chord
        arrays.  Rows of already-resolved candidates are dropped before
        they are even built.
        """
        live = np.flatnonzero(self.alive[cand])
        if live.size != cand.size:
            cand = cand[live]
        if not cand.size:
            return
        if self.width == 1:
            cols = [edge_bit[edge_ids[0][live]]]
            for eid in edge_ids[1:]:
                cols[0] = cols[0] ^ edge_bit[eid[live]]
        else:
            cols = [
                np.zeros(cand.size, np.uint64) for _ in range(self.width)
            ]
            for eid in edge_ids:
                eid = eid[live]
                word = edge_word[eid]
                bit = edge_bit[eid]
                for k in range(self.width):
                    m = word == k
                    cols[k][m] ^= bit[m]
        self._eliminate(cand, cols)

    def _lead(self, cols):
        """Leading bit position across the column tuple (rows nonzero)."""
        lead = _leadbit(cols[0])
        for k in range(1, self.width):
            word = cols[k]
            lead = np.where(word != _ZERO, 64 * k + _leadbit(word), lead)
        return lead

    def _eliminate(self, cand, cols) -> None:
        """Column-tuple absorption: install, then XOR rows on their pivot.

        Each pass: rows pointing at a vacant slot install (first per
        slot, bumping their candidate's rank); then *every* row XORs
        against the pivot of its slot — just-installed rows cancel to
        zero and drop, duplicates and reducible rows strictly lose
        their leading bit.  A candidate reaching ``rank == nu`` leaves
        ``alive`` and sheds its rows.  Rank is basis independent, so
        install order never changes a verdict, and per-candidate pivot
        slots never exceed ``nu`` (rows live in GF(2)^nu), so rank
        cannot overshoot.
        """
        filled = self.filled
        alive = self.alive
        pivcols = self.pivcols
        width = self.width
        nonzero = cols[0] != _ZERO
        for k in range(1, width):
            nonzero |= cols[k] != _ZERO
        keep = np.flatnonzero(nonzero & alive[cand])
        cand = cand[keep]
        cols = [col[keep] for col in cols]
        while cand.size > _TAIL_ROWS:
            key = cand * self.span + self._lead(cols)
            vacant = np.flatnonzero(~filled[key])
            if vacant.size:
                unique_keys, first = np.unique(
                    key[vacant], return_index=True
                )
                rows = vacant[first]
                for k in range(width):
                    pivcols[k][unique_keys] = cols[k][rows]
                filled[unique_keys] = True
                owners = unique_keys // self.span
                np.add.at(self.rank, owners, 1)
                done = owners[self.rank[owners] >= self.nu[owners]]
                if done.size:
                    alive[done] = False
            cols = [col ^ piv[key] for col, piv in zip(cols, pivcols)]
            nonzero = cols[0] != _ZERO
            for k in range(1, width):
                nonzero |= cols[k] != _ZERO
            keep = np.flatnonzero(nonzero & alive[cand])
            cand = cand[keep]
            cols = [col[keep] for col in cols]
        if cand.size:
            self._eliminate_tail(cand, cols)

    def _eliminate_tail(self, cand, cols) -> None:
        """Big-int tail for the last few rows of an absorption.

        The vectorized pass costs a fixed ~20 numpy calls regardless of
        row count, and reduction chains leave a long tail of tiny
        passes; once few rows remain it is cheaper to fold the columns
        into Python ints and run the scalar install-or-XOR loop against
        the same pivot tables (reads and writes go straight to the
        numpy arrays, so vectorized and tail passes interleave freely).
        """
        span = self.span
        width = self.width
        filled = self.filled
        pivcols = self.pivcols
        rank = self.rank
        nu = self.nu
        alive = self.alive
        col_lists = [col.tolist() for col in cols]
        for pos, c in enumerate(cand.tolist()):
            if not alive[c]:
                continue
            vec = 0
            for k in range(width):
                vec |= col_lists[k][pos] << (64 * k)
            base = c * span
            while vec:
                lead = vec.bit_length() - 1
                key = base + lead
                if filled[key]:
                    for k in range(width):
                        vec ^= int(pivcols[k][key]) << (64 * k)
                else:
                    for k in range(width):
                        pivcols[k][key] = (vec >> (64 * k)) & _WORD_MASK
                    filled[key] = True
                    rank[c] += 1
                    if rank[c] >= nu[c]:
                        alive[c] = False
                    break


def span_verdict_batch(
    csr, member_lists: Sequence[Sequence[int]], tau: int
) -> List[bool]:
    """Definition 5 verdicts for many member-slot lists, one graph pass.

    ``member_lists`` holds sorted alive-slot sequences against ``csr``
    (exactly what :meth:`CSRGraph.punctured_ball_slots` returns); the
    result list is positionally aligned.  Candidates outside the packed
    path's envelope fall back to the scalar kernel individually, so the
    answer is total either way.
    """
    if tau < 3:
        raise ValueError("tau must be at least 3 (the shortest cycle)")
    verdicts: List[Optional[bool]] = [None] * len(member_lists)
    packed: List[int] = []
    if np is not None and tau <= PACKED_TAU_MAX:
        for idx, members in enumerate(member_lists):
            count = len(members)
            if count == 0:
                verdicts[idx] = True
            elif count <= BATCH_MAX_MEMBERS:
                packed.append(idx)
    if len(packed) < BATCH_MIN_CANDIDATES:
        packed = []
    if packed:
        _packed_verdicts(csr, member_lists, packed, tau, verdicts)
    for idx, verdict in enumerate(verdicts):
        if verdict is None:
            verdicts[idx] = csr.span_connected_verdict(
                list(member_lists[idx]), tau
            )
    return verdicts  # type: ignore[return-value]


def _flat_adjacency(csr):
    """``(indptr, flat)`` CSR arrays for the graph's adjacency lists.

    Cached per kernel instance and rebuilt only when the *edge
    structure* changes (``edges_version``): vertex deletions leave the
    cache in place, because stale entries point at dead slots, and dead
    slots are never candidate members — the membership join drops them
    for free.
    """
    entry = _FLAT_ADJ_CACHE.get(csr)
    if entry is None or entry[0] != csr.edges_version:
        adj = csr.adj
        degrees = np.fromiter(map(len, adj), np.int64, count=len(adj))
        indptr = np.zeros(len(adj) + 1, np.int64)
        np.cumsum(degrees, out=indptr[1:])
        flat = np.fromiter(
            chain.from_iterable(adj), np.int64, count=int(indptr[-1])
        )
        entry = (csr.edges_version, indptr, flat)
        _FLAT_ADJ_CACHE[csr] = entry
    return entry[1], entry[2]


def _adjacency_bits(csr):
    """Packed slot-adjacency bit matrix, flat ``(nslots * words,)``.

    Word ``slot * words + (other >> 6)`` holds bit ``other & 63`` iff
    the two slots are adjacent — an O(1) edge probe for the pair join.
    Staleness contract matches :func:`_flat_adjacency`: stale bits can
    only point at dead slots, which are never candidate members.
    """
    entry = _ADJ_BITS_CACHE.get(csr)
    if entry is None or entry[0] != csr.edges_version:
        indptr, flat = _flat_adjacency(csr)
        nslots = len(indptr) - 1
        words = (nslots + 63) // 64 if nslots else 1
        src = np.repeat(
            np.arange(nslots, dtype=np.int64), np.diff(indptr)
        )
        key = src * words + (flat >> 6)
        order = np.argsort(key, kind="stable")
        bits = _segment_or(
            _ONE << (flat[order] & 63).astype(np.uint64),
            key[order],
            nslots * words,
        )
        entry = (csr.edges_version, bits, words)
        _ADJ_BITS_CACHE[csr] = entry
    return entry[1], entry[2]


def _packed_verdicts(csr, member_lists, packed, tau, verdicts) -> None:
    lists = [member_lists[i] for i in packed]
    lens = np.fromiter(map(len, lists), dtype=np.int64, count=len(lists))
    cands = len(lists)
    offsets = np.zeros(cands + 1, np.int64)
    np.cumsum(lens, out=offsets[1:])
    total = int(offsets[-1])
    members = np.fromiter(
        chain.from_iterable(lists), dtype=np.int64, count=total
    )
    cand_of = np.repeat(np.arange(cands, dtype=np.int64), lens)
    local_i = np.arange(total, dtype=np.int64) - offsets[cand_of]
    local = local_i.astype(np.uint64)
    max_members = int(lens.max()) if cands else 0

    # --- pair join: which member pairs are graph edges ---
    # Every candidate's local pairs (i < l) come from one shared
    # l-major prefix-closed table; each pair is answered by an O(1)
    # probe of the packed slot-adjacency matrix.  No per-neighbour
    # gather, no sorted membership search, and the pair arrays are
    # reused verbatim by stage 2.
    bits, words = _adjacency_bits(csr)
    tab_i, tab_l = _lmajor_pairs()
    npairs = lens * (lens - 1) // 2
    pair_off = np.zeros(cands + 1, np.int64)
    np.cumsum(npairs, out=pair_off[1:])
    p_cand = np.repeat(np.arange(cands, dtype=np.int64), npairs)
    p_rel = np.arange(int(pair_off[-1]), dtype=np.int64) - pair_off[p_cand]
    p_il = tab_i[p_rel]
    p_ll = tab_l[p_rel]
    p_gi = offsets[p_cand] + p_il
    p_gl = offsets[p_cand] + p_ll
    slot_l = members[p_gl]
    p_adj = (
        bits[members[p_gi] * words + (slot_l >> 6)]
        >> (slot_l & 63).astype(np.uint64)
    ) & _ONE
    e_sel = np.flatnonzero(p_adj)
    e_i = p_gi[e_sel]  # global member index, lower local side
    e_j = p_gl[e_sel]  # global member index, higher local side
    e_cand = p_cand[e_sel]
    li = p_il[e_sel]
    lj = p_ll[e_sel]

    # --- per-member adjacency words ---
    # Edges are (candidate, l)-sorted, so the lower halves segment-OR
    # straight into a (cands, 64) block matrix; the upper halves are
    # its 64x64 bitwise transpose.
    lower = _segment_or(_ONE << li.astype(np.uint64), e_cand * 64 + lj, cands * 64)
    upper = _transpose64(lower.reshape(cands, 64).copy()).reshape(-1)
    A = (lower | upper)[cand_of * 64 + local_i]

    # --- connectivity: batched bit-propagation from local vertex 0 ---
    full = np.full(cands, ~_ZERO, np.uint64)
    small = lens < 64
    full[small] = (_ONE << lens[small].astype(np.uint64)) - _ONE
    reach = np.ones(cands, np.uint64)
    dist = np.full(total, -1, np.int64)
    cand_starts = offsets[:-1]
    dist[cand_starts] = 0
    frontier = reach.copy()
    layer_hist = [frontier]
    depth = 0
    while True:
        depth += 1
        in_front = ((frontier[cand_of] >> local) & _ONE).astype(bool)
        agg = np.bitwise_or.reduceat(
            np.where(in_front, A, _ZERO), cand_starts
        )
        new = agg & ~reach
        if not new.any():
            break
        reach |= new
        dist[((new[cand_of] >> local) & _ONE).astype(bool)] = depth
        frontier = new
        layer_hist.append(new)
    connected = reach == full

    # --- BFS forest off the propagation layers -> chord numbering ---
    # The frontier words *are* the per-depth layer masks, so the forest
    # comes straight off the propagation history: a member's parent is
    # the lowest neighbour bit in the previous layer.
    layers = np.stack(layer_hist, axis=1)
    parent = np.full(total, -1, np.int64)
    inner = dist >= 1
    parent_word = A[inner] & layers[cand_of[inner], dist[inner] - 1]
    lsb = parent_word & (_ZERO - parent_word)
    parent[inner] = np.bitwise_count(lsb - _ONE).astype(np.int64)

    # Each undirected edge appears once already (li < lj by the pair
    # enumeration); keep connected candidates only before numbering.
    keep = connected[e_cand]
    e_i = e_i[keep]
    e_j = e_j[keep]
    e_cand = e_cand[keep]
    li = li[keep]
    lj = lj[keep]
    is_chord = ~((parent[e_j] == li) | (parent[e_i] == lj))
    running = np.cumsum(is_chord)
    nu = np.zeros(cands, np.int64)
    if e_cand.size:
        group_starts = np.flatnonzero(np.diff(e_cand, prepend=-1))
        group_ends = np.append(group_starts[1:], e_cand.size) - 1
        group_base = running[group_starts] - is_chord[group_starts]
        nu[e_cand[group_starts]] = running[group_ends] - group_base
        base = np.repeat(
            group_base, np.diff(np.append(group_starts, e_cand.size))
        )
        chord_index = running - base - 1
    else:
        chord_index = running

    for idx in np.flatnonzero(~connected).tolist():
        verdicts[packed[idx]] = False
    trivial = connected & (nu == 0)
    for idx in np.flatnonzero(trivial).tolist():
        verdicts[packed[idx]] = True
    # Wider cycle spaces than the chord-word budget: scalar fallback
    # (verdict left None for the caller loop).
    pending = connected & (nu >= 1) & (nu <= 64 * BATCH_MAX_CHORD_WORDS)
    if not pending.any():
        return
    # Narrow storage: (word index, bit) per edge; tree edges carry bit 0
    # so XOR-ing them into a cycle row is a no-op by construction.
    edge_word_all = np.where(is_chord, chord_index >> 6, 0)
    edge_bit_all = np.where(
        is_chord,
        _ONE << (np.where(is_chord, chord_index, 0) & 63).astype(np.uint64),
        _ZERO,
    )
    e_cand_all = e_cand
    e_i_all = e_i
    e_j_all = e_j
    li_all = li
    lj_all = lj

    def run_class(class_mask) -> None:
        """Stages 1-2 plus elimination for one chord-row-width class."""
        class_ids = np.flatnonzero(class_mask)
        remap = np.full(cands, -1, np.int64)
        remap[class_ids] = np.arange(class_ids.size, dtype=np.int64)
        c_nu = nu[class_ids]
        width = int((int(c_nu.max()) + 63) // 64)
        sel = np.flatnonzero(class_mask[e_cand_all])
        e_cand = remap[e_cand_all[sel]]
        e_i = e_i_all[sel]
        e_j = e_j_all[sel]
        li = li_all[sel]
        lj = lj_all[sel]
        edge_word = edge_word_all[sel]
        edge_bit = edge_bit_all[sel]
        # Direct-address edge table: key = (candidate, lo local, hi
        # local).  Left uninitialised on purpose — every lookup below
        # closes a cycle over pairs that are adjacent by construction,
        # so only assigned keys are ever read.
        edge_table = np.empty(class_ids.size << 12, np.int32)
        edge_table[(e_cand << 12) | (li << 6) | lj] = np.arange(
            e_cand.size, dtype=np.int32
        )

        def edge_lookup(cand, a, b):
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            return edge_table[(cand << 12) | (lo << 6) | hi]

        state = _EliminationState(c_nu, width)

        # --- stage 1: triangles, grouped under their *highest* edge ---
        # A triangle (c, a, b) with c < a < b is charged to edge (a, b)
        # and witnessed by c.  Chords are numbered in (hi, lo)
        # l-major order, so (a, b) is the triangle's largest chord
        # whenever it is a chord at all — the first witness per edge
        # then installs straight into that pivot slot with no reduction
        # chain, and one such row per edge resolves most dense
        # candidates outright.
        witness = A[e_i] & A[e_j] & ((_ONE << local[e_i]) - _ONE)

        def run_triangles(edge_idx, masks) -> None:
            bits = np.unpackbits(masks.view(np.uint8), bitorder="little")
            t_loc, t_c = np.nonzero(bits.reshape(-1, 64)[:, :max_members])
            if not t_loc.size:
                return
            t_edge = edge_idx[t_loc]
            t_c = t_c.astype(np.int64)
            t_cand = e_cand[t_edge]
            closing = edge_lookup(
                np.concatenate((t_cand, t_cand)),
                np.concatenate((t_c, t_c)),
                np.concatenate((li[t_edge], lj[t_edge])),
            )
            state.absorb(
                t_cand,
                (t_edge, closing[: t_edge.size], closing[t_edge.size :]),
                edge_word,
                edge_bit,
            )

        has_wit = witness != _ZERO
        if has_wit.any():
            # Round 1: the first (lowest) witness of every edge.
            w_edge = np.flatnonzero(has_wit)
            wit = witness[w_edge]
            lsb = wit & (_ZERO - wit)
            c0 = np.bitwise_count(lsb - _ONE).astype(np.int64)
            w_cand = e_cand[w_edge]
            closing = edge_lookup(
                np.concatenate((w_cand, w_cand)),
                np.concatenate((c0, c0)),
                np.concatenate((li[w_edge], lj[w_edge])),
            )
            state.absorb(
                w_cand,
                (w_edge, closing[: w_edge.size], closing[w_edge.size :]),
                edge_word,
                edge_bit,
            )
            # Round 2: remaining witnesses, budgeted per candidate and
            # only for candidates short of full rank — the batch
            # analogue of the scalar kernel's mid-stage early exit.
            rest = witness & ~_segment_or(lsb, w_edge, witness.size)
            rest_cnt = np.bitwise_count(rest).astype(np.int64)
            has_rest = (rest_cnt > 0) & state.alive[e_cand]
            if has_rest.any():
                eager = has_rest & (
                    _group_prior(e_cand, rest_cnt) < c_nu[e_cand] + _SLAB_PAD
                )
                if eager.any():
                    idx = np.flatnonzero(eager)
                    run_triangles(idx, rest[idx])
                backlog = has_rest & ~eager & state.alive[e_cand]
                if backlog.any():
                    idx = np.flatnonzero(backlog)
                    run_triangles(idx, rest[idx])
        rank = state.rank
        if tau == 3:
            for pos, idx in enumerate(class_ids.tolist()):
                verdicts[packed[idx]] = bool(rank[pos] == c_nu[pos])
            return

        # --- stage 2: first-wedge-thinned 4-cycles on survivors ---
        survivors = np.flatnonzero(rank < c_nu)
        if survivors.size:
            surv_mask = np.zeros(cands, bool)
            surv_mask[class_ids[survivors]] = True
            psel = np.flatnonzero(surv_mask[p_cand])
            g_i = p_gi[psel]
            g_l = p_gl[psel]
            g_cand = remap[p_cand[psel]]
            common = A[g_i] & A[g_l]
            wedge = np.bitwise_count(common) >= 2
            g_i = g_i[wedge]
            g_l = g_l[wedge]
            g_cand = g_cand[wedge]
            common = common[wedge]
            if common.size:
                lsb = common & (_ZERO - common)
                j0 = np.bitwise_count(lsb - _ONE).astype(np.int64)
                others = common & ~lsb

                def run_quads(pair_idx) -> None:
                    bits = np.unpackbits(
                        others[pair_idx].view(np.uint8), bitorder="little"
                    )
                    w_loc, j1 = np.nonzero(
                        bits.reshape(-1, 64)[:, :max_members]
                    )
                    if not w_loc.size:
                        return
                    w_pair = pair_idx[w_loc]
                    j1 = j1.astype(np.int64)
                    c_cand = g_cand[w_pair]
                    c_i = local[g_i[w_pair]].astype(np.int64)
                    c_l = local[g_l[w_pair]].astype(np.int64)
                    c_j0 = j0[w_pair]
                    quad = edge_lookup(
                        np.concatenate((c_cand, c_cand, c_cand, c_cand)),
                        np.concatenate((c_i, c_j0, c_l, j1)),
                        np.concatenate((c_j0, c_l, j1, c_i)),
                    )
                    state.absorb(
                        c_cand, tuple(quad.reshape(4, -1)), edge_word, edge_bit
                    )

                quad_cnt = np.bitwise_count(others).astype(np.int64)
                eager = _group_prior(g_cand, quad_cnt) < c_nu[g_cand] + _SLAB_PAD
                if eager.any():
                    run_quads(np.flatnonzero(eager))
                backlog = ~eager & state.alive[g_cand]
                if backlog.any():
                    run_quads(np.flatnonzero(backlog))
        for pos, idx in enumerate(class_ids.tolist()):
            verdicts[packed[idx]] = bool(rank[pos] == c_nu[pos])

    # Candidates grouped by chord-row width: the dominant nu <= 64 class
    # runs the whole pipeline on flat 1-D rows; rarer wide candidates
    # pay exactly the words they need without dragging the others along.
    for lo, hi in ((1, 64), (65, 128), (129, 64 * BATCH_MAX_CHORD_WORDS)):
        group = pending & (nu >= lo) & (nu <= hi)
        if group.any():
            run_class(group)

"""Cycles, incidence vectors and the GF(2) cycle space of a graph.

The paper identifies a cycle ``C`` with its incidence vector ``b(C)`` over
the edges of the host graph; cycle addition is the symmetric difference of
edge sets.  We realise incidence vectors as bitmask integers through an
:class:`EdgeIndex` that assigns one bit per edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.network.graph import Edge, NetworkGraph, canonical_edge


class EdgeIndex:
    """A fixed assignment of bit positions to the edges of a graph."""

    __slots__ = ("_bit_of", "_edge_of")

    def __init__(self, edges: Iterable[Edge]) -> None:
        self._bit_of: Dict[Edge, int] = {}
        self._edge_of: List[Edge] = []
        for edge in edges:
            edge = canonical_edge(*edge)
            if edge in self._bit_of:
                continue
            self._bit_of[edge] = len(self._edge_of)
            self._edge_of.append(edge)

    @classmethod
    def from_graph(cls, graph: NetworkGraph) -> "EdgeIndex":
        return cls(sorted(graph.edges()))

    def __len__(self) -> int:
        return len(self._edge_of)

    def __contains__(self, edge: Edge) -> bool:
        return canonical_edge(*edge) in self._bit_of

    def bit(self, u: int, v: int) -> int:
        """Bit position of edge ``(u, v)``."""
        return self._bit_of[canonical_edge(u, v)]

    def mask_of_edge(self, u: int, v: int) -> int:
        return 1 << self._bit_of[canonical_edge(u, v)]

    def mask_of_edges(self, edges: Iterable[Edge]) -> int:
        mask = 0
        for u, v in edges:
            mask ^= 1 << self._bit_of[canonical_edge(u, v)]
        return mask

    def mask_of_vertex_cycle(self, cycle: Sequence[int]) -> int:
        """Incidence mask of a cycle given as a closed vertex sequence.

        ``cycle`` lists the vertices in order; the closing edge from the last
        vertex back to the first is implicit.
        """
        if len(cycle) < 3:
            raise ValueError("a simple cycle needs at least three vertices")
        mask = 0
        for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
            mask ^= 1 << self._bit_of[canonical_edge(a, b)]
        return mask

    def edges_of_mask(self, mask: int) -> List[Edge]:
        """Edges whose bits are set in ``mask``."""
        out: List[Edge] = []
        while mask:
            low = mask & -mask
            out.append(self._edge_of[low.bit_length() - 1])
            mask ^= low
        return out

    def edge_at(self, bit: int) -> Edge:
        return self._edge_of[bit]

    def edges(self) -> List[Edge]:
        return list(self._edge_of)


class Cycle:
    """A simple cycle with both a vertex sequence and an incidence mask."""

    __slots__ = ("vertices", "mask")

    def __init__(self, vertices: Sequence[int], mask: int) -> None:
        self.vertices = tuple(vertices)
        self.mask = mask

    @classmethod
    def from_vertices(cls, vertices: Sequence[int], index: EdgeIndex) -> "Cycle":
        return cls(vertices, index.mask_of_vertex_cycle(vertices))

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def length(self) -> int:
        """Number of edges, equal to the number of vertices of a simple cycle."""
        return len(self.vertices)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cycle) and self.mask == other.mask

    def __hash__(self) -> int:
        return hash(self.mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cycle({list(self.vertices)})"


def cycle_sum(masks: Iterable[int]) -> int:
    """GF(2) sum (symmetric difference) of incidence masks."""
    total = 0
    for mask in masks:
        total ^= mask
    return total


def mask_vertex_degrees(mask: int, index: EdgeIndex) -> Dict[int, int]:
    """Degrees of vertices in the edge set selected by ``mask``."""
    degrees: Dict[int, int] = {}
    for u, v in index.edges_of_mask(mask):
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return degrees


def is_cycle_mask(mask: int, index: EdgeIndex) -> bool:
    """Is ``mask`` the edge set of a single simple cycle?"""
    if mask == 0:
        return False
    degrees = mask_vertex_degrees(mask, index)
    if any(deg != 2 for deg in degrees.values()):
        return False
    # Connectivity of the selected edge subgraph with all degrees two means
    # exactly one simple cycle.
    adjacency: Dict[int, Set[int]] = {v: set() for v in degrees}
    for u, v in index.edges_of_mask(mask):
        adjacency[u].add(v)
        adjacency[v].add(u)
    start = next(iter(adjacency))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        # Reachability only: the returned count is the same under any
        # visitation order.  # repro: allow[set-iteration-order]
        for nbr in adjacency[node]:
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    return len(seen) == len(degrees)


def decompose_mask_into_cycles(mask: int, index: EdgeIndex) -> List[Cycle]:
    """Split an even-degree edge set into edge-disjoint simple cycles.

    Every element of the cycle space is a disjoint union of simple cycles;
    this extracts one such decomposition (useful for reporting partitions).
    """
    adjacency: Dict[int, List[int]] = {}
    for u, v in index.edges_of_mask(mask):
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    if any(len(nbrs) % 2 for nbrs in adjacency.values()):
        raise ValueError("mask is not in the cycle space (odd vertex degree)")

    remaining: Dict[int, Set[int]] = {v: set(nbrs) for v, nbrs in adjacency.items()}
    cycles: List[Cycle] = []
    for start in sorted(adjacency):
        while remaining[start]:
            # Trace a closed walk, then peel simple cycles from it.
            walk = [start]
            current = start
            while True:
                nxt = min(remaining[current])
                remaining[current].remove(nxt)
                remaining[nxt].remove(current)
                walk.append(nxt)
                current = nxt
                if current == start:
                    break
            cycles.extend(_peel_simple_cycles(walk, index))
    return cycles


def _peel_simple_cycles(walk: Sequence[int], index: EdgeIndex) -> List[Cycle]:
    """Split a closed walk (walk[0] == walk[-1]) into simple cycles."""
    cycles: List[Cycle] = []
    stack: List[int] = []
    position: Dict[int, int] = {}
    for vertex in walk:
        if vertex in position:
            loop = stack[position[vertex]:]
            if len(loop) >= 3:
                cycles.append(Cycle.from_vertices(loop, index))
            for dropped in loop[1:]:
                position.pop(dropped, None)
            del stack[position[vertex] + 1:]
        else:
            position[vertex] = len(stack)
            stack.append(vertex)
    return cycles


def fundamental_cycle_basis(
    graph: NetworkGraph, index: Optional[EdgeIndex] = None
) -> Tuple[EdgeIndex, List[int]]:
    """Fundamental cycles of a BFS spanning forest, as incidence masks.

    Returns ``(edge_index, masks)``; the masks form a basis of the cycle
    space, one per non-tree edge (chord).
    """
    if index is None:
        index = EdgeIndex.from_graph(graph)
    parent: Dict[int, int] = {}
    order: Dict[int, int] = {}
    masks: List[int] = []
    for root in sorted(graph.vertices()):
        if root in parent:
            continue
        parent[root] = root
        order[root] = 0
        frontier = [root]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for w in sorted(graph.neighbors(u)):
                    if w not in parent:
                        parent[w] = u
                        order[w] = order[u] + 1
                        nxt.append(w)
            frontier = nxt
    tree_edges = {
        canonical_edge(v, p) for v, p in parent.items() if p != v
    }
    for u, v in sorted(graph.edges()):
        if canonical_edge(u, v) in tree_edges:
            continue
        mask = index.mask_of_edge(u, v)
        a, b = u, v
        while a != b:
            if order[a] >= order[b]:
                mask ^= index.mask_of_edge(a, parent[a])
                a = parent[a]
            else:
                mask ^= index.mask_of_edge(b, parent[b])
                b = parent[b]
        masks.append(mask)
    return index, masks


def cycle_space_dimension(graph: NetworkGraph) -> int:
    """``|E| - |V| + c``: the dimension of the cycle space."""
    return graph.num_edges() - len(graph) + len(graph.connected_components())

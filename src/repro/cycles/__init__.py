"""Cycle-space algebra: GF(2) vectors, Horton MCB, irreducible cycles."""

from repro.cycles.cycle_space import (
    Cycle,
    EdgeIndex,
    cycle_space_dimension,
    cycle_sum,
    decompose_mask_into_cycles,
    fundamental_cycle_basis,
    is_cycle_mask,
)
from repro.cycles.gf2 import GF2Basis, gf2_in_span, gf2_rank, gf2_solve
from repro.cycles.horton import (
    IrreducibleCycleBounds,
    ShortCycleSpan,
    horton_candidate_cycles,
    irreducible_cycle_bounds,
    max_irreducible_cycle_bounded,
    minimum_cycle_basis,
)
from repro.cycles.relevant import (
    is_relevant_cycle,
    relevant_cycle_lengths,
    relevant_cycles,
    relevant_cycles_exact,
)
from repro.cycles.shortest_paths import ShortestPathTree

__all__ = [
    "Cycle",
    "EdgeIndex",
    "GF2Basis",
    "IrreducibleCycleBounds",
    "ShortCycleSpan",
    "ShortestPathTree",
    "cycle_space_dimension",
    "cycle_sum",
    "decompose_mask_into_cycles",
    "fundamental_cycle_basis",
    "gf2_in_span",
    "gf2_rank",
    "gf2_solve",
    "horton_candidate_cycles",
    "irreducible_cycle_bounds",
    "is_cycle_mask",
    "is_relevant_cycle",
    "relevant_cycle_lengths",
    "relevant_cycles",
    "relevant_cycles_exact",
    "max_irreducible_cycle_bounded",
    "minimum_cycle_basis",
]

"""Horton-style minimum cycle bases and irreducible-cycle bounds.

This module implements the paper's Algorithm 1 (find the minimum and maximum
sizes of irreducible cycles of a graph, via a modified Horton minimum cycle
basis), plus the two derived predicates the coverage algorithms actually
consume:

* :func:`irreducible_cycle_bounds` — Algorithm 1 verbatim.
* :class:`ShortCycleSpan` — the GF(2) span of all cycles of length at most
  ``tau``.  "The maximum irreducible cycle of ``H`` is bounded by ``tau``"
  is equivalent to "cycles of length at most ``tau`` span the whole cycle
  space of ``H``" (matroid greedy argument; Theorem 4 of the paper together
  with [Chickering-Geiger-Heckerman 1995]), and the span formulation admits a
  far cheaper test: candidate generation can stop at length ``tau`` and the
  elimination can stop as soon as the rank reaches the cycle-space dimension.

Performance notes
-----------------
All linear algebra happens in the *chord space*: after fixing a BFS spanning
forest, a cycle is identified by its set of non-tree edges (chords), an
isomorphism from the cycle space onto GF(2)^nu.  Vectors are ``nu``-bit
integers rather than ``|E|``-bit ones, which shrinks every XOR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cycles.cycle_space import (
    Cycle,
    EdgeIndex,
    cycle_space_dimension,
)
from repro.cycles.gf2 import GF2Basis
from repro.cycles.shortest_paths import ShortestPathTree
from repro.network.graph import Edge, NetworkGraph, canonical_edge


def horton_candidate_cycles(
    graph: NetworkGraph, max_length: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """Horton candidate cycles, deduplicated, as vertex tuples.

    For every vertex ``v`` a deterministic BFS shortest-path tree is built;
    for every non-tree edge ``(x, y)`` whose least common ancestor in the
    tree is ``v`` itself, the cycle ``v..x - (x,y) - y..v`` is a candidate
    (Algorithm 1, lines 2-6).  When ``max_length`` is given, BFS trees are
    truncated so only candidates of that length or shorter are produced.
    """
    cutoff = None if max_length is None else max_length // 2
    seen: Set[frozenset] = set()
    out: List[Tuple[int, ...]] = []
    for root in sorted(graph.vertices()):
        spt = ShortestPathTree(graph, root, cutoff=cutoff)
        for x in spt.parent:
            for y in sorted(graph.neighbors(x)):
                if y <= x or y not in spt.parent:
                    continue
                if spt.is_tree_edge(x, y):
                    continue
                length = spt.depth[x] + spt.depth[y] + 1
                if max_length is not None and length > max_length:
                    continue
                if spt.lca(x, y) != root:
                    continue
                up = spt.path_to_root(x)
                up.reverse()  # root .. x
                down = spt.path_to_root(y)[:-1]  # y .. child-of-root
                cycle = tuple(up + down)
                key = frozenset(
                    canonical_edge(a, b)
                    for a, b in zip(cycle, cycle[1:] + cycle[:1])
                )
                if key in seen:
                    continue
                seen.add(key)
                out.append(cycle)
    return out


@dataclass(frozen=True)
class IrreducibleCycleBounds:
    """Result of Algorithm 1: sizes of the extreme irreducible cycles."""

    minimum: int
    maximum: int

    def bounded_by(self, tau: int) -> bool:
        return self.maximum <= tau


class _ChordSpace:
    """BFS spanning forest of a graph plus the chord-bit numbering.

    ``chord_mask`` maps a chord edge — stored under *both* orientations to
    avoid canonicalisation on hot paths — to its single-bit mask.
    """

    __slots__ = ("parent", "chord_mask", "nu")

    def __init__(self, graph: NetworkGraph) -> None:
        parent: Dict[int, int] = {}
        for root in sorted(graph.vertices()):
            if root in parent:
                continue
            parent[root] = root
            frontier = [root]
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for w in sorted(graph.neighbors(u)):
                        if w not in parent:
                            parent[w] = u
                            nxt.append(w)
                frontier = nxt
        self.parent = parent
        self.chord_mask: Dict[Tuple[int, int], int] = {}
        bit = 0
        for u, v in sorted(graph.edges()):
            if parent.get(u) == v or parent.get(v) == u:
                continue
            mask = 1 << bit
            self.chord_mask[(u, v)] = mask
            self.chord_mask[(v, u)] = mask
            bit += 1
        self.nu = bit

    def project_vertex_cycle(self, cycle: Sequence[int]) -> int:
        """Chord-space vector of a cycle given as a vertex sequence."""
        mask = 0
        chord_mask = self.chord_mask
        for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
            mask ^= chord_mask.get((a, b), 0)
        return mask

    def project_edges(self, edges: Sequence[Edge]) -> int:
        mask = 0
        for u, v in edges:
            mask ^= self.chord_mask.get((u, v), 0)
        return mask


def _edge_set_has_even_degrees(edges: Sequence[Edge]) -> bool:
    degree: Dict[int, int] = {}
    for u, v in edges:
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    return all(d % 2 == 0 for d in degree.values())


class ShortCycleSpan:
    """The subspace of the cycle space spanned by cycles of length <= tau.

    The span is computed from Horton candidates capped at length ``tau``;
    this is the whole short-cycle span because every cycle of length ``L``
    is a GF(2) sum of Horton candidates of length at most ``L``.
    """

    def __init__(
        self, graph: NetworkGraph, tau: int, *, use_csr: bool = True
    ) -> None:
        if tau < 3:
            raise ValueError("tau must be at least 3 (the shortest cycle)")
        self.graph = graph
        self.tau = tau
        self._chords = _ChordSpace(graph)
        self._dimension = cycle_space_dimension(graph)
        self._basis = GF2Basis()
        if self._dimension:
            # CSR fast path for real graphs (views keep the dict oracle):
            # identical chord numbering, so the spanned subspace — and
            # every downstream ``contains`` query — matches the oracle.
            if use_csr and hasattr(graph, "csr"):
                graph.csr().stream_short_closures(
                    tau, self._chords.chord_mask, self._basis, self._dimension
                )
            else:
                self._stream_closures()

    def _stream_closures(self) -> None:
        """Feed tree-path closures to the basis, stopping when rank fills.

        For every BFS root ``r`` and edge ``(x, y)`` inside the truncated
        BFS tree, the closure ``path(r,x) + (x,y) + path(r,y)`` projects —
        shared path prefixes cancel under XOR — to the chord mask of the
        simple cycle through ``lca(x, y)``, whose length is at most
        ``depth(x) + depth(y) + 1 <= tau``.  So no simplicity filtering, no
        deduplication and no path reconstruction are needed: every non-zero
        projected closure is a cycle of length <= tau, and by Horton's
        lemma the closures with ``lca == r`` alone already span every cycle
        of length <= tau.  The chord mask accumulates incrementally along
        BFS tree edges, making each candidate O(1).
        """
        graph = self.graph
        tau = self.tau
        dimension = self._dimension
        basis = self._basis
        chord_mask = self._chords.chord_mask
        cutoff = tau // 2
        adj = {v: graph.neighbors(v) for v in graph.vertices()}
        seen: Set[int] = {0}  # skip exact duplicates before the GF(2) reduce
        for root in graph.vertices():
            depth: Dict[int, int] = {root: 0}
            acc: Dict[int, int] = {root: 0}
            frontier = [root]
            d = 0
            while frontier and d < cutoff:
                nxt: List[int] = []
                for u in frontier:
                    acc_u = acc[u]
                    for w in adj[u]:
                        if w not in depth:
                            depth[w] = d + 1
                            acc[w] = acc_u ^ chord_mask.get((u, w), 0)
                            nxt.append(w)
                frontier = nxt
                d += 1
            budget = tau - 1
            for x, dx in depth.items():
                acc_x = acc[x]
                for y in adj[x]:
                    if y <= x:
                        continue
                    dy = depth.get(y)
                    if dy is None or dx + dy > budget:
                        continue
                    closure = acc_x ^ acc[y] ^ chord_mask.get((x, y), 0)
                    if closure in seen:
                        continue
                    seen.add(closure)
                    if basis.add(closure) and basis.rank == dimension:
                        return

    @property
    def rank(self) -> int:
        return self._basis.rank

    @property
    def cycle_space_dimension(self) -> int:
        return self._dimension

    def spans_cycle_space(self) -> bool:
        """All irreducible cycles of the graph have length <= tau?"""
        return self._basis.rank == self._dimension

    def contains_edges(self, edges: Sequence[Edge]) -> bool:
        """Is the (even) edge set a GF(2) sum of cycles of length <= tau?

        ``edges`` must all belong to the host graph.  An edge set lies in
        the cycle space iff every vertex degree is even; sets failing that
        are rejected outright.
        """
        for u, v in edges:
            if not self.graph.has_edge(u, v):
                return False
        if not _edge_set_has_even_degrees(edges):
            return False
        return self._basis.contains(self._chords.project_edges(edges))

    def contains_vertex_cycle(self, cycle: Sequence[int]) -> bool:
        edges = [
            canonical_edge(a, b)
            for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]])
        ]
        return self.contains_edges(edges)


def max_irreducible_cycle_bounded(graph: NetworkGraph, tau: int) -> bool:
    """Early-exit test: is the largest irreducible cycle at most ``tau``?"""
    return ShortCycleSpan(graph, tau).spans_cycle_space()


def minimum_cycle_basis(
    graph: NetworkGraph, index: Optional[EdgeIndex] = None
) -> List[Cycle]:
    """A minimum cycle basis via Horton's greedy algorithm.

    Candidates are sorted by non-decreasing length and added through GF(2)
    Gaussian elimination until ``|E| - |V| + c`` independent cycles have
    been collected (Algorithm 1, lines 7-14).
    """
    if index is None:
        index = EdgeIndex.from_graph(graph)
    nu = cycle_space_dimension(graph)
    if nu == 0:
        return []
    chords = _ChordSpace(graph)
    candidates = horton_candidate_cycles(graph)
    candidates.sort(key=len)
    basis = GF2Basis()
    out: List[Cycle] = []
    for vertices in candidates:
        if basis.add(chords.project_vertex_cycle(vertices)):
            out.append(Cycle.from_vertices(vertices, index))
            if len(out) == nu:
                break
    if len(out) != nu:
        raise RuntimeError(
            "Horton candidate set failed to span the cycle space; "
            "this indicates a bug in candidate generation"
        )
    return out


def irreducible_cycle_bounds(graph: NetworkGraph) -> IrreducibleCycleBounds:
    """Algorithm 1: minimum and maximum sizes of irreducible cycles.

    Returns ``(0, 0)`` for forests, which have no cycles at all.
    """
    basis = minimum_cycle_basis(graph)
    if not basis:
        return IrreducibleCycleBounds(0, 0)
    lengths = [cycle.length for cycle in basis]
    return IrreducibleCycleBounds(min(lengths), max(lengths))

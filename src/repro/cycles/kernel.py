"""Flat, array-based span kernel: CSR adjacency + integer BFS + GF(2) span.

The deletability primitive of Definition 5 bottoms out in three loops:
k-ball extraction (BFS), chord numbering (spanning forest), and
tau-capped closure streaming into a GF(2) elimination.  The dict-of-sets
:class:`~repro.network.graph.NetworkGraph` pays hashing and allocation
on every step of all three.  :class:`CSRGraph` is a compact int-indexed
mirror of a ``NetworkGraph`` — vertex ids are mapped onto dense slots,
adjacency rows are flat lists of slot indices, and every traversal runs
over preallocated scratch arrays with token-stamped visitation (no
per-query clearing, no per-vertex hashing).

The mirror is built once and patched incrementally: the mutation methods
(:meth:`delete_vertex` / :meth:`delete_edge` / :meth:`add_edge` /
:meth:`add_vertex`) apply the change to the *base graph and the arrays
together* and keep :attr:`version` in lock-step with the base graph's
mutation counter, so ``NetworkGraph.csr()`` can hand out the same kernel
for the lifetime of an engine.  An out-of-band base mutation is detected
by the version check and answered with a rebuild — correctness never
depends on the caller's discipline.

Everything here is deliberately dependency-free (flat Python lists, not
numpy): the inner loops are index arithmetic plus big-int XOR, which
CPython executes far faster than element-wise numpy calls at the
punctured-neighbourhood sizes the schedulers touch.  The dict-based
implementations remain in place as the reference oracle; the property
suite drives both against each other under random mutation sequences.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from itertools import islice
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cycles.gf2 import GF2Basis


class CSRGraph:
    """Compact adjacency mirror of a :class:`NetworkGraph`.

    Slots (dense ints) are assigned to vertex ids in sorted-id order at
    build time, so slot order and id order agree; :attr:`monotone_ids`
    records whether that invariant still holds after mutations (vertices
    added later get fresh slots at the end).  Rows are kept sorted by
    slot, which under the invariant is also sorted by id — the property
    the deterministic shortest-path trees rely on.
    """

    __slots__ = (
        "base",
        "version",
        "ids",
        "index",
        "adj",
        "alive",
        "monotone_ids",
        "tracer",
        "_dist",
        "_stamp",
        "_token",
        "_member_stamp",
        "_member_token",
        "_parent",
        "_acc",
        "edges_version",
        "__weakref__",
    )

    def __init__(self, base) -> None:
        self.base = base
        # Optional span tracer (duck-typed; deliberately NOT imported from
        # repro.obs — that package renders through viz, which imports the
        # graph module, which imports this one).  ``None`` keeps the hot
        # paths at a single attribute load + identity check.
        self.tracer = None
        ids = sorted(base.vertices())
        self.ids: List[int] = ids
        self.index: Dict[int, int] = {v: i for i, v in enumerate(ids)}
        index = self.index
        self.adj: List[List[int]] = [
            sorted(index[w] for w in base.neighbors(v)) for v in ids
        ]
        self.alive = bytearray([1]) * len(ids) if ids else bytearray()
        self.monotone_ids = True
        n = len(ids)
        # Token-stamped scratch: a cell is valid only when its stamp
        # matches the current token, so traversals never clear arrays.
        self._dist = [0] * n
        self._stamp = [0] * n
        self._token = 0
        self._member_stamp = [0] * n
        self._member_token = 0
        self._parent = [0] * n
        self._acc = [0] * n
        #: Bumped on every change to the *edge structure or slot table*
        #: (new slots, added or deleted edges) but **not** on vertex
        #: deletion: batch-kernel adjacency caches tolerate dead slots
        #: (membership joins drop them) but not missing or phantom
        #: edges between alive vertices.
        self.edges_version = 0
        self.version = base.version

    # ------------------------------------------------------------------
    # Incremental mutation (base graph and mirror move together)
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        self._dist.append(0)
        self._stamp.append(0)
        self._member_stamp.append(0)
        self._parent.append(0)
        self._acc.append(0)

    def _slot(self, v: int) -> int:
        """Slot of ``v``, allocating a fresh one for a new vertex."""
        i = self.index.get(v)
        if i is not None:
            return i
        i = len(self.ids)
        if self.ids and v <= self.ids[-1]:
            self.monotone_ids = False
        self.ids.append(v)
        self.index[v] = i
        self.adj.append([])
        self.alive.append(1)
        self._grow()
        self.edges_version += 1
        return i

    def add_vertex(self, v: int) -> None:
        self._slot(v)
        self.base.add_vertex(v)
        self.version = self.base.version

    def add_edge(self, u: int, v: int) -> None:
        i, j = self._slot(u), self._slot(v)
        self.base.add_edge(u, v)
        if j not in self.adj[i]:
            insort(self.adj[i], j)
            insort(self.adj[j], i)
            self.edges_version += 1
        self.version = self.base.version

    def delete_edge(self, u: int, v: int) -> None:
        self.base.remove_edge(u, v)  # raises KeyError before we patch
        i, j = self.index[u], self.index[v]
        self.adj[i].remove(j)
        self.adj[j].remove(i)
        self.edges_version += 1
        self.version = self.base.version

    def delete_vertex(self, v: int):
        """Remove ``v`` from base and mirror; returns former neighbours."""
        nbrs = self.base.remove_vertex(v)
        i = self.index.pop(v)
        for j in self.adj[i]:
            self.adj[j].remove(i)
        self.adj[i] = []
        self.alive[i] = 0
        self.version = self.base.version
        return nbrs

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_distances(
        self, source: int, cutoff: Optional[int] = None
    ) -> Dict[int, int]:
        """Hop distances keyed by vertex *id* — mirrors the oracle."""
        src = self.index.get(source)
        if src is None:
            raise KeyError(f"vertex {source} not in graph")
        adj = self.adj
        ids = self.ids
        self._token += 1
        token = self._token
        stamp = self._stamp
        dist = self._dist
        stamp[src] = token
        dist[src] = 0
        out = {source: 0}
        frontier = [src]
        d = 0
        while frontier and (cutoff is None or d < cutoff):
            nxt: List[int] = []
            d += 1
            for u in frontier:
                for w in adj[u]:
                    if stamp[w] != token:
                        stamp[w] = token
                        dist[w] = d
                        out[ids[w]] = d
                        nxt.append(w)
            frontier = nxt
        return out

    def ball_slots(self, source: int, radius: int) -> List[int]:
        """Slots within ``radius`` hops of id ``source`` (incl. source)."""
        trc = self.tracer
        if trc is None or not trc.enabled:
            return self._ball_slots(source, radius)
        with trc.trace("kernel.ball_bfs", center=source, radius=radius):
            return self._ball_slots(source, radius)

    def _ball_slots(self, source: int, radius: int) -> List[int]:
        src = self.index.get(source)
        if src is None:
            raise KeyError(f"vertex {source} not in graph")
        adj = self.adj
        self._token += 1
        token = self._token
        stamp = self._stamp
        stamp[src] = token
        reached = [src]
        frontier = [src]
        d = 0
        while frontier and d < radius:
            nxt: List[int] = []
            d += 1
            for u in frontier:
                for w in adj[u]:
                    if stamp[w] != token:
                        stamp[w] = token
                        reached.append(w)
                        nxt.append(w)
            frontier = nxt
        return reached

    def ball_ids(self, source: int, radius: int) -> FrozenSet[int]:
        """The k-ball as a frozenset of vertex ids (incl. the center)."""
        return frozenset(map(self.ids.__getitem__, self.ball_slots(source, radius)))

    def punctured_ball_slots(self, source: int, radius: int) -> List[int]:
        """Sorted slots of the ``radius``-ball of ``source``, minus it."""
        slots = self.ball_slots(source, radius)[1:]
        slots.sort()
        return slots

    def ball_intersects(
        self, source: int, radius: int, targets
    ) -> Tuple[bool, int]:
        """Does the ``radius``-ball of id ``source`` contain a target id?

        Early-exit BFS: returns ``(hit, vertices expanded)`` without
        materialising the ball.  ``targets`` is any id container with
        fast membership.
        """
        src = self.index.get(source)
        if src is None:
            raise KeyError(f"vertex {source} not in graph")
        if source in targets:
            return True, 1
        adj = self.adj
        ids = self.ids
        self._token += 1
        token = self._token
        stamp = self._stamp
        stamp[src] = token
        expanded = 1
        frontier = [src]
        d = 0
        while frontier and d < radius:
            nxt: List[int] = []
            d += 1
            for u in frontier:
                for w in adj[u]:
                    if stamp[w] != token:
                        stamp[w] = token
                        expanded += 1
                        if ids[w] in targets:
                            return True, expanded
                        nxt.append(w)
            frontier = nxt
        return False, expanded

    def shortest_path_tree(
        self, root: int, cutoff: Optional[int] = None
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """``(parent, depth)`` dicts matching the oracle's BFS tree.

        Requires :attr:`monotone_ids`: rows sorted by slot are then
        sorted by id, reproducing the oracle's smallest-id-parent
        adoption *and* its dict insertion order exactly.
        """
        if not self.monotone_ids:
            raise RuntimeError("id-sorted traversal unavailable after renames")
        src = self.index.get(root)
        if src is None:
            raise KeyError(f"vertex {root} not in graph")
        adj = self.adj
        ids = self.ids
        parent = {root: root}
        depth = {root: 0}
        frontier = [src]
        d = 0
        while frontier and (cutoff is None or d < cutoff):
            nxt: List[int] = []
            d += 1
            for u in frontier:
                uid = ids[u]
                for w in adj[u]:
                    wid = ids[w]
                    if wid not in parent:
                        parent[wid] = uid
                        depth[wid] = d
                        nxt.append(w)
            frontier = nxt
        return parent, depth

    # ------------------------------------------------------------------
    # Induced-subgraph primitives (members given as slot lists)
    # ------------------------------------------------------------------
    def member_slots(self, member_ids) -> List[int]:
        """Sorted slots of a collection of vertex ids."""
        index = self.index
        return sorted(index[v] for v in member_ids)

    def subgraph_signature(
        self, members: Sequence[int]
    ) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
        """The canonical ``(sorted ids, sorted edges)`` signature.

        Byte-identical to ``SubgraphView.signature()`` on the same
        member set, so kernel- and view-computed verdicts share one
        :class:`~repro.topology.signature.SpanMemo` keyspace.  While
        :attr:`monotone_ids` holds, slot-sorted ``members`` and
        slot-sorted rows are already id-sorted, so both sorts vanish.
        """
        ids = self.ids
        adj = self.adj
        self._member_token += 1
        token = self._member_token
        mstamp = self._member_stamp
        for i in members:
            mstamp[i] = token
        edges: List[Tuple[int, int]] = []
        append = edges.append
        if self.monotone_ids:
            # Slot order is id order: ``members`` (sorted slots) and the
            # per-row edge emission are already lexicographically sorted.
            for i in members:
                a = ids[i]
                for j in adj[i]:
                    if mstamp[j] == token and i < j:
                        append((a, ids[j]))
            return tuple(map(ids.__getitem__, members)), tuple(edges)
        for i in members:
            a = ids[i]
            for j in adj[i]:
                if mstamp[j] == token:
                    b = ids[j]
                    if a < b:
                        append((a, b))
        edges.sort()
        return tuple(sorted(ids[i] for i in members)), tuple(edges)

    def member_rows_signature(
        self, members: Sequence[int]
    ) -> Tuple[
        Dict[int, List[int]],
        Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]],
    ]:
        """Member-restricted rows and the canonical signature, one pass.

        The signature scan already filters every member's row down to
        members; handing those rows back lets
        :meth:`span_connected_verdict` skip its own full-row rescan.
        ``members`` must be sorted slots.
        """
        ids = self.ids
        adj = self.adj
        self._member_token += 1
        token = self._member_token
        mstamp = self._member_stamp
        for i in members:
            mstamp[i] = token
        mrows: Dict[int, List[int]] = {}
        edges: List[Tuple[int, int]] = []
        append = edges.append
        monotone = self.monotone_ids
        for i in members:
            a = ids[i]
            row = [j for j in adj[i] if mstamp[j] == token]
            mrows[i] = row
            for j in row:
                if i < j:
                    append((a, ids[j]))
        if monotone:
            return mrows, (tuple(map(ids.__getitem__, members)), tuple(edges))
        sig_edges = sorted(
            (a, b) if a < b else (b, a) for a, b in edges
        )
        return mrows, (
            tuple(sorted(ids[i] for i in members)),
            tuple(sig_edges),
        )

    def span_connected_verdict(
        self,
        members: Sequence[int],
        tau: int,
        mrows: Optional[Dict[int, List[int]]] = None,
    ) -> bool:
        """Definition 5 verdict on the induced subgraph of ``members``.

        True iff the induced subgraph is connected *and* its cycles of
        length at most ``tau`` span its whole GF(2) cycle space.  Runs
        entirely over slot arrays: one restricted BFS builds the
        spanning tree and proves connectivity, a second pass numbers the
        chords, then staged cycle enumeration feeds the elimination with
        early exit at full rank.  ``mrows`` (member-restricted sorted
        rows, e.g. from :meth:`member_rows_signature`) lets the BFS skip
        re-filtering the full adjacency rows.  The subspace spanned is a
        canonical function of the subgraph, so the verdict agrees with
        the dict-based :class:`~repro.cycles.horton.ShortCycleSpan`
        oracle.
        """
        trc = self.tracer
        if trc is None or not trc.enabled:
            return self._span_connected_verdict(members, tau, mrows)
        with trc.trace("kernel.span_verdict", members=len(members), tau=tau):
            return self._span_connected_verdict(members, tau, mrows)

    def _span_connected_verdict(
        self,
        members: Sequence[int],
        tau: int,
        mrows: Optional[Dict[int, List[int]]] = None,
    ) -> bool:
        if tau < 3:
            raise ValueError("tau must be at least 3 (the shortest cycle)")
        count = len(members)
        if count == 0:
            return True
        if mrows is None:
            adj = self.adj
            self._member_token += 1
            token = self._member_token
            mstamp = self._member_stamp
            for i in members:
                mstamp[i] = token
            mrows = {
                u: [w for w in adj[u] if mstamp[w] == token] for u in members
            }

        # Spanning tree + connectivity from the lowest slot; ``parent``
        # doubles as the visited mark (-1 = member not yet reached).
        parent = self._parent
        for i in members:
            parent[i] = -1
        root = members[0]
        parent[root] = root
        reached = 1
        frontier = [root]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for w in mrows[u]:
                    if parent[w] < 0:
                        parent[w] = u
                        reached += 1
                        nxt.append(w)
            frontier = nxt
        if reached != count:
            return False
        return self._stream_member_closures(members, mrows, parent, tau)

    def stream_short_closures(
        self,
        tau: int,
        chord_mask_ids: Dict[Tuple[int, int], int],
        basis: GF2Basis,
        dimension: int,
    ) -> None:
        """Feed tau-capped closures of the *whole* graph into ``basis``.

        Array-backed equivalent of
        :meth:`repro.cycles.horton.ShortCycleSpan._stream_closures`:
        ``chord_mask_ids`` is the id-keyed chord numbering of an already
        fixed spanning forest, so the subspace reached is identical and
        downstream ``contains`` queries agree with the oracle.  Stops as
        soon as the rank hits ``dimension``.
        """
        adj = self.adj
        ids = self.ids
        alive = self.alive
        index = self.index
        shift = max(len(ids), 1).bit_length()
        chord_mask: Dict[int, int] = {}
        for (a, b), mask in chord_mask_ids.items():
            ia, ib = index[a], index[b]
            if ia > ib:
                ia, ib = ib, ia
            chord_mask[(ia << shift) | ib] = mask
        get_chord = chord_mask.get
        seen = {0}
        cutoff = tau // 2
        budget = tau - 1
        dist = self._dist
        stamp = self._stamp
        acc = self._acc
        for root in range(len(ids)):
            if not alive[root]:
                continue
            self._token += 1
            tok = self._token
            stamp[root] = tok
            dist[root] = 0
            acc[root] = 0
            reached = [root]
            frontier = [root]
            d = 0
            while frontier and d < cutoff:
                nxt: List[int] = []
                d += 1
                for u in frontier:
                    acc_u = acc[u]
                    for w in adj[u]:
                        if stamp[w] != tok:
                            stamp[w] = tok
                            dist[w] = d
                            key = (u << shift) | w if u < w else (w << shift) | u
                            acc[w] = acc_u ^ get_chord(key, 0)
                            reached.append(w)
                            nxt.append(w)
                frontier = nxt
            for x in reached:
                dx = dist[x]
                acc_x = acc[x]
                for y in adj[x]:
                    if y > x and stamp[y] == tok and dx + dist[y] <= budget:
                        closure = acc_x ^ acc[y] ^ get_chord((x << shift) | y, 0)
                        if closure not in seen:
                            seen.add(closure)
                            if basis.add(closure) and basis.rank == dimension:
                                return

    def _stream_member_closures(
        self,
        members: Sequence[int],
        mrows: Dict[int, List[int]],
        parent: List[int],
        tau: int,
    ) -> bool:
        """Rank test: do the member cycles of length <= tau fill the space?

        Staged enumeration, cheapest candidates first.  Girth-3 and
        girth-4 cycles are read straight off the sorted member rows
        (triangle = edge + common neighbour; 4-cycle = two vertices with
        >= 2 common neighbours), with the algebraic thinning that for a
        diagonal pair with common neighbours ``c0..ck`` only the ``k``
        4-cycles through ``c0`` are streamed — every other 4-cycle on
        that diagonal is their XOR.  Since every simple cycle of length
        <= 4 is a triangle or a 4-cycle, the two stages are *complete*
        for tau in {3, 4}: no BFS at all on the hot path.  Only tau >= 5
        falls through to per-root truncated-BFS closure streaming for
        the longer cycles.

        Elimination is inlined (a flat pivot array indexed by leading
        bit) with early exit at full rank — dense neighbourhoods
        usually reach full rank midway through the triangle stage.
        """
        # Chord numbering, stored positionally: ``amask[u][i]`` is the
        # chord mask of edge ``(u, mrows[u][i])`` (0 for tree edges), so
        # the enumeration stages read masks by row index — no hashed
        # lookups in the inner loops.  Each edge is visited once from
        # its smaller endpoint; its position in the larger endpoint's
        # row is tracked by a per-vertex cursor (smaller neighbours of
        # ``w`` arrive in ascending order as ``u`` sweeps the sorted
        # member list, which is exactly row order).
        amask: Dict[int, List[int]] = {u: [0] * len(mrows[u]) for u in members}
        ptr = self._dist  # scratch; stage 3 reinitialises before reuse
        for u in members:
            ptr[u] = 0
        bit = 0
        for u in members:
            pu = parent[u]
            row = mrows[u]
            arow = amask[u]
            for idx in range(bisect_right(row, u), len(row)):
                w = row[idx]
                p = ptr[w]
                ptr[w] = p + 1
                if pu != w and parent[w] != u:
                    m = 1 << bit
                    bit += 1
                    arow[idx] = m
                    amask[w][p] = m
        nu = bit
        if nu == 0:
            return True

        pivots = [0] * nu
        rank = 0
        seen = {0}
        seen_add = seen.add
        stamp = self._stamp
        emask = self._acc  # scratch; stage 3 reinitialises before reuse
        # Per-vertex ``(neighbour > u, mask)`` suffix tails, zipped once:
        # both triangle loops walk exactly this suffix, and the inner one
        # walks ``w``'s tail once per incident edge — prezipping turns a
        # per-pair double slice into a single list iteration.
        tails: Dict[int, List[Tuple[int, int]]] = {}
        for u in members:
            row = mrows[u]
            i0 = bisect_right(row, u)
            tails[u] = list(zip(row[i0:], amask[u][i0:]))
        # Stage 1: triangles.  Edge (u, w) plus a common neighbour
        # v > w emits each triangle exactly once.  Rows are sorted, so
        # the tails skip the prefixes the slot-order conditions would
        # reject one by one; u's neighbours are token-stamped with their
        # edge masks so the common-neighbour test and the (u, v) mask
        # are one array probe.
        for u in members:
            self._token += 1
            tok = self._token
            for v, m in zip(mrows[u], amask[u]):
                stamp[v] = tok
                emask[v] = m
            for w, base in tails[u]:
                for v, mwv in tails[w]:
                    if stamp[v] == tok:
                        vec = base ^ emask[v] ^ mwv
                        while vec:
                            lead = vec.bit_length() - 1
                            row = pivots[lead]
                            if not row:
                                pivots[lead] = vec
                                rank += 1
                                break
                            vec ^= row
                        if rank == nu:
                            return True
        if tau == 3:
            return rank == nu  # triangles are complete for tau == 3

        # Stage 2: 4-cycles.  For every diagonal (u, w), u < w, with
        # common neighbours c0..ck, stream u-c0-w-ci (i >= 1); the
        # remaining u-ci-w-cj are XORs of those, so the span is intact.
        # Wedges u-c-w are streamed as they are enumerated: the first
        # wedge on each diagonal is held back as ``c0``'s path mask, and
        # every later wedge closes a 4-cycle against it.
        for u in members:
            first: Dict[int, int] = {}
            get_first = first.get
            for c, mc in zip(mrows[u], amask[u]):
                rc = mrows[c]
                mcr = amask[c]
                j0 = bisect_right(rc, u)
                for w, mcw in zip(islice(rc, j0, None), islice(mcr, j0, None)):
                    m = mc ^ mcw
                    prev = get_first(w)
                    if prev is None:
                        first[w] = m
                        continue
                    vec = prev ^ m
                    if vec in seen:
                        continue
                    seen_add(vec)
                    while vec:
                        lead = vec.bit_length() - 1
                        row = pivots[lead]
                        if not row:
                            pivots[lead] = vec
                            rank += 1
                            break
                        vec ^= row
                    if rank == nu:
                        return True
        if tau == 4:
            return rank == nu  # triangles + 4-cycles are complete for tau == 4

        # Stage 3 (tau >= 5): general tau-capped closure streaming —
        # per-root truncated BFS with XOR-accumulated chord masks.
        cutoff = tau // 2
        budget = tau - 1
        dist = self._dist
        stamp = self._stamp
        acc = self._acc
        for root in members:
            self._token += 1
            tok = self._token
            stamp[root] = tok
            dist[root] = 0
            acc[root] = 0
            reached = [root]
            frontier = [root]
            d = 0
            while frontier and d < cutoff:
                nxt: List[int] = []
                d += 1
                for u in frontier:
                    acc_u = acc[u]
                    for w, m in zip(mrows[u], amask[u]):
                        if stamp[w] != tok:
                            stamp[w] = tok
                            dist[w] = d
                            acc[w] = acc_u ^ m
                            reached.append(w)
                            nxt.append(w)
                frontier = nxt
            for x in reached:
                dx = dist[x]
                acc_x = acc[x]
                for y, m in zip(mrows[x], amask[x]):
                    if y > x and stamp[y] == tok and dx + dist[y] <= budget:
                        vec = acc_x ^ acc[y] ^ m
                        if vec in seen:
                            continue
                        seen_add(vec)
                        while vec:
                            lead = vec.bit_length() - 1
                            row = pivots[lead]
                            if not row:
                                pivots[lead] = vec
                                rank += 1
                                break
                            vec ^= row
                        if rank == nu:
                            return True
        return rank == nu

"""Deterministic BFS shortest-path trees with LCA queries.

Horton's minimum-cycle-basis algorithm builds one shortest-path tree per
vertex and keeps the candidate cycle ``C(v, x, y)`` only when the least
common ancestor of ``x`` and ``y`` in the tree rooted at ``v`` is ``v``
itself (Algorithm 1 of the paper).  Ties between equal-length shortest paths
are broken towards the smallest vertex id, which keeps the trees consistent
across roots — the standard device that preserves Horton's guarantee that
the candidate set contains a minimum cycle basis.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.network.graph import NetworkGraph


class ShortestPathTree:
    """A BFS tree rooted at ``root`` with smallest-id tie-breaking."""

    __slots__ = ("root", "parent", "depth")

    def __init__(
        self, graph: NetworkGraph, root: int, cutoff: Optional[int] = None
    ) -> None:
        self.root = root
        csr = getattr(graph, "_csr", None)
        if (
            csr is not None
            and csr.version == graph.version
            and csr.monotone_ids
        ):
            # Array fast path: slot-sorted rows are id-sorted while the
            # mirror's ids stay monotone, so the tree (and even the dict
            # insertion order) matches the sorted-BFS below exactly.
            self.parent, self.depth = csr.shortest_path_tree(root, cutoff)
            return
        self.parent: Dict[int, int] = {root: root}
        self.depth: Dict[int, int] = {root: 0}
        frontier = deque([root])
        while frontier:
            u = frontier.popleft()
            d = self.depth[u]
            if cutoff is not None and d >= cutoff:
                continue
            # Sorted iteration makes parent choice deterministic: a vertex is
            # adopted by the smallest-id neighbour at the previous level.
            for w in sorted(graph.neighbors(u)):
                if w not in self.parent:
                    self.parent[w] = u
                    self.depth[w] = d + 1
                    frontier.append(w)

    def __contains__(self, v: int) -> bool:
        return v in self.parent

    def path_to_root(self, v: int) -> List[int]:
        """Vertices from ``v`` up to (and including) the root."""
        path = [v]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def lca(self, x: int, y: int) -> int:
        """Least common ancestor of ``x`` and ``y`` in the tree."""
        dx, dy = self.depth[x], self.depth[y]
        while dx > dy:
            x = self.parent[x]
            dx -= 1
        while dy > dx:
            y = self.parent[y]
            dy -= 1
        while x != y:
            x = self.parent[x]
            y = self.parent[y]
        return x

    def is_tree_edge(self, u: int, v: int) -> bool:
        return self.parent.get(u) == v or self.parent.get(v) == u

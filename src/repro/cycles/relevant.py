"""Relevant (irreducible) cycles — the union of all minimum cycle bases.

Definition 4 of the paper calls a cycle *irreducible* when it cannot be
written as a sum of strictly shorter cycles; the concept originates in
chemical structure search, where Vismara [21] characterised these as the
*relevant* cycles: exactly the cycles that appear in at least one minimum
cycle basis.

This module materialises the relevant cycles of a graph (the paper's
Algorithm 1 only needs their extreme lengths, which
:func:`repro.cycles.horton.irreducible_cycle_bounds` computes much more
cheaply).  The test used here is the definition itself: a cycle ``C`` is
relevant iff it does not lie in the span of the cycles shorter than it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cycles.cycle_space import Cycle, EdgeIndex, cycle_space_dimension
from repro.cycles.gf2 import GF2Basis
from repro.cycles.horton import _ChordSpace, horton_candidate_cycles
from repro.network.graph import NetworkGraph


def relevant_cycles(
    graph: NetworkGraph,
    max_length: Optional[int] = None,
    index: Optional[EdgeIndex] = None,
) -> List[Cycle]:
    """Relevant (irreducible) cycles drawn from the Horton candidates.

    A candidate of length ``L`` is kept iff it is independent of the span
    of *all* cycles shorter than ``L`` (within one length class the test
    is against the shorter classes only — two equal-length candidates may
    be sums of each other plus shorter cycles and still both be relevant,
    substituting for one another across different MCBs).

    The result always contains a full minimum cycle basis and therefore
    realises the exact extreme lengths that Algorithm 1 reports.  It can
    however *miss* relevant cycles that only arise under alternative
    shortest-path tie-breakings (Vismara's complete enumeration tracks all
    shortest paths); use :func:`relevant_cycles_exact` when the exhaustive
    set matters and the graph is small.
    """
    if index is None:
        index = EdgeIndex.from_graph(graph)
    if cycle_space_dimension(graph) == 0:
        return []
    chords = _ChordSpace(graph)
    candidates = horton_candidate_cycles(graph, max_length=max_length)
    by_length: Dict[int, List[Tuple[int, ...]]] = {}
    for vertices in candidates:
        by_length.setdefault(len(vertices), []).append(vertices)

    shorter_span = GF2Basis()
    out: List[Cycle] = []
    for length in sorted(by_length):
        group = by_length[length]
        projections = [
            (vertices, chords.project_vertex_cycle(vertices))
            for vertices in group
        ]
        for vertices, projection in projections:
            if not shorter_span.contains(projection):
                out.append(Cycle.from_vertices(vertices, index))
        # only now absorb this length class into the "shorter" span
        for __, projection in projections:
            shorter_span.add(projection)
    return out


def is_relevant_cycle(graph: NetworkGraph, vertices: List[int]) -> bool:
    """Is the given simple cycle irreducible in ``graph``?

    Checks the definition directly: the cycle must not be a GF(2) sum of
    strictly shorter cycles, whose span equals the span of Horton
    candidates capped one below the cycle's length.
    """
    length = len(vertices)
    if length < 3:
        raise ValueError("a simple cycle needs at least three vertices")
    chords = _ChordSpace(graph)
    target = chords.project_vertex_cycle(vertices)
    shorter = GF2Basis()
    for candidate in horton_candidate_cycles(graph, max_length=length - 1):
        shorter.add(chords.project_vertex_cycle(candidate))
    return not shorter.contains(target)


def relevant_cycles_exact(
    graph: NetworkGraph, index: Optional[EdgeIndex] = None
) -> List[Cycle]:
    """The exact relevant-cycle set, by exhaustive cycle enumeration.

    Enumerates every simple cycle (exponential — small graphs only) and
    applies the definition verbatim: a cycle is relevant iff it is not a
    GF(2) sum of strictly shorter cycles.
    """
    import networkx as nx

    if index is None:
        index = EdgeIndex.from_graph(graph)
    cycles = [
        tuple(c)
        for c in nx.simple_cycles(graph.to_networkx())
        if len(c) >= 3
    ]
    by_length: Dict[int, List[Tuple[int, ...]]] = {}
    for vertices in cycles:
        by_length.setdefault(len(vertices), []).append(vertices)

    shorter_span = GF2Basis()
    chords = _ChordSpace(graph)
    out: List[Cycle] = []
    for length in sorted(by_length):
        group = by_length[length]
        projections = [
            (vertices, chords.project_vertex_cycle(vertices))
            for vertices in group
        ]
        for vertices, projection in projections:
            if not shorter_span.contains(projection):
                out.append(Cycle.from_vertices(vertices, index))
        for __, projection in projections:
            shorter_span.add(projection)
    return out


def relevant_cycle_lengths(graph: NetworkGraph) -> List[int]:
    """Sorted lengths of the candidate-relevant cycles (multiset)."""
    return sorted(cycle.length for cycle in relevant_cycles(graph))

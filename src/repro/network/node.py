"""Sensor node model."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

Position = Tuple[float, float]


def distance(p: Position, q: Position) -> float:
    """Euclidean distance between two points in the plane."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


@dataclass
class Node:
    """A sensor node: an id, a position, and its boundary/internal role.

    Positions exist only inside the simulator — the coverage algorithms
    never read them.  ``is_boundary`` reflects the paper's assumption that
    each node knows whether it sits in the periphery band.
    """

    id: int
    position: Position
    is_boundary: bool = False
    is_virtual: bool = False

    def distance_to(self, other: "Node") -> float:
        return distance(self.position, other.position)

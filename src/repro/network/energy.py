"""Energy model for duty-cycled sensor nodes.

The paper's motivation for partial coverage is energy: "always-on full
blanket coverage will exhaust network energy rapidly".  This module gives
the simulator a minimal battery model so the lifetime extension
(:mod:`repro.core.lifetime`) can quantify what DCC's sparse coverage sets
buy: nodes outside the coverage set sleep, spending a small fraction of
the active cost, and coverage duty can rotate between shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set


@dataclass(frozen=True)
class EnergyModel:
    """Per-shift energy costs (arbitrary units).

    Defaults give a 10x sleep saving and 100 shifts of always-on life,
    which is in the ballpark of mote-class hardware duty-cycling studies.
    """

    battery_capacity: float = 100.0
    active_cost: float = 1.0
    sleep_cost: float = 0.1

    def __post_init__(self) -> None:
        if self.battery_capacity <= 0:
            raise ValueError("battery capacity must be positive")
        if self.active_cost <= 0:
            raise ValueError("active cost must be positive")
        if not 0 <= self.sleep_cost <= self.active_cost:
            raise ValueError("sleep cost must be in [0, active cost]")

    @property
    def always_on_shifts(self) -> int:
        """Shifts a node survives when active every shift."""
        return int(self.battery_capacity / self.active_cost)


class EnergyState:
    """Residual battery charge of every node in a network."""

    def __init__(self, nodes: Iterable[int], model: EnergyModel) -> None:
        self.model = model
        self.residual: Dict[int, float] = {
            v: model.battery_capacity for v in nodes
        }

    def drain_shift(self, active: Iterable[int]) -> Set[int]:
        """Charge one shift: active nodes pay full cost, the rest sleep.

        Returns the set of nodes that died during this shift.
        """
        active_set = set(active)
        died: Set[int] = set()
        for node, charge in self.residual.items():
            if charge <= 0:
                continue
            cost = (
                self.model.active_cost
                if node in active_set
                else self.model.sleep_cost
            )
            charge -= cost
            self.residual[node] = charge
            if charge <= 0:
                died.add(node)
        return died

    def alive(self) -> Set[int]:
        return {v for v, charge in self.residual.items() if charge > 0}

    def depleted(self) -> Set[int]:
        return {v for v, charge in self.residual.items() if charge <= 0}

    def residual_of(self, node: int) -> float:
        return self.residual[node]

    def recharge(self, node: int) -> None:
        """Reset one node to full capacity (battery swap in the field)."""
        self.residual[node] = self.model.battery_capacity

    def total_residual(self) -> float:
        return sum(max(0.0, charge) for charge in self.residual.values())

"""Radio (communication) models.

The coverage algorithms consume only the connectivity graph; these models
decide which links exist in a simulated deployment.  The paper's confine
coverage does not require the unit disk model — only that every link is
shorter than the maximum communication range ``Rc`` — so besides the UDG
used for comparison with HGC we provide a quasi-UDG and a log-normal
shadowing model (used by the synthetic GreenOrbs trace substrate).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from repro.network.graph import NetworkGraph
from repro.network.node import Position, distance


class RadioModel(ABC):
    """Decides whether two positioned nodes share a communication link."""

    def __init__(self, rc: float) -> None:
        if rc <= 0:
            raise ValueError("communication range must be positive")
        self.rc = rc

    @abstractmethod
    def link_exists(
        self, p: Position, q: Position, rng: random.Random
    ) -> bool:
        """Is there an (undirected) link between nodes at ``p`` and ``q``?"""

    def build_graph(
        self,
        positions: Dict[int, Position],
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> NetworkGraph:
        """Connectivity graph of a deployment under this radio model.

        Uses a uniform grid spatial index so only node pairs within ``Rc``
        of each other are tested, which keeps graph construction near
        linear in the number of nodes.  Stochastic radio models are
        reproducible by default: without an explicit ``rng``, uses
        ``random.Random(seed)``.
        """
        rng = rng if rng is not None else random.Random(seed)
        graph = NetworkGraph(positions.keys())
        cell = self.rc
        buckets: Dict[Tuple[int, int], list] = {}
        for node, (x, y) in positions.items():
            buckets.setdefault((int(x // cell), int(y // cell)), []).append(node)
        for (cx, cy), nodes in buckets.items():
            neighbors_cells = [
                buckets.get((cx + dx, cy + dy), [])
                for dx in (-1, 0, 1)
                for dy in (-1, 0, 1)
            ]
            for u in nodes:
                pu = positions[u]
                for cell_nodes in neighbors_cells:
                    for v in cell_nodes:
                        if v <= u:
                            continue
                        pv = positions[v]
                        if distance(pu, pv) > self.rc:
                            continue
                        if self.link_exists(pu, pv, rng):
                            graph.add_edge(u, v)
        return graph


class UnitDiskRadio(RadioModel):
    """The classical UDG: a link exists iff the distance is at most Rc."""

    def link_exists(self, p: Position, q: Position, rng: random.Random) -> bool:
        return distance(p, q) <= self.rc


class QuasiUnitDiskRadio(RadioModel):
    """Quasi-UDG(alpha): certain links below ``alpha * Rc``, none above Rc.

    In the grey zone ``(alpha * Rc, Rc]`` each link exists independently
    with probability ``grey_link_probability`` — a standard way to model
    irregular radios while keeping every link bounded by ``Rc``, which is
    all that confine coverage needs.
    """

    def __init__(
        self, rc: float, alpha: float = 0.75, grey_link_probability: float = 0.5
    ) -> None:
        super().__init__(rc)
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 <= grey_link_probability <= 1:
            raise ValueError("grey_link_probability must be a probability")
        self.alpha = alpha
        self.grey_link_probability = grey_link_probability

    def link_exists(self, p: Position, q: Position, rng: random.Random) -> bool:
        d = distance(p, q)
        if d <= self.alpha * self.rc:
            return True
        if d > self.rc:
            return False
        return rng.random() < self.grey_link_probability


class LogNormalShadowingRadio(RadioModel):
    """Log-normal shadowing: link iff received power clears a threshold.

    ``RSSI(d) = tx_power - 10 n log10(d / d0) + N(0, sigma)``.  The model
    still hard-caps links at ``Rc`` (beyond which reception is physically
    impossible in our simulations), preserving the paper's sole assumption
    on the communication model.
    """

    def __init__(
        self,
        rc: float,
        tx_power_dbm: float = -35.0,
        path_loss_exponent: float = 3.0,
        reference_distance: float = 1.0,
        shadowing_sigma_db: float = 4.0,
        sensitivity_dbm: float = -90.0,
    ) -> None:
        super().__init__(rc)
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.reference_distance = reference_distance
        self.shadowing_sigma_db = shadowing_sigma_db
        self.sensitivity_dbm = sensitivity_dbm

    def mean_rssi(self, d: float) -> float:
        d = max(d, self.reference_distance * 1e-3)
        return self.tx_power_dbm - 10.0 * self.path_loss_exponent * math.log10(
            d / self.reference_distance
        )

    def sample_rssi(self, d: float, rng: random.Random) -> float:
        return self.mean_rssi(d) + rng.gauss(0.0, self.shadowing_sigma_db)

    def link_exists(self, p: Position, q: Position, rng: random.Random) -> bool:
        d = distance(p, q)
        if d > self.rc:
            return False
        return self.sample_rssi(d, rng) >= self.sensitivity_dbm

"""Node deployments over planar regions.

A deployment places nodes in a *deployment region*; the *target area* that
must be covered is the region shrunk by a periphery band of width at least
``Rc`` (Section III-A), so boundary nodes — those inside the band — always
exist and surround the target.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.network.graph import NetworkGraph
from repro.network.node import Node, Position
from repro.network.radio import RadioModel, UnitDiskRadio


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError("rectangle must have positive width and height")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Position:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Position) -> bool:
        return self.x0 <= p[0] <= self.x1 and self.y0 <= p[1] <= self.y1

    def distance_to_border(self, p: Position) -> float:
        """Distance from an interior point to the rectangle's border."""
        return min(
            p[0] - self.x0, self.x1 - p[0], p[1] - self.y0, self.y1 - p[1]
        )

    def shrink(self, margin: float) -> "Rectangle":
        if 2 * margin >= min(self.width, self.height):
            raise ValueError("margin too large for this rectangle")
        return Rectangle(
            self.x0 + margin, self.y0 + margin, self.x1 - margin, self.y1 - margin
        )

    def sample(self, rng: random.Random) -> Position:
        return (
            rng.uniform(self.x0, self.x1),
            rng.uniform(self.y0, self.y1),
        )

    def perimeter_parameter(self, p: Position) -> float:
        """Arclength position of the border point nearest to ``p``.

        Walks the border counter-clockwise from ``(x0, y0)``.  Used to order
        periphery-band nodes into a boundary cycle.
        """
        x, y = p
        x = min(max(x, self.x0), self.x1)
        y = min(max(y, self.y0), self.y1)
        # Pick the border edge nearest to the point; ties are harmless.
        dists = (
            (y - self.y0, 0),
            (self.x1 - x, 1),
            (self.y1 - y, 2),
            (x - self.x0, 3),
        )
        __, side = min(dists)
        if side == 0:
            return x - self.x0
        if side == 1:
            return self.width + (y - self.y0)
        if side == 2:
            return self.width + self.height + (self.x1 - x)
        return 2 * self.width + self.height + (self.y1 - y)


def deploy_uniform(
    count: int, region: Rectangle, rng: random.Random
) -> Dict[int, Position]:
    """``count`` nodes, independently uniform over the region."""
    if count <= 0:
        raise ValueError("node count must be positive")
    return {i: region.sample(rng) for i in range(count)}


def deploy_poisson(
    intensity: float, region: Rectangle, rng: random.Random
) -> Dict[int, Position]:
    """A Poisson point process with the given intensity (nodes per unit area)."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    mean = intensity * region.area
    count = _sample_poisson(mean, rng)
    return {i: region.sample(rng) for i in range(count)}


def _sample_poisson(mean: float, rng: random.Random) -> int:
    """Knuth for small means, normal approximation for large ones."""
    if mean < 30:
        threshold = math.exp(-mean)
        k, p = 0, 1.0
        while True:
            p *= rng.random()
            if p <= threshold:
                return k
            k += 1
    return max(0, round(rng.gauss(mean, math.sqrt(mean))))


def deploy_grid(
    columns: int,
    rows: int,
    region: Rectangle,
    rng: random.Random,
    jitter: float = 0.0,
) -> Dict[int, Position]:
    """A ``columns x rows`` grid, optionally perturbed by uniform jitter."""
    if columns < 2 or rows < 2:
        raise ValueError("grid needs at least 2x2 nodes")
    dx = region.width / (columns - 1)
    dy = region.height / (rows - 1)
    out: Dict[int, Position] = {}
    for r in range(rows):
        for c in range(columns):
            x = region.x0 + c * dx + rng.uniform(-jitter, jitter)
            y = region.y0 + r * dy + rng.uniform(-jitter, jitter)
            x = min(max(x, region.x0), region.x1)
            y = min(max(y, region.y0), region.y1)
            out[r * columns + c] = (x, y)
    return out


@dataclass
class Network:
    """A deployed, connected sensor network instance.

    Bundles everything the experiments need: the connectivity graph, node
    positions (simulator-only ground truth), ranges, and the boundary
    labelling derived from the periphery band.
    """

    graph: NetworkGraph
    positions: Dict[int, Position]
    region: Rectangle
    rc: float
    rs: float
    boundary_band: float
    boundary_nodes: Set[int] = field(default_factory=set)

    @property
    def gamma(self) -> float:
        """The sensing ratio Rc / Rs."""
        return self.rc / self.rs

    @property
    def target_area(self) -> Rectangle:
        return self.region.shrink(self.boundary_band)

    @property
    def internal_nodes(self) -> Set[int]:
        return self.graph.vertex_set() - self.boundary_nodes

    def nodes(self) -> List[Node]:
        return [
            Node(i, self.positions[i], is_boundary=i in self.boundary_nodes)
            for i in sorted(self.graph.vertices())
        ]

    def classify_boundary(self) -> None:
        """Label nodes in the periphery band as boundary nodes."""
        self.boundary_nodes = {
            i
            for i, p in self.positions.items()
            if i in self.graph
            and self.region.distance_to_border(p) <= self.boundary_band
        }


def build_network(
    count: int,
    region: Rectangle,
    rc: float,
    rs: float,
    seed: int = 0,
    radio: Optional[RadioModel] = None,
    boundary_band: Optional[float] = None,
    require_connected: bool = True,
    max_attempts: int = 50,
) -> Network:
    """Deploy a random network and keep its giant component.

    Redeploys (up to ``max_attempts`` times) until the giant component
    contains at least 95% of the nodes when ``require_connected`` is set,
    mirroring the dense deployments used in the paper's simulations.
    """
    rng = random.Random(seed)
    radio = radio or UnitDiskRadio(rc)
    band = boundary_band if boundary_band is not None else rc
    for __ in range(max_attempts):
        positions = deploy_uniform(count, region, rng)
        graph = radio.build_graph(positions, rng)
        components = graph.connected_components()
        giant = max(components, key=len)
        if not require_connected or len(giant) >= 0.95 * count:
            graph = graph.induced_subgraph(giant)
            positions = {i: positions[i] for i in giant}
            network = Network(
                graph=graph,
                positions=positions,
                region=region,
                rc=rc,
                rs=rs,
                boundary_band=band,
            )
            network.classify_boundary()
            return network
    raise RuntimeError(
        "could not deploy a (near-)connected network; "
        "increase density or relax require_connected"
    )


def network_for_average_degree(
    count: int,
    average_degree: float,
    rc: float = 1.0,
    rs: float = 1.0,
    seed: int = 0,
    radio: Optional[RadioModel] = None,
) -> Network:
    """A square-region network sized so the UDG average degree matches.

    For a UDG over a square of side ``L`` the expected degree is about
    ``count * pi * rc^2 / L^2`` (ignoring border effects); the paper's main
    simulation uses 1600 nodes at average degree ~25.
    """
    if average_degree <= 0:
        raise ValueError("average degree must be positive")
    side = math.sqrt(count * math.pi * rc * rc / average_degree)
    region = Rectangle(0.0, 0.0, side, side)
    return build_network(count, region, rc, rs, seed=seed, radio=radio)

"""Lightweight undirected graph used throughout the library.

``NetworkGraph`` is a thin adjacency-set structure tuned for the access
patterns of the coverage algorithms: k-hop neighbourhood extraction, vertex
deletion, induced subgraphs, and connectivity queries.  It intentionally does
not depend on :mod:`networkx` for its hot paths, but converts to and from
``networkx.Graph`` for interoperability with deployments and visualisation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the edge ``(u, v)`` with endpoints in sorted order."""
    if u == v:
        raise ValueError("self-loops are not allowed in a communication graph")
    return (u, v) if u < v else (v, u)


class NetworkGraph:
    """A simple undirected graph without self-loops or parallel edges.

    Vertices are hashable identifiers (node ids are plain ``int`` in this
    library).  The structure is mutable; the coverage scheduler removes
    vertices as it thins the network.  Every mutation bumps :attr:`version`,
    which lets caches layered on top (notably
    :class:`repro.topology.LocalTopologyEngine`) detect staleness cheaply.
    """

    __slots__ = ("_adj", "_version", "_csr")

    def __init__(
        self,
        vertices: Iterable[int] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._version = 0
        self._csr = None
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation."""
        return self._version

    def csr(self):
        """The graph's CSR mirror (see :mod:`repro.cycles.kernel`).

        Built on first request and cached; any mutation applied through
        the mirror keeps it in lock-step, while an out-of-band mutation
        bumps :attr:`version` past the mirror's and triggers a rebuild
        here.  Consumers holding a fresh mirror get array-based BFS and
        span tests without ever copying adjacency.
        """
        from repro.cycles.kernel import CSRGraph

        if self._csr is None or self._csr.version != self._version:
            self._csr = CSRGraph(self)
        return self._csr

    # -- pickling (drop the CSR mirror: cheap to rebuild, heavy to ship)
    def __getstate__(self):
        return {"_adj": self._adj, "_version": self._version}

    def __setstate__(self, state) -> None:
        self._adj = state["_adj"]
        self._version = state["_version"]
        self._csr = None

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph) -> "NetworkGraph":
        """Build a :class:`NetworkGraph` from a ``networkx.Graph``."""
        out = cls(graph.nodes(), graph.edges())
        return out

    def to_networkx(self):
        """Return an equivalent ``networkx.Graph``."""
        import networkx as nx

        out = nx.Graph()
        out.add_nodes_from(self._adj)
        out.add_edges_from(self.edges())
        return out

    def copy(self) -> "NetworkGraph":
        """Return an independent copy of the graph (no shared CSR mirror)."""
        clone = NetworkGraph()
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # Basic mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        self._adj.setdefault(v, set())
        self._version += 1

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError("self-loops are not allowed")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise KeyError(f"edge ({u}, {v}) not in graph") from exc
        self._version += 1

    def remove_vertex(self, v: int) -> Set[int]:
        """Delete ``v`` in place; returns its former neighbour set."""
        try:
            nbrs = self._adj.pop(v)
        except KeyError as exc:
            raise KeyError(f"vertex {v} not in graph") from exc
        for u in nbrs:
            self._adj[u].discard(v)
        self._version += 1
        return nbrs

    def remove_vertices(self, vs: Iterable[int]) -> None:
        for v in vs:
            self.remove_vertex(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, v: int) -> Set[int]:
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def vertices(self) -> List[int]:
        return list(self._adj)

    def vertex_set(self) -> Set[int]:
        return set(self._adj)

    def edges(self) -> List[Edge]:
        out: List[Edge] = []
        for u, nbrs in self._adj.items():
            for v in sorted(nbrs):
                if u < v:
                    out.append((u, v))
        return out

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self.num_edges() / len(self._adj)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_distances(
        self, source: int, cutoff: Optional[int] = None
    ) -> Dict[int, int]:
        """Hop distances from ``source``, optionally truncated at ``cutoff``."""
        csr = self._csr
        if csr is not None and csr.version == self._version:
            # Array fast path: only when a fresh mirror already exists,
            # so one-shot callers never pay a build for a single BFS.
            return csr.bfs_distances(source, cutoff)
        if source not in self._adj:
            raise KeyError(f"vertex {source} not in graph")
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            d = dist[u]
            if cutoff is not None and d >= cutoff:
                continue
            for w in sorted(self._adj[u]):
                if w not in dist:
                    dist[w] = d + 1
                    frontier.append(w)
        return dist

    def k_hop_neighborhood(self, v: int, k: int) -> Set[int]:
        """Vertices within ``k`` hops of ``v``, excluding ``v`` itself.

        This is :math:`N^k_H(v)` in the paper's notation.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        dist = self.bfs_distances(v, cutoff=k)
        dist.pop(v, None)
        return set(dist)

    def induced_subgraph(self, vs: Iterable[int]) -> "NetworkGraph":
        """Vertex-induced subgraph :math:`H[X]`."""
        keep = set(vs)
        missing = keep - set(self._adj)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(missing)[:5]}")
        sub = NetworkGraph()
        sub._adj = {v: self._adj[v] & keep for v in keep}
        return sub

    def subgraph_view(self, vs: Iterable[int]) -> "SubgraphView":
        """A read-only induced-subgraph *view* (no adjacency copy).

        Rows are intersected with the kept vertex set lazily and cached, so
        a consumer that reads only part of the subgraph never pays for the
        rest.  The view snapshots nothing: it reflects the base graph at the
        moment rows are first materialised, so it must not outlive mutations
        of the base graph (:class:`repro.topology.LocalTopologyEngine`
        enforces this with :attr:`version`).
        """
        return SubgraphView(self, vs)

    def punctured_neighborhood_graph(self, v: int, k: int) -> "NetworkGraph":
        """The paper's :math:`\\Gamma^k_H(v) = H[N^k_H(v)]` (excludes ``v``)."""
        return self.induced_subgraph(self.k_hop_neighborhood(v, k))

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        start = next(iter(self._adj))
        return len(self.bfs_distances(start)) == len(self._adj)

    def connected_components(self) -> List[Set[int]]:
        seen: Set[int] = set()
        comps: List[Set[int]] = []
        for v in self._adj:
            if v in seen:
                continue
            comp = set(self.bfs_distances(v))
            seen |= comp
            comps.append(comp)
        return comps

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """A shortest path as a vertex list, or ``None`` if disconnected."""
        if source not in self._adj or target not in self._adj:
            raise KeyError("endpoint not in graph")
        if source == target:
            return [source]
        parent: Dict[int, int] = {source: source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for w in sorted(self._adj[u]):
                if w in parent:
                    continue
                parent[w] = u
                if w == target:
                    path = [w]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                frontier.append(w)
        return None

    def edge_set(self) -> Set[FrozenSet[int]]:
        return {frozenset(e) for e in self.edges()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkGraph(|V|={len(self)}, |E|={self.num_edges()})"


class SubgraphView:
    """Read-only induced subgraph over a base :class:`NetworkGraph`.

    Implements the query/traversal surface of :class:`NetworkGraph` (the
    duck type consumed by the cycle-space code) without copying adjacency:
    rows are intersected with the kept set on first access and cached.
    """

    __slots__ = ("_base", "_keep", "_rows")

    def __init__(self, base: NetworkGraph, vs: Iterable[int]) -> None:
        keep = set(vs)
        missing = keep - set(base._adj)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(missing)[:5]}")
        self._base = base
        self._keep = keep
        self._rows: Dict[int, Set[int]] = {}

    # -- queries -------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self._keep

    def __len__(self) -> int:
        return len(self._keep)

    def __iter__(self) -> Iterator[int]:
        return iter(self._keep)

    def neighbors(self, v: int) -> Set[int]:
        row = self._rows.get(v)
        if row is None:
            if v not in self._keep:
                raise KeyError(f"vertex {v} not in view")
            row = self._base._adj[v] & self._keep
            self._rows[v] = row
        return row

    def degree(self, v: int) -> int:
        return len(self.neighbors(v))

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._keep and v in self._keep and self._base.has_edge(u, v)

    def vertices(self) -> List[int]:
        return sorted(self._keep)

    def vertex_set(self) -> Set[int]:
        return set(self._keep)

    def edges(self) -> List[Edge]:
        out: List[Edge] = []
        for u in sorted(self._keep):
            for v in sorted(self.neighbors(u)):
                if u < v:
                    out.append((u, v))
        return out

    def num_edges(self) -> int:
        return sum(len(self.neighbors(v)) for v in self._keep) // 2

    # -- traversal (mirrors NetworkGraph) ------------------------------
    def bfs_distances(
        self, source: int, cutoff: Optional[int] = None
    ) -> Dict[int, int]:
        if source not in self._keep:
            raise KeyError(f"vertex {source} not in view")
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            d = dist[u]
            if cutoff is not None and d >= cutoff:
                continue
            for w in sorted(self.neighbors(u)):
                if w not in dist:
                    dist[w] = d + 1
                    frontier.append(w)
        return dist

    def is_connected(self) -> bool:
        if not self._keep:
            return True
        start = next(iter(self._keep))
        return len(self.bfs_distances(start)) == len(self._keep)

    def connected_components(self) -> List[Set[int]]:
        seen: Set[int] = set()
        comps: List[Set[int]] = []
        for v in sorted(self._keep):
            if v in seen:
                continue
            comp = set(self.bfs_distances(v))
            seen |= comp
            comps.append(comp)
        return comps

    def to_graph(self) -> NetworkGraph:
        """Materialise the view as an independent :class:`NetworkGraph`."""
        return self._base.induced_subgraph(self._keep)

    def signature(self) -> Tuple[Tuple[int, ...], Tuple[Edge, ...]]:
        """Canonical content key: sorted vertices and sorted edges.

        Two views with equal signatures denote the same labelled subgraph,
        so any pure function of the subgraph (connectivity, short-cycle
        span, ...) can be memoised on it.
        """
        return tuple(sorted(self._keep)), tuple(sorted(self.edges()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubgraphView(|V|={len(self)})"

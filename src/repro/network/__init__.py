"""Network substrate: graphs, deployments, radio models."""

from repro.network.energy import EnergyModel, EnergyState
from repro.network.graph import Edge, NetworkGraph, SubgraphView, canonical_edge

__all__ = [
    "Edge",
    "EnergyModel",
    "EnergyState",
    "NetworkGraph",
    "SubgraphView",
    "canonical_edge",
]

"""Canonical synthetic topologies used by tests, examples and benchmarks.

The star of this module is :func:`mobius_band_network` — the paper's
Figure 1: a network whose Rips complex triangulates a Möbius band.  Its
outer boundary is the sum of all triangles (hence 3-partitionable, so the
cycle-partition criterion certifies coverage), yet its first homology group
is non-trivial (the core circle does not bound), so the homology-group
criterion of HGC wrongly reports a coverage hole.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.graph import NetworkGraph
from repro.network.node import Position, distance


def grid_neighbor_pairs(
    positions: Dict[int, Position], radius: float
) -> List[Tuple[int, int]]:
    """All unordered node pairs within ``radius``, sorted.

    A uniform grid spatial index with ``radius``-sized cells: each node
    is tested only against nodes in its own and the eight adjacent
    cells, so the pair scan is near linear in the node count for
    bounded-density deployments (the O(n^2) all-pairs loop caps out
    around 10k nodes; this constructs 100k+).  The returned list is
    sorted ``(u, v)`` with ``u < v`` — independent of bucket layout, so
    consumers iterate identically to an all-pairs scan.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for node, (x, y) in positions.items():
        buckets.setdefault((int(x // radius), int(y // radius)), []).append(node)
    pairs: List[Tuple[int, int]] = []
    for (cx, cy), nodes in buckets.items():
        neighbor_cells = [
            buckets.get((cx + dx, cy + dy), [])
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ]
        for u in nodes:
            pu = positions[u]
            for cell_nodes in neighbor_cells:
                for v in cell_nodes:
                    if v <= u:
                        continue
                    if distance(pu, positions[v]) <= radius:
                        pairs.append((u, v))
    pairs.sort()
    return pairs


def geometric_graph(
    positions: Dict[int, Position], radius: float
) -> NetworkGraph:
    """The unit-disk connectivity graph of a positioned deployment.

    The scale-friendly constructor for deterministic (UDG) geometric
    graphs — stochastic radio models go through
    :meth:`repro.network.radio.RadioModel.build_graph`, whose rng
    consumption order is part of the seeded contract.
    """
    graph = NetworkGraph(positions.keys())
    for u, v in grid_neighbor_pairs(positions, radius):
        graph.add_edge(u, v)
    return graph


@dataclass
class MobiusBandNetwork:
    """The Figure-1 network: an 8-vertex rim double-covering a 4-vertex core."""

    graph: NetworkGraph
    outer_boundary: List[int]
    core_cycle: List[int]
    triangles: List[Tuple[int, int, int]]


def mobius_band_network(rim_size: int = 8) -> MobiusBandNetwork:
    """A triangulated Möbius band with ``rim_size`` boundary vertices.

    ``rim_size`` must be even and at least 8; the core circle has
    ``rim_size / 2`` vertices and the rim winds around it twice.  Vertices
    ``0 .. rim_size-1`` are the rim (the paper's ``a..h``), vertices
    ``rim_size ..`` are the core (the paper's ``1..4``).
    """
    if rim_size < 8 or rim_size % 2:
        raise ValueError("rim_size must be an even integer >= 8")
    core_size = rim_size // 2
    rim = list(range(rim_size))
    core = [rim_size + j for j in range(core_size)]

    graph = NetworkGraph(rim + core)
    triangles: List[Tuple[int, int, int]] = []

    def core_at(i: int) -> int:
        return core[i % core_size]

    for i in range(rim_size):
        nxt = rim[(i + 1) % rim_size]
        graph.add_edge(rim[i], nxt)               # rim edge
        graph.add_edge(rim[i], core_at(i))         # vertical edge
        graph.add_edge(rim[i], core_at(i + 1))     # diagonal edge
    for j in range(core_size):
        graph.add_edge(core[j], core[(j + 1) % core_size])  # core edge

    for i in range(rim_size):
        nxt = rim[(i + 1) % rim_size]
        triangles.append(tuple(sorted((rim[i], nxt, core_at(i + 1)))))
        triangles.append(tuple(sorted((rim[i], core_at(i), core_at(i + 1)))))

    return MobiusBandNetwork(
        graph=graph,
        outer_boundary=rim,
        core_cycle=list(core),
        triangles=triangles,
    )


@dataclass
class GridNetwork:
    """A synthetic grid with positions and an explicit outer boundary cycle."""

    graph: NetworkGraph
    positions: Dict[int, Position]
    outer_boundary: List[int]


def triangulated_grid(
    columns: int, rows: int, spacing: float = 1.0
) -> GridNetwork:
    """A ``columns x rows`` grid with one diagonal per cell (triangular mesh).

    Every inner face is a triangle, so the topology is 3-confine-coverable;
    the outer boundary is the grid's perimeter cycle.
    """
    if columns < 3 or rows < 3:
        raise ValueError("grid needs at least 3x3 nodes")

    def nid(r: int, c: int) -> int:
        return r * columns + c

    graph = NetworkGraph()
    positions: Dict[int, Position] = {}
    for r in range(rows):
        for c in range(columns):
            graph.add_vertex(nid(r, c))
            positions[nid(r, c)] = (c * spacing, r * spacing)
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                graph.add_edge(nid(r, c), nid(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(nid(r, c), nid(r + 1, c))
            if c + 1 < columns and r + 1 < rows:
                graph.add_edge(nid(r, c), nid(r + 1, c + 1))

    boundary = (
        [nid(0, c) for c in range(columns)]
        + [nid(r, columns - 1) for r in range(1, rows)]
        + [nid(rows - 1, c) for c in range(columns - 2, -1, -1)]
        + [nid(r, 0) for r in range(rows - 2, 0, -1)]
    )
    return GridNetwork(graph=graph, positions=positions, outer_boundary=boundary)


def square_grid(columns: int, rows: int, spacing: float = 1.0) -> GridNetwork:
    """A plain grid (no diagonals): every inner face is a 4-cycle."""
    mesh = triangulated_grid(columns, rows, spacing)
    graph = NetworkGraph(mesh.graph.vertices())
    for u, v in mesh.graph.edges():
        ru, cu = divmod(u, columns)
        rv, cv = divmod(v, columns)
        if abs(ru - rv) + abs(cu - cv) == 1:  # keep axis edges only
            graph.add_edge(u, v)
    return GridNetwork(
        graph=graph,
        positions=mesh.positions,
        outer_boundary=mesh.outer_boundary,
    )


@dataclass
class AnnulusNetwork:
    """Two concentric boundary cycles with a triangulated band between them."""

    graph: NetworkGraph
    positions: Dict[int, Position]
    outer_boundary: List[int]
    inner_boundary: List[int]


def annulus_network(
    outer_size: int = 16,
    rings: int = 3,
    outer_radius: float = 4.0,
    inner_radius: float = 1.5,
) -> AnnulusNetwork:
    """Concentric rings of equal size, triangulated between neighbours.

    Models a multiply-connected target area (a hole in the middle): the
    inner ring is an inner boundary that should be cone-filled before
    scheduling.
    """
    if outer_size < 4 or rings < 2:
        raise ValueError("need at least 4 nodes per ring and 2 rings")
    graph = NetworkGraph()
    positions: Dict[int, Position] = {}
    ring_ids: List[List[int]] = []
    for ring in range(rings):
        radius = outer_radius - (outer_radius - inner_radius) * ring / (rings - 1)
        ids = []
        for i in range(outer_size):
            node = ring * outer_size + i
            angle = 2 * math.pi * i / outer_size
            graph.add_vertex(node)
            positions[node] = (radius * math.cos(angle), radius * math.sin(angle))
            ids.append(node)
        ring_ids.append(ids)
    for ids in ring_ids:
        for i in range(outer_size):
            graph.add_edge(ids[i], ids[(i + 1) % outer_size])
    for ring in range(rings - 1):
        a, b = ring_ids[ring], ring_ids[ring + 1]
        for i in range(outer_size):
            graph.add_edge(a[i], b[i])
            graph.add_edge(a[i], b[(i + 1) % outer_size])
    return AnnulusNetwork(
        graph=graph,
        positions=positions,
        outer_boundary=list(ring_ids[0]),
        inner_boundary=list(ring_ids[-1]),
    )


def cycle_graph(length: int) -> NetworkGraph:
    """A bare cycle of the given length."""
    if length < 3:
        raise ValueError("cycle length must be at least 3")
    return NetworkGraph(
        range(length), [(i, (i + 1) % length) for i in range(length)]
    )


def wheel_graph(rim: int) -> NetworkGraph:
    """A hub joined to every vertex of a rim cycle (all faces triangles)."""
    graph = cycle_graph(rim)
    hub = rim
    graph.add_vertex(hub)
    for i in range(rim):
        graph.add_edge(hub, i)
    return graph

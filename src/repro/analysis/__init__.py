"""Experiment drivers and metrics for the paper's evaluation figures."""

from repro.analysis.experiments import (
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    TraceConfineResult,
    run_fig1_mobius,
    run_fig2_vertex_deletion,
    run_fig3_confine_size,
    run_fig4_hgc_comparison,
    run_fig5_rssi_cdf,
    run_fig6_trace,
    run_fig7_trace,
    run_trace_confine,
)
from repro.analysis.sweeps import (
    SweepResult,
    parameter_grid,
    run_sweep,
)
from repro.analysis.metrics import (
    QualityOfCoverage,
    mean,
    normalized_sizes,
    saved_node_ratio,
)

__all__ = [
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "QualityOfCoverage",
    "SweepResult",
    "TraceConfineResult",
    "mean",
    "normalized_sizes",
    "run_fig1_mobius",
    "run_fig2_vertex_deletion",
    "run_fig3_confine_size",
    "run_fig4_hgc_comparison",
    "run_fig5_rssi_cdf",
    "run_fig6_trace",
    "run_fig7_trace",
    "parameter_grid",
    "run_sweep",
    "run_trace_confine",
    "saved_node_ratio",
]

"""Evaluation metrics used by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.geometry.coverage_eval import CoverageReport


def saved_node_ratio(hgc_size: int, dcc_size: int) -> float:
    """The paper's lambda: ``(n1 - n2) / n1`` (Figure 4's y-axis).

    ``n1`` is the coverage-set size found by HGC and ``n2`` the one found
    by DCC; positive values mean DCC needs fewer active nodes.
    """
    if hgc_size <= 0:
        raise ValueError("HGC coverage set size must be positive")
    return (hgc_size - dcc_size) / hgc_size


def normalized_sizes(sizes: Dict[int, float], base_tau: int = 3) -> Dict[int, float]:
    """Sizes divided by the ``base_tau`` entry (Figure 3's y-axis)."""
    if base_tau not in sizes:
        raise KeyError(f"no size recorded for the base confine size {base_tau}")
    base = sizes[base_tau]
    if base <= 0:
        raise ValueError("base coverage set size must be positive")
    return {tau: size / base for tau, size in sizes.items()}


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


@dataclass(frozen=True)
class QualityOfCoverage:
    """Measured QoC of a schedule, from the geometric referee."""

    covered_fraction: float
    max_hole_diameter: float
    num_holes: int

    @classmethod
    def from_report(cls, report: CoverageReport) -> "QualityOfCoverage":
        return cls(
            covered_fraction=report.covered_fraction,
            max_hole_diameter=report.max_hole_diameter,
            num_holes=len(report.holes),
        )

    def meets(self, max_hole_diameter: float, slack: float = 1e-9) -> bool:
        return self.max_hole_diameter <= max_hole_diameter + slack

"""Parameter-sweep infrastructure with CSV export.

The paper's evaluation is a family of parameter sweeps (confine size,
sensing ratio, hole-diameter requirement).  This module gives downstream
users the same machinery: declare a grid of parameters, run a callable per
cell (optionally several seeded repetitions), collect rows, aggregate and
write CSV — all without pulling in pandas.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

Row = Dict[str, Any]


@dataclass
class SweepResult:
    """Rows produced by a sweep, with simple aggregation helpers."""

    rows: List[Row] = field(default_factory=list)

    def columns(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def filter(self, **criteria: Any) -> "SweepResult":
        matched = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(rows=matched)

    def values(self, column: str) -> List[Any]:
        return [row[column] for row in self.rows if column in row]

    def mean_by(self, group_columns: Sequence[str], value_column: str) -> Dict:
        """Group rows by the given columns and average a numeric column."""
        totals: Dict[tuple, List[float]] = {}
        for row in self.rows:
            key = tuple(row.get(col) for col in group_columns)
            if value_column in row:
                totals.setdefault(key, []).append(float(row[value_column]))
        return {
            key: sum(values) / len(values) for key, values in totals.items()
        }

    def to_csv(self, path: str) -> None:
        columns = self.columns()
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path: str) -> "SweepResult":
        with open(path, newline="", encoding="utf-8") as handle:
            return cls(rows=[dict(row) for row in csv.DictReader(handle)])

    def __len__(self) -> int:
        return len(self.rows)


def parameter_grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """The cartesian product of named parameter axes, as dicts."""
    names = list(axes)
    out: List[Dict[str, Any]] = []
    for combo in itertools.product(*(list(axes[name]) for name in names)):
        out.append(dict(zip(names, combo)))
    return out


def _sweep_cell(
    func: Callable[..., Mapping[str, Any]],
    params: Dict[str, Any],
    seed: int,
    catch_errors: bool,
) -> Row:
    """One grid cell as a self-contained (picklable) row computation."""
    row: Row = dict(params)
    row["seed"] = seed
    try:
        measured = func(**params, seed=seed)
    except Exception as exc:  # noqa: BLE001 - explicit opt-in
        if not catch_errors:
            raise
        row["error"] = repr(exc)
        return row
    row.update(measured)
    return row


def run_sweep(
    func: Callable[..., Mapping[str, Any]],
    grid: Sequence[Dict[str, Any]],
    seeds: Sequence[int] = (0,),
    on_error: str = "raise",
    workers: Optional[int] = 1,
    report_dir: Optional[str] = None,
    report_name: str = "sweep",
) -> SweepResult:
    """Run ``func(**params, seed=s)`` over a grid times seeds.

    ``func`` returns a mapping of measured values; each result row merges
    the cell parameters, the seed, and the measurements.  ``on_error``:
    ``"raise"`` propagates exceptions, ``"skip"`` records a row with an
    ``error`` column instead.

    Cells are independent by construction (each builds its own state
    from its own seed), so ``workers`` (``1`` = serial, ``0``/``None`` =
    auto-detect) fans them over a process pool via
    :func:`repro.parallel.parallel_starmap`.  Rows come back in grid
    x seed order either way — parallel runs are byte-identical to
    serial ones.  Parallel cells require a picklable (module-level)
    ``func``; with ``on_error="raise"`` the first failing cell in grid
    order raises, though later cells may already have run.

    With ``report_dir`` the sweep runs under its own observation (a
    fresh tracer + metrics registry, installed ambiently so every cell
    is captured wherever it executes) and writes a validated
    ``repro.run_report/v1`` document to
    ``<report_dir>/<report_name>.json``.  The report is identical at
    any worker count once :func:`repro.obs.export.strip_volatile` is
    applied — the property suite holds serial vs fanned-out runs to
    that.  If an ambient observation is already active, the sweep's
    spans and metrics are merged back into it afterwards.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    from repro.parallel import parallel_starmap

    catch_errors = on_error == "skip"
    tasks = [
        (func, params, seed, catch_errors)
        for params in grid
        for seed in seeds
    ]
    from repro.obs.tracer import current_metrics, current_tracer

    if report_dir is None:
        with current_tracer().trace(
            "sweep.run", cells=len(grid), seeds=len(seeds)
        ):
            rows = parallel_starmap(_sweep_cell, tasks, workers=workers)
        return SweepResult(rows=rows)

    from repro.obs import (
        MetricsRegistry,
        Tracer,
        build_run_report,
        observe,
        validate_run_report,
        write_run_report,
    )

    ambient_tracer = current_tracer()
    ambient_metrics = current_metrics()
    tracer, metrics = Tracer(), MetricsRegistry()
    with observe(tracer, metrics):
        with tracer.trace("sweep.run", cells=len(grid), seeds=len(seeds)):
            rows = parallel_starmap(_sweep_cell, tasks, workers=workers)
    report = build_run_report(
        report_name,
        tracer,
        metrics,
        meta={
            "cells": len(grid),
            "seeds": list(seeds),
            "workers": workers,
        },
    )
    validate_run_report(report)
    target = Path(report_dir)
    target.mkdir(parents=True, exist_ok=True)
    write_run_report(report, str(target / f"{report_name}.json"))
    if ambient_tracer.enabled:
        # v2 payload: the sweep's spans keep their true timeline offsets
        # when merged into the ambient tracer (same-process epochs).
        ambient_tracer.import_spans(tracer.export_payload())
    if ambient_metrics is not None:
        ambient_metrics.merge(metrics)
    return SweepResult(rows=rows)

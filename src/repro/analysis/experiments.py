"""Experiment drivers, one per figure of the paper's evaluation.

Every driver returns a small result dataclass with the same rows/series the
paper reports, plus a ``format_table()`` for human-readable output.  The
default parameters are scaled down from the paper's (1600 nodes x 100 runs
on their hardware) so each driver finishes in seconds-to-minutes of pure
Python; ``paper_scale=True`` restores the published sizes.  DESIGN.md maps
each driver to its benchmark target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.boundary.geometric import outer_boundary_cycle
from repro.core.confine import ConfineRequirement
from repro.core.criterion import is_tau_partitionable
from repro.core.scheduler import dcc_schedule
from repro.homology.hgc import hgc_schedule, hgc_verify
from repro.network.deployment import Network, network_for_average_degree
from repro.network.topologies import mobius_band_network
from repro.traces.greenorbs import (
    GreenOrbsConfig,
    GreenOrbsTrace,
    generate_greenorbs_trace,
)
from repro.traces.rssi import rssi_cdf


def _prepare_network(
    count: int, degree: float, seed: int, rs: float = 1.0
) -> Tuple[Network, List[int], Set[int]]:
    """Deploy, extract the outer boundary, and build the protected set."""
    network = network_for_average_degree(count, degree, rc=1.0, rs=rs, seed=seed)
    cycle = outer_boundary_cycle(network)
    protected = set(network.boundary_nodes) | set(cycle)
    return network, cycle, protected


def _prepare_hgc_verified_network(
    count: int, degree: float, seed: int, max_attempts: int = 40
) -> Tuple[Network, List[int], Set[int]]:
    """A deployment that passes HGC's own verification.

    The HGC comparison (Figure 4) is only meaningful in the regime where
    Ghrist et al.'s method applies: the initial network must verify
    (trivial relative H1 plus the boundary certificate).  Random
    deployments contain unfillable 4-holes with appreciable probability,
    so we search successive seeds for a verifying instance.
    """
    for attempt in range(max_attempts):
        network, cycle, protected = _prepare_network(
            count, degree, seed + 1000 * attempt
        )
        if hgc_verify(network.graph, [cycle]).verified:
            return network, cycle, protected
    raise RuntimeError(
        f"no HGC-verified deployment found in {max_attempts} attempts; "
        "increase density"
    )


# ----------------------------------------------------------------------
# Figure 1 — Möbius band: criterion comparison
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    hgc_relative_betti_1: int
    hgc_verified: bool
    dcc_partitionable: bool

    def format_table(self) -> str:
        return (
            "Figure 1 (Moebius band network):\n"
            f"  HGC relative b1 = {self.hgc_relative_betti_1} -> "
            f"verified={self.hgc_verified} (false negative)\n"
            f"  DCC 3-partitionable = {self.dcc_partitionable} (correct)"
        )


def run_fig1_mobius() -> Fig1Result:
    """HGC wrongly rejects the covered Möbius network; DCC accepts it."""
    mobius = mobius_band_network()
    verification = hgc_verify(mobius.graph, [mobius.outer_boundary])
    partitionable = is_tau_partitionable(mobius.graph, [mobius.outer_boundary], 3)
    return Fig1Result(
        hgc_relative_betti_1=verification.relative_betti_1,
        hgc_verified=verification.verified,
        dcc_partitionable=partitionable,
    )


# ----------------------------------------------------------------------
# Figure 2 — maximal vertex deletion at several confine sizes
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    total_nodes: int
    protected_nodes: int
    active_by_tau: Dict[int, int]
    #: per-tau criterion outcomes; ``None`` when the run skipped the
    #: full-graph criterion check (``criterion=False`` at 100k+ scale).
    initially_partitionable: Dict[int, Optional[bool]]
    finally_partitionable: Dict[int, Optional[bool]]

    def preserved(self, tau: int) -> bool:
        """Theorem 5: scheduling never changes partitionability."""
        return (
            self.initially_partitionable[tau] == self.finally_partitionable[tau]
        )

    def format_table(self) -> str:
        lines = [
            "Figure 2 (maximal vertex deletion):",
            f"  network: {self.total_nodes} nodes "
            f"({self.protected_nodes} boundary/protected)",
        ]
        for tau in sorted(self.active_by_tau):
            lines.append(
                f"  tau={tau}: coverage set {self.active_by_tau[tau]:4d} nodes, "
                f"partitionable {self.initially_partitionable[tau]} -> "
                f"{self.finally_partitionable[tau]} "
                f"(preserved={self.preserved(tau)})"
            )
        return "\n".join(lines)


def _fig2_cell(
    count: int,
    degree: float,
    seed: int,
    tau: int,
    shards: Optional[int] = None,
    criterion: bool = True,
) -> Tuple[int, int, Optional[bool], Optional[bool]]:
    """One confine size of Figure 2, rebuilt from seeds (picklable)."""
    network, cycle, protected = _prepare_network(count, degree, seed)
    initially = (
        is_tau_partitionable(network.graph, [cycle], tau) if criterion else None
    )
    result = dcc_schedule(
        network.graph, protected, tau, rng=random.Random(seed + tau),
        shards=shards,
    )
    finally_ = (
        is_tau_partitionable(result.active, [cycle], tau) if criterion else None
    )
    return tau, result.num_active, initially, finally_


def run_fig2_vertex_deletion(
    count: int = 420,
    degree: float = 25.0,
    taus: Sequence[int] = (3, 4, 5, 6),
    seed: int = 0,
    workers: Optional[int] = 1,
    shards: Optional[int] = None,
    criterion: bool = True,
) -> Fig2Result:
    """One network thinned for each confine size, as in Figure 2 (b-e).

    The per-tau runs share nothing but the (deterministically rebuilt)
    deployment, so ``workers`` fans them across processes; results are
    identical to the serial loop at any worker count.  Under an active
    observation the serial shortcut is skipped too: every cell goes
    through :func:`parallel_starmap`'s per-task capture, so run-reports
    are worker-count invariant (modulo wall-clock fields), not just the
    figure tables.

    ``shards`` runs every cell's schedule over halo-exchange region
    shards (vertex-identical results — see :mod:`repro.shard`).  A
    sharded run keeps the cells serial and spends ``workers`` on the
    schedule instead: each cell's shards are hosted by a
    coordinator-driven worker pool
    (:class:`~repro.parallel.runner.ShardWorkerPool`), which keeps the
    chaos/attribution accounting in this process.
    ``criterion=False`` skips the full-graph partitionability checks,
    which are the scaling bottleneck past ~10k nodes (the schedule
    itself is local work; the criterion is a whole-graph GF(2) span).
    The 100k fig2-style run uses both together.
    """
    from repro.obs.tracer import current_metrics, current_tracer
    from repro.parallel import parallel_starmap, resolve_workers

    observed = current_tracer().enabled or current_metrics() is not None
    network, cycle, protected = _prepare_network(count, degree, seed)
    if shards is None and (resolve_workers(workers) > 1 or observed):
        cells = parallel_starmap(
            _fig2_cell,
            [(count, degree, seed, tau, None, criterion) for tau in taus],
            workers=workers,
        )
    else:
        # Serial path reuses the one prepared network instead of letting
        # each cell rebuild it.  Sharded runs always take it: the
        # schedule itself is then the parallel unit — ``workers`` sizes
        # each cell's shard worker pool (coordinator-driven, so chaos
        # and attribution accounting stay in this process) instead of
        # fanning whole cells.
        cells = []
        for tau in taus:
            initially_tau = (
                is_tau_partitionable(network.graph, [cycle], tau)
                if criterion
                else None
            )
            result = dcc_schedule(
                network.graph, protected, tau, rng=random.Random(seed + tau),
                shards=shards,
                workers=workers if shards is not None else 1,
            )
            cells.append(
                (
                    tau,
                    result.num_active,
                    initially_tau,
                    is_tau_partitionable(result.active, [cycle], tau)
                    if criterion
                    else None,
                )
            )
    active_by_tau: Dict[int, int] = {}
    initially: Dict[int, bool] = {}
    finally_: Dict[int, bool] = {}
    for tau, active, init, fin in cells:
        active_by_tau[tau] = active
        initially[tau] = init
        finally_[tau] = fin
    return Fig2Result(
        total_nodes=len(network.graph),
        protected_nodes=len(protected),
        active_by_tau=active_by_tau,
        initially_partitionable=initially,
        finally_partitionable=finally_,
    )


# ----------------------------------------------------------------------
# Figure 3 — impact of confine size on coverage-set size
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    taus: List[int]
    mean_ratio_by_tau: Dict[int, float]
    runs: int

    def format_table(self) -> str:
        lines = [
            "Figure 3 (coverage-set size ratio vs confine size, "
            f"{self.runs} runs; tau=3 is 1.0):"
        ]
        for tau in self.taus:
            lines.append(f"  tau={tau}: ratio={self.mean_ratio_by_tau[tau]:.3f}")
        return "\n".join(lines)


def _fig3_run(
    count: int, degree: float, taus: Sequence[int], seed: int, run: int
) -> Dict[int, float]:
    """Coverage-set sizes of one Figure 3 repetition (picklable)."""
    network, __, protected = _prepare_network(count, degree, seed + run)
    sizes: Dict[int, float] = {}
    for tau in taus:
        result = dcc_schedule(
            network.graph, protected, tau, rng=random.Random(seed + run)
        )
        sizes[tau] = result.num_active
    return sizes


def run_fig3_confine_size(
    count: int = 420,
    degree: float = 25.0,
    taus: Sequence[int] = (3, 4, 5, 6, 7, 8, 9),
    runs: int = 2,
    seed: int = 0,
    paper_scale: bool = False,
    workers: Optional[int] = 1,
) -> Fig3Result:
    """Mean coverage-set size, normalised by the tau=3 set, per tau.

    The paper uses 1600 nodes at average degree ~25 with 100 runs; the
    default here is a laptop-scale reduction that preserves density and
    therefore the curve's shape.  Repetitions are seed-independent, so
    ``workers`` fans them across processes (results identical to serial).
    """
    from repro.parallel import parallel_starmap

    if paper_scale:
        count, degree, runs = 1600, 25.0, 100
    ratios: Dict[int, List[float]] = {tau: [] for tau in taus}
    per_run = parallel_starmap(
        _fig3_run,
        [(count, degree, tuple(taus), seed, run) for run in range(runs)],
        workers=workers,
    )
    for sizes in per_run:
        base = sizes[taus[0]]
        for tau in taus:
            ratios[tau].append(sizes[tau] / base)
    return Fig3Result(
        taus=list(taus),
        mean_ratio_by_tau={
            tau: sum(values) / len(values) for tau, values in ratios.items()
        },
        runs=runs,
    )


# ----------------------------------------------------------------------
# Figure 4 — saved nodes vs sensing ratio, DCC against HGC
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    gammas: List[float]
    requirements: List[float]
    #: saved-node ratio lambda indexed by (max hole diameter, gamma)
    saved: Dict[Tuple[float, float], float] = field(default_factory=dict)
    #: lambda over internal (schedulable) nodes only — the protected
    #: boundary ring is identical for both methods and dilutes the full
    #: ratio at laptop scale, where the periphery band is a large fraction
    saved_internal: Dict[Tuple[float, float], float] = field(
        default_factory=dict
    )
    tau_used: Dict[Tuple[float, float], Optional[int]] = field(default_factory=dict)

    def _grid(self, table: Dict[Tuple[float, float], float]) -> List[str]:
        lines = [
            "  Dmax\\gamma " + "  ".join(f"{g:5.2f}" for g in self.gammas)
        ]
        for dmax in self.requirements:
            label = "Full" if dmax == 0.0 else f"{dmax:.1f}"
            cells = []
            for gamma in self.gammas:
                lam = table.get((dmax, gamma))
                cells.append(f"{lam:5.2f}" if lam is not None else "    -")
            lines.append(f"  {label:>9} " + "  ".join(cells))
        return lines

    def format_table(self) -> str:
        lines = ["Figure 4 (saved nodes lambda = (n1-n2)/n1 vs gamma):"]
        lines.extend(self._grid(self.saved))
        if self.saved_internal:
            lines.append("  over internal nodes only:")
            lines.extend(self._grid(self.saved_internal))
        return "\n".join(lines)


def _fig4_run(
    count: int,
    degree: float,
    gammas: Sequence[float],
    requirements: Sequence[float],
    seed: int,
    run: int,
    tau_cap: int,
) -> Tuple[
    Dict[Tuple[float, float], Optional[int]],
    Dict[Tuple[float, float], float],
    Dict[Tuple[float, float], float],
]:
    """One Figure 4 repetition: ``(tau_used, lambda, lambda_internal)``."""
    network, cycle, protected = _prepare_hgc_verified_network(
        count, degree, seed + run
    )
    hgc = hgc_schedule(
        network.graph,
        [cycle],
        protected,
        rng=random.Random(seed + run),
        require_verified=True,
    )
    n1 = hgc.num_active
    n1_internal = n1 - len(protected)
    dcc_cache: Dict[int, int] = {}
    tau_used: Dict[Tuple[float, float], Optional[int]] = {}
    saved: Dict[Tuple[float, float], float] = {}
    saved_internal: Dict[Tuple[float, float], float] = {}
    for gamma in gammas:
        for dmax in requirements:
            requirement = ConfineRequirement(
                gamma=gamma, max_hole_diameter=dmax, rc=1.0
            )
            tau = requirement.max_feasible_tau(tau_cap=tau_cap)
            key = (dmax, gamma)
            tau_used[key] = tau
            if tau is None:
                # No connectivity-based guarantee possible: DCC falls
                # back to HGC's triangle granularity, saving nothing.
                saved[key] = 0.0
                saved_internal[key] = 0.0
                continue
            if tau not in dcc_cache:
                schedule = dcc_schedule(
                    network.graph,
                    protected,
                    tau,
                    rng=random.Random(seed + run),
                )
                dcc_cache[tau] = schedule.num_active
            n2 = dcc_cache[tau]
            saved[key] = max(0.0, (n1 - n2) / n1)
            if n1_internal > 0:
                saved_internal[key] = max(0.0, (n1 - n2) / n1_internal)
    return tau_used, saved, saved_internal


def run_fig4_hgc_comparison(
    count: int = 300,
    degree: float = 25.0,
    gammas: Sequence[float] = (2.0, 1.8, 1.6, 1.4, 1.2, 1.0),
    requirements: Sequence[float] = (0.0, 0.4, 0.8, 1.2),
    runs: int = 2,
    seed: int = 3,
    tau_cap: int = 9,
    workers: Optional[int] = 1,
) -> Fig4Result:
    """DCC (adaptive tau) against HGC (fixed triangles), Figure 4.

    For every sensing ratio ``gamma`` and hole-diameter requirement the
    DCC scheduler runs at the largest feasible confine size (Proposition
    1); HGC's coverage set is independent of ``gamma`` because it always
    uses triangles.  ``lambda = (n1 - n2)/n1`` counts the nodes DCC saves.
    Repetitions are seed-independent; ``workers`` fans them across
    processes with results identical to the serial loop.
    """
    from repro.parallel import parallel_starmap

    result = Fig4Result(gammas=list(gammas), requirements=list(requirements))
    accum: Dict[Tuple[float, float], List[float]] = {}
    accum_internal: Dict[Tuple[float, float], List[float]] = {}
    per_run = parallel_starmap(
        _fig4_run,
        [
            (count, degree, tuple(gammas), tuple(requirements), seed, run, tau_cap)
            for run in range(runs)
        ],
        workers=workers,
    )
    for tau_used, saved, saved_internal in per_run:
        result.tau_used.update(tau_used)
        for key, lam in saved.items():
            accum.setdefault(key, []).append(lam)
        for key, lam in saved_internal.items():
            accum_internal.setdefault(key, []).append(lam)
    result.saved = {
        key: sum(values) / len(values) for key, values in accum.items()
    }
    result.saved_internal = {
        key: sum(values) / len(values)
        for key, values in accum_internal.items()
    }
    return result


# ----------------------------------------------------------------------
# Figure 5 — RSSI CDF of the (synthetic) GreenOrbs trace
# ----------------------------------------------------------------------
@dataclass
class Fig5Result:
    thresholds_dbm: List[float]
    fraction_at_least: List[float]
    chosen_threshold_dbm: float
    kept_fraction: float

    def format_table(self) -> str:
        lines = ["Figure 5 (RSSI CDF of the synthetic GreenOrbs trace):"]
        for threshold, fraction in zip(self.thresholds_dbm, self.fraction_at_least):
            lines.append(f"  >= {threshold:6.1f} dBm : {fraction:5.1%} of edges")
        lines.append(
            f"  chosen threshold {self.chosen_threshold_dbm:.1f} dBm keeps "
            f"{self.kept_fraction:.0%} of undirected edges"
        )
        return "\n".join(lines)


def run_fig5_rssi_cdf(
    config: Optional[GreenOrbsConfig] = None,
    seed: int = 1,
    trace: Optional[GreenOrbsTrace] = None,
) -> Fig5Result:
    trace = trace or generate_greenorbs_trace(config, seed=seed)
    values = trace.trace.edge_rssi_values()
    thresholds = [-45.0, -55.0, -65.0, -75.0, -85.0, -95.0]
    fractions = rssi_cdf(values, thresholds)
    kept = sum(1 for v in values if v >= trace.threshold_dbm) / len(values)
    return Fig5Result(
        thresholds_dbm=thresholds,
        fraction_at_least=fractions,
        chosen_threshold_dbm=trace.threshold_dbm,
        kept_fraction=kept,
    )


# ----------------------------------------------------------------------
# Figures 6 & 7 — DCC on the trace topology
# ----------------------------------------------------------------------
@dataclass
class TraceConfineResult:
    taus: List[int]
    inner_left_by_tau: Dict[int, int]
    boundary_nodes: int
    total_nodes: int

    def format_table(self, figure: str) -> str:
        lines = [
            f"Figure {figure} (trace topology, {self.total_nodes} nodes, "
            f"{self.boundary_nodes} boundary):"
        ]
        for tau in self.taus:
            lines.append(
                f"  tau={tau}: inner nodes left = {self.inner_left_by_tau[tau]}"
            )
        return "\n".join(lines)


def _trace_confine_cell(
    config: GreenOrbsConfig, seed: int, tau: int
) -> Tuple[int, int]:
    """One confine size on the (regenerated) trace topology (picklable)."""
    trace = generate_greenorbs_trace(config, seed=seed)
    network = trace.as_network(rc=config.max_range, rs=config.max_range)
    cycle = outer_boundary_cycle(network)
    protected = set(cycle)
    result = dcc_schedule(
        network.graph, protected, tau, rng=random.Random(seed + tau)
    )
    return tau, result.num_active - len(protected)


def run_trace_confine(
    taus: Sequence[int] = (3, 4, 5, 6, 7, 8),
    config: Optional[GreenOrbsConfig] = None,
    seed: int = 1,
    trace: Optional[GreenOrbsTrace] = None,
    workers: Optional[int] = 1,
) -> TraceConfineResult:
    """Inner nodes retained per confine size on the trace topology.

    Figure 6 plots taus 3..8; Figure 7's snapshots are taus 3..7 of the
    same experiment.  The sharp drop between tau=3 and tau=5 is the
    signature the paper attributes to the trace's long links and the long
    narrow deployment shape.  With ``workers`` the per-tau runs fan out
    across processes (each regenerating the deterministic trace from
    ``seed``); an explicitly supplied ``trace`` forces the serial path.
    Under an active observation the fan-out path is taken even with one
    worker, so run-reports are worker-count invariant.
    """
    from repro.obs.tracer import current_metrics, current_tracer
    from repro.parallel import parallel_starmap, resolve_workers

    observed = current_tracer().enabled or current_metrics() is not None
    config = config or GreenOrbsConfig()
    if trace is None and (resolve_workers(workers) > 1 or observed):
        trace = generate_greenorbs_trace(config, seed=seed)
        network = trace.as_network(rc=config.max_range, rs=config.max_range)
        protected = set(outer_boundary_cycle(network))
        cells = parallel_starmap(
            _trace_confine_cell,
            [(config, seed, tau) for tau in taus],
            workers=workers,
        )
        inner_left = dict(cells)
        return TraceConfineResult(
            taus=list(taus),
            inner_left_by_tau=inner_left,
            boundary_nodes=len(protected),
            total_nodes=len(network.graph),
        )
    trace = trace or generate_greenorbs_trace(config, seed=seed)
    network = trace.as_network(rc=config.max_range, rs=config.max_range)
    cycle = outer_boundary_cycle(network)
    protected = set(cycle)
    inner_left = {}
    for tau in taus:
        result = dcc_schedule(
            network.graph, protected, tau, rng=random.Random(seed + tau)
        )
        inner_left[tau] = result.num_active - len(protected)
    return TraceConfineResult(
        taus=list(taus),
        inner_left_by_tau=inner_left,
        boundary_nodes=len(protected),
        total_nodes=len(network.graph),
    )


def run_fig6_trace(seed: int = 1, workers: Optional[int] = 1) -> TraceConfineResult:
    return run_trace_confine(taus=(3, 4, 5, 6, 7, 8), seed=seed, workers=workers)


def run_fig7_trace(seed: int = 1, workers: Optional[int] = 1) -> TraceConfineResult:
    return run_trace_confine(taus=(3, 4, 5, 6, 7), seed=seed, workers=workers)

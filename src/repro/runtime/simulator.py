"""A synchronous round-based message-passing network simulator.

Nodes communicate by local broadcast only: anything a node sends in round
``t`` is delivered to all of its currently-active neighbours at the start
of round ``t + 1``.  The simulator knows nothing about the protocol; it
moves messages and counts them.
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter
from typing import Dict, List, Set

from repro.network.graph import NetworkGraph
from repro.obs.tracer import current_metrics, current_tracer
from repro.runtime.messages import Message
from repro.runtime.stats import RuntimeStats


class Simulator:
    """Synchronous broadcast rounds over a (mutable) topology.

    ``tracer`` / ``metrics`` default to the ambient observers.  When
    observing, every :meth:`step` records a ``runtime.round`` span plus
    per-round message-volume histograms (``runtime.messages_per_round``,
    ``runtime.delivered_per_round`` and per-kind
    ``runtime.round_messages.<kind>``) — all deterministic at a fixed
    seed, so they survive run-report determinism comparisons.
    """

    def __init__(
        self, graph: NetworkGraph, tracer=None, metrics=None
    ) -> None:
        self.graph = graph.copy()
        self.active: Set[int] = graph.vertex_set()
        self.inboxes: Dict[int, List[Message]] = defaultdict(list)
        self.outboxes: Dict[int, List[Message]] = defaultdict(list)
        self.stats = RuntimeStats()
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()

    def send(self, message: Message) -> None:
        """Queue a local broadcast for delivery next round."""
        self.outboxes[message.src].append(message)

    def deactivate(self, node: int) -> None:
        """Remove a node from the running network (it stops relaying)."""
        self.active.discard(node)
        if node in self.graph:
            self.graph.remove_vertex(node)
        self.inboxes.pop(node, None)
        self.outboxes.pop(node, None)

    def step(self) -> int:
        """Deliver all queued messages; returns the number delivered."""
        tracer = self.tracer
        metrics = self.metrics
        observing = tracer.enabled or metrics is not None
        start = perf_counter() if observing else 0.0
        self.stats.rounds += 1
        round_no = self.stats.rounds
        broadcasts = 0
        delivered = 0
        by_kind: Dict[str, int] = {}
        new_inboxes: Dict[int, List[Message]] = defaultdict(list)
        for src, queue in self.outboxes.items():
            if src not in self.active:
                continue
            neighbors = [
                v for v in sorted(self.graph.neighbors(src)) if v in self.active
            ]
            for message in queue:
                kind = message.kind.value
                self.stats.record_send(kind, len(neighbors))
                broadcasts += 1
                if observing:
                    by_kind[kind] = by_kind.get(kind, 0) + 1
                for v in neighbors:
                    new_inboxes[v].append(message)
                    delivered += 1
        self.outboxes = defaultdict(list)
        self.inboxes = new_inboxes
        if observing:
            if metrics is not None:
                metrics.observe("runtime.messages_per_round", broadcasts)
                metrics.observe("runtime.delivered_per_round", delivered)
                for kind in sorted(by_kind):
                    metrics.observe(
                        f"runtime.round_messages.{kind}", by_kind[kind]
                    )
            if tracer.enabled:
                tracer.add_span(
                    "runtime.round",
                    perf_counter() - start,
                    round=round_no,
                    messages=broadcasts,
                    delivered=delivered,
                )
        return delivered

    def inbox(self, node: int) -> List[Message]:
        return self.inboxes.get(node, [])

    def run_phase(self, handlers, rounds: int) -> None:
        """Run ``rounds`` synchronous rounds of per-node handlers.

        ``handlers`` maps node id to a callable ``f(node, inbox, send)``
        invoked once per round for every active node.
        """
        for __ in range(rounds):
            for node in sorted(self.active):
                handler = handlers.get(node)
                if handler is None:
                    continue
                handler(node, self.inbox(node), self.send)
            self.step()

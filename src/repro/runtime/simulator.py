"""A synchronous round-based message-passing network simulator.

Nodes communicate by local broadcast only: anything a node sends in round
``t`` is delivered to all of its currently-active neighbours at the start
of round ``t + 1``.  The simulator knows nothing about the protocol; it
moves messages and counts them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set

from repro.network.graph import NetworkGraph
from repro.runtime.messages import Message
from repro.runtime.stats import RuntimeStats


class Simulator:
    """Synchronous broadcast rounds over a (mutable) topology."""

    def __init__(self, graph: NetworkGraph) -> None:
        self.graph = graph.copy()
        self.active: Set[int] = graph.vertex_set()
        self.inboxes: Dict[int, List[Message]] = defaultdict(list)
        self.outboxes: Dict[int, List[Message]] = defaultdict(list)
        self.stats = RuntimeStats()

    def send(self, message: Message) -> None:
        """Queue a local broadcast for delivery next round."""
        self.outboxes[message.src].append(message)

    def deactivate(self, node: int) -> None:
        """Remove a node from the running network (it stops relaying)."""
        self.active.discard(node)
        if node in self.graph:
            self.graph.remove_vertex(node)
        self.inboxes.pop(node, None)
        self.outboxes.pop(node, None)

    def step(self) -> int:
        """Deliver all queued messages; returns the number delivered."""
        self.stats.rounds += 1
        delivered = 0
        new_inboxes: Dict[int, List[Message]] = defaultdict(list)
        for src, queue in self.outboxes.items():
            if src not in self.active:
                continue
            neighbors = [
                v for v in self.graph.neighbors(src) if v in self.active
            ]
            for message in queue:
                self.stats.record_send(message.kind.value, len(neighbors))
                for v in neighbors:
                    new_inboxes[v].append(message)
                    delivered += 1
        self.outboxes = defaultdict(list)
        self.inboxes = new_inboxes
        return delivered

    def inbox(self, node: int) -> List[Message]:
        return self.inboxes.get(node, [])

    def run_phase(self, handlers, rounds: int) -> None:
        """Run ``rounds`` synchronous rounds of per-node handlers.

        ``handlers`` maps node id to a callable ``f(node, inbox, send)``
        invoked once per round for every active node.
        """
        for __ in range(rounds):
            for node in sorted(self.active):
                handler = handlers.get(node)
                if handler is None:
                    continue
                handler(node, self.inbox(node), self.send)
            self.step()

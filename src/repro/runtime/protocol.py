"""The distributed DCC protocol over the message-passing simulator.

Faithful to Section V-B: each internal node gathers the connectivity among
its k-hop neighbours (k = ceil(tau/2)) by k rounds of adjacency gossip,
locally decides deletability by the void-preserving transformation, and the
deletions are parallelised by electing an m-hop MIS (m = k + 1) among the
candidates with random priorities.  Winners flood a deletion notice k hops
so affected nodes update their local views, and the loop repeats until no
node can be deleted.

The centralized scheduler (:func:`repro.core.scheduler.dcc_schedule`)
computes fixpoints of the same deletion rule without the messaging; the
integration tests check both produce valid, non-redundant coverage sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.vpt import deletion_radius
from repro.network.graph import NetworkGraph
from repro.runtime.messages import (
    DeletePayload,
    Message,
    MessageKind,
    TopologyPayload,
)
from repro.runtime.mis import distributed_mis
from repro.runtime.simulator import Simulator
from repro.runtime.stats import RuntimeStats
from repro.topology import LocalTopologyEngine, SpanMemo, TopologyCounters


@dataclass
class DistributedResult:
    """Outcome of a distributed DCC execution."""

    active: NetworkGraph
    removed: List[int]
    iterations: int
    stats: RuntimeStats

    @property
    def num_active(self) -> int:
        return len(self.active)


class _LocalView:
    """What one node knows: adjacency rows learned through gossip.

    A thin adapter over a per-node :class:`LocalTopologyEngine`: the rows
    feed an incrementally-maintained local graph, and the node's
    deletability verdict is served by the engine's caches — it is only
    recomputed after a deletion inside the node's own k-ball, instead of
    once per protocol iteration.
    """

    __slots__ = ("adjacency", "_engine")

    def __init__(
        self,
        tau: Optional[int] = None,
        counters: Optional[TopologyCounters] = None,
        span_memo: Optional[SpanMemo] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.adjacency: Dict[int, FrozenSet[int]] = {}
        self._engine: Optional[LocalTopologyEngine] = None
        if tau is not None:
            self._engine = LocalTopologyEngine(
                NetworkGraph(),
                tau,
                counters=counters,
                span_memo=span_memo,
                tracer=tracer,
                metrics=metrics,
            )

    def merge(self, rows: Tuple[Tuple[int, FrozenSet[int]], ...]) -> bool:
        changed = False
        for node, nbrs in rows:
            if node not in self.adjacency:
                self.adjacency[node] = nbrs
                changed = True
                if self._engine is not None:
                    self._engine.add_vertex(node)
                    for u in nbrs:
                        if not self._engine.graph.has_edge(node, u):
                            self._engine.add_vertex(u)
                            self._engine.add_edge(node, u)
        return changed

    def forget(self, node: int) -> None:
        self.adjacency.pop(node, None)
        self.adjacency = {
            v: nbrs - {node} if node in nbrs else nbrs
            for v, nbrs in self.adjacency.items()
        }
        if self._engine is not None and node in self._engine.graph:
            self._engine.delete_vertex(node)

    def deletable(self, node: int) -> bool:
        """Definition 5 verdict for ``node`` within this local view."""
        if self._engine is None:
            raise ValueError("view was built without a confine size")
        return self._engine.deletable(node)

    def as_graph(self) -> NetworkGraph:
        if self._engine is not None:
            return self._engine.graph
        graph = NetworkGraph()
        known = set(self.adjacency)
        for v, nbrs in self.adjacency.items():
            graph.add_vertex(v)
            for u in nbrs:
                if u in known:
                    graph.add_edge(u, v)
                else:
                    graph.add_vertex(u)
                    graph.add_edge(u, v)
        return graph


class DistributedDCC:
    """Runs the DCC protocol on a simulated network."""

    def __init__(
        self,
        graph: NetworkGraph,
        protected: Iterable[int],
        tau: int,
        rng: Optional[random.Random] = None,
        max_iterations: int = 10_000,
        seed: int = 0,
        tracer=None,
        metrics=None,
    ) -> None:
        self.sim = Simulator(graph, tracer=tracer, metrics=metrics)
        # Share the simulator's resolved observers (ambient by default).
        self.tracer = self.sim.tracer
        self.metrics = self.sim.metrics
        self.protected = set(protected)
        self.tau = tau
        self.k = deletion_radius(tau)
        self.m = self.k + 1
        self.rng = rng if rng is not None else random.Random(seed)
        self.max_iterations = max_iterations
        self.views: Dict[int, _LocalView] = {}
        # One counters object and one span memo shared by every node's
        # engine: accounting aggregates into the run's RuntimeStats, and
        # identical punctured neighbourhoods across nodes share verdicts.
        self.counters = self.sim.stats.topology
        self.span_memo = SpanMemo()

    # ------------------------------------------------------------------
    def run(self) -> DistributedResult:
        tracer = self.tracer
        with tracer.trace("protocol.discovery", k=self.k):
            self._discover_topology()
        removed: List[int] = []
        iterations = 0
        while iterations < self.max_iterations:
            iterations += 1
            self.sim.stats.deletion_iterations += 1
            with tracer.trace(
                "protocol.iteration", round=iterations
            ) as iteration:
                candidates = self._local_candidates()
                iteration.set(candidates=len(candidates))
                if not candidates:
                    break
                winners = distributed_mis(
                    self.sim, candidates, self.m, self.rng
                )
                iteration.set(winners=len(winners))
                self._announce_deletions(winners)
                for winner in winners:
                    self.sim.deactivate(winner)
                    self.views.pop(winner, None)
                removed.extend(winners)
        if self.metrics is not None:
            self.metrics.inc("protocol.runs")
            self.metrics.inc("protocol.deletions", len(removed))
            self.metrics.absorb_runtime(self.sim.stats)
        return DistributedResult(
            # The surviving topology is collected for the caller *after*
            # the protocol fixpoint — no node decision reads it.
            # repro: allow[global-graph-read] result assembly, post-fixpoint
            active=self.sim.graph.copy(),
            removed=removed,
            iterations=iterations,
            stats=self.sim.stats,
        )

    # ------------------------------------------------------------------
    def _discover_topology(self) -> None:
        """k rounds of adjacency gossip; then every node knows its k-ball.

        After round ``r`` a node holds the neighbour lists of everything
        within ``r`` hops, so ``k`` rounds suffice for the edges among its
        k-hop neighbours (including those between two depth-k nodes).
        """
        sim = self.sim
        for node in sim.active:
            view = _LocalView(
                self.tau,
                counters=self.counters,
                span_memo=self.span_memo,
                tracer=self.tracer,
            )
            # A radio hears its one-hop neighbours for free; this seeds
            # repro: allow[global-graph-read] bootstrap, round-0 gossip only
            view.merge(((node, frozenset(sim.graph.neighbors(node))),))
            self.views[node] = view
        for __ in range(self.k):
            for node in sim.active:
                rows = tuple(self.views[node].adjacency.items())
                sim.send(
                    Message(
                        MessageKind.TOPOLOGY,
                        src=node,
                        payload=TopologyPayload(adjacency=rows),
                    )
                )
            sim.step()
            for node in sim.active:
                view = self.views[node]
                for message in sim.inbox(node):
                    if message.kind is MessageKind.TOPOLOGY:
                        view.merge(message.payload.adjacency)
                    else:
                        sim.stats.record_drop(message.kind.value)

    def _local_candidates(self) -> List[int]:
        """Nodes that decide — from their own view — they are deletable.

        The verdicts come from each node's engine cache: a node whose
        k-ball saw no deletion since its last test answers without any
        recomputation.
        """
        out: List[int] = []
        for node in sorted(self.sim.active):
            if node in self.protected:
                continue
            view = self.views[node]
            if node not in view.as_graph():
                continue
            if view.deletable(node):
                out.append(node)
        return out

    def _announce_deletions(self, winners: List[int]) -> None:
        """Winners flood DELETE k hops; receivers update their views."""
        if not winners:
            return
        sim = self.sim
        for winner in winners:
            sim.send(
                Message(
                    MessageKind.DELETE,
                    src=winner,
                    payload=DeletePayload(origin=winner, ttl=self.k - 1),
                )
            )
        relayed: Dict[int, Set[int]] = {}
        for __ in range(self.k):
            sim.step()
            for node in list(sim.active):
                for message in sim.inbox(node):
                    if message.kind is not MessageKind.DELETE:
                        sim.stats.record_drop(message.kind.value)
                        continue
                    payload = message.payload
                    self.views[node].forget(payload.origin)
                    seen = relayed.setdefault(node, set())
                    if payload.ttl > 0 and payload.origin not in seen:
                        seen.add(payload.origin)
                        sim.send(
                            Message(
                                MessageKind.DELETE,
                                src=node,
                                payload=DeletePayload(
                                    origin=payload.origin, ttl=payload.ttl - 1
                                ),
                            )
                        )


def distributed_dcc_schedule(
    graph: NetworkGraph,
    protected: Iterable[int],
    tau: int,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> DistributedResult:
    """Convenience wrapper: run the full distributed DCC protocol.

    Reproducible by default: without an explicit ``rng`` the run uses
    ``random.Random(seed)``.
    """
    return DistributedDCC(graph, protected, tau, rng=rng, seed=seed).run()

"""Distributed execution substrate: simulator, MIS, the DCC protocol."""

from repro.runtime.messages import (
    DeletePayload,
    Message,
    MessageKind,
    PriorityPayload,
    TopologyPayload,
)
from repro.runtime.mis import distributed_mis
from repro.runtime.protocol import (
    DistributedDCC,
    DistributedResult,
    distributed_dcc_schedule,
)
from repro.runtime.simulator import Simulator
from repro.runtime.stats import RuntimeStats

__all__ = [
    "DeletePayload",
    "DistributedDCC",
    "DistributedResult",
    "Message",
    "MessageKind",
    "PriorityPayload",
    "RuntimeStats",
    "Simulator",
    "TopologyPayload",
    "distributed_dcc_schedule",
    "distributed_mis",
]

"""Message types exchanged by the distributed DCC protocol."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, FrozenSet, Tuple


class MessageKind(Enum):
    """Protocol message families.

    TOPOLOGY — neighbourhood gossip during k-hop discovery;
    PRIORITY — MIS arbitration floods (priority draw + hop budget);
    DELETE — a winner announcing it leaves the coverage set.
    """

    TOPOLOGY = "topology"
    PRIORITY = "priority"
    DELETE = "delete"


@dataclass(frozen=True)
class Message:
    """A broadcast message; ``src`` is the sending node.

    All DCC traffic is local broadcast: the simulator delivers each sent
    message to every active neighbour of ``src``.
    """

    kind: MessageKind
    src: int
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.kind.value}, src={self.src})"


@dataclass(frozen=True)
class TopologyPayload:
    """Adjacency gossip: ``adjacency[node] = frozenset(neighbours)``."""

    adjacency: Tuple[Tuple[int, FrozenSet[int]], ...]


@dataclass(frozen=True)
class PriorityPayload:
    """An MIS arbitration token flooded up to ``ttl`` more hops."""

    origin: int
    priority: float
    ttl: int


@dataclass(frozen=True)
class DeletePayload:
    """Deletion announcement flooded up to ``ttl`` more hops."""

    origin: int
    ttl: int

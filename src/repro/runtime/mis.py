"""Distributed m-hop MIS election by random priorities.

Every candidate draws a random priority and floods it ``m`` hops.  A
candidate joins the independent set when its (priority, id) pair beats
every other candidate token it heard — so any two winners are more than
``m`` hops apart, and each round of the enclosing loop elects a fresh
batch until no candidates remain (maximality across rounds).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set, Tuple

from repro.runtime.messages import Message, MessageKind, PriorityPayload
from repro.runtime.simulator import Simulator


def distributed_mis(
    sim: Simulator,
    candidates: Iterable[int],
    m: int,
    rng: random.Random,
) -> List[int]:
    """Elect an independent set among ``candidates`` at pairwise distance > m.

    Runs ``m`` synchronous flooding rounds on the simulator.  Returns the
    winners (local priority maxima).  The rounds and messages are recorded
    in ``sim.stats``.
    """
    candidate_set = set(candidates)
    if not candidate_set:
        return []
    priorities: Dict[int, Tuple[float, int]] = {
        v: (rng.random(), v) for v in sorted(candidate_set)
    }
    # best_seen[v]: strongest token from a *different* candidate heard by v.
    best_seen: Dict[int, Tuple[float, int]] = {}
    relayed: Dict[int, Set[int]] = {v: set() for v in sim.active}

    for v in candidate_set:
        priority, __ = priorities[v]
        sim.send(
            Message(
                MessageKind.PRIORITY,
                src=v,
                payload=PriorityPayload(origin=v, priority=priority, ttl=m - 1),
            )
        )

    for __ in range(m):
        sim.step()
        for node in list(sim.active):
            for message in sim.inbox(node):
                if message.kind is not MessageKind.PRIORITY:
                    sim.stats.record_drop(message.kind.value)
                    continue
                payload = message.payload
                token = (payload.priority, payload.origin)
                if node in candidate_set and payload.origin != node:
                    if node not in best_seen or token > best_seen[node]:
                        best_seen[node] = token
                if payload.ttl > 0 and payload.origin not in relayed.setdefault(
                    node, set()
                ):
                    relayed[node].add(payload.origin)
                    sim.send(
                        Message(
                            MessageKind.PRIORITY,
                            src=node,
                            payload=PriorityPayload(
                                origin=payload.origin,
                                priority=payload.priority,
                                ttl=payload.ttl - 1,
                            ),
                        )
                    )

    winners = [
        v
        for v in sorted(candidate_set)
        if v not in best_seen or priorities[v] > best_seen[v]
    ]
    return winners

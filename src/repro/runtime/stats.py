"""Accounting for distributed executions: rounds, messages, bytes-ish."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.topology import TopologyCounters


@dataclass
class RuntimeStats:
    """Counters accumulated by the round-based simulator."""

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    #: delivered messages a protocol phase received but did not handle
    #: (e.g. a non-DELETE kind arriving during the deletion flood),
    #: partitioned by kind.  Handler totality (REPRO205) requires every
    #: kind-filtered inbox loop to account for what it skips here.
    messages_dropped: Dict[str, int] = field(default_factory=dict)
    deletion_iterations: int = 0
    #: aggregated local-topology work across every node's engine
    topology: TopologyCounters = field(default_factory=TopologyCounters)

    def record_send(self, kind: str, deliveries: int, count: int = 1) -> None:
        """Account for ``count`` local broadcasts of one message kind.

        Sent-vs-delivered semantics: ``messages_sent`` counts *radio
        broadcasts* (one per transmitted message, regardless of how many
        neighbours hear it), while ``messages_delivered`` counts
        *receptions* (one per listening neighbour).  A broadcast to an
        empty neighbourhood is still sent, just never delivered.
        ``messages_by_kind`` partitions the sent count.
        """
        self.messages_sent += count
        self.messages_delivered += deliveries
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + count

    def record_drop(self, kind: str, count: int = 1) -> None:
        """Account for ``count`` delivered-but-unhandled messages.

        A phase that filters its inbox by kind must route every skipped
        message through here, so "silently discarded" is an accounting
        state rather than an invisible one.
        """
        self.messages_dropped[kind] = (
            self.messages_dropped.get(kind, 0) + count
        )

    def merge(self, other: "RuntimeStats") -> None:
        self.rounds += other.rounds
        self.messages_sent += other.messages_sent
        self.messages_delivered += other.messages_delivered
        self.deletion_iterations += other.deletion_iterations
        for kind, count in other.messages_by_kind.items():
            self.messages_by_kind[kind] = (
                self.messages_by_kind.get(kind, 0) + count
            )
        for kind, count in other.messages_dropped.items():
            self.messages_dropped[kind] = (
                self.messages_dropped.get(kind, 0) + count
            )
        self.topology.merge(other.topology)

    def summary(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.messages_by_kind.items())
        )
        # An empty kind breakdown used to render as a bare "[]"; omit it.
        breakdown = f" [{kinds}]" if kinds else ""
        drops = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.messages_dropped.items())
            if count
        )
        dropped = f" dropped[{drops}]" if drops else ""
        return (
            f"rounds={self.rounds} sent={self.messages_sent} "
            f"delivered={self.messages_delivered}{breakdown}{dropped} | "
            f"{self.topology.summary()}"
        )

"""Accounting for distributed executions: rounds, messages, bytes-ish."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.topology import TopologyCounters


@dataclass
class RuntimeStats:
    """Counters accumulated by the round-based simulator."""

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    deletion_iterations: int = 0
    #: aggregated local-topology work across every node's engine
    topology: TopologyCounters = field(default_factory=TopologyCounters)

    def record_send(self, kind: str, deliveries: int) -> None:
        self.messages_sent += 1
        self.messages_delivered += deliveries
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def merge(self, other: "RuntimeStats") -> None:
        self.rounds += other.rounds
        self.messages_sent += other.messages_sent
        self.messages_delivered += other.messages_delivered
        self.deletion_iterations += other.deletion_iterations
        for kind, count in other.messages_by_kind.items():
            self.messages_by_kind[kind] = (
                self.messages_by_kind.get(kind, 0) + count
            )
        self.topology.merge(other.topology)

    def summary(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.messages_by_kind.items())
        )
        return (
            f"rounds={self.rounds} sent={self.messages_sent} "
            f"delivered={self.messages_delivered} [{kinds}] | "
            f"{self.topology.summary()}"
        )

"""repro — distributed connectivity-based coverage via topological graphs.

A faithful, self-contained reproduction of *"Distributed Coverage in
Wireless Ad Hoc and Sensor Networks by Topological Graph Approaches"*
(Dong, Liu, Liu, Liao — ICDCS 2010).

The package implements the paper's primary contribution — **confine
coverage** with the cycle-partition criterion and the distributed **DCC**
scheduler — together with every substrate it relies on: a GF(2) cycle-space
toolkit with Horton minimum cycle bases, the simplicial-homology **HGC**
baseline, network deployment and radio models, geometric coverage
evaluation, location-free boundary recognition, a message-passing runtime,
and a synthetic GreenOrbs RSSI trace generator.

Quickstart::

    import random
    from repro import (
        network_for_average_degree, outer_boundary_cycle,
        dcc_schedule, is_tau_partitionable,
    )

    net = network_for_average_degree(220, 20.0, seed=1)
    boundary = outer_boundary_cycle(net)
    protected = set(net.boundary_nodes) | set(boundary)
    result = dcc_schedule(net.graph, protected, tau=4,
                          rng=random.Random(1))
    assert is_tau_partitionable(result.active, [boundary], 4)

See DESIGN.md for the subsystem inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.boundary import (
    detect_boundary_nodes,
    enclosure_fraction,
    outer_boundary_cycle,
)
from repro.core import (
    ConfineRequirement,
    ScheduleResult,
    blanket_sensing_ratio_threshold,
    dcc_schedule,
    deletion_radius,
    find_cycle_partition,
    hole_diameter_bound,
    is_non_redundant,
    is_tau_partitionable,
    max_blanket_tau,
    repair_inner_boundaries,
    verify_confine_coverage,
    vertex_deletable,
)
from repro.cycles import (
    Cycle,
    EdgeIndex,
    ShortCycleSpan,
    irreducible_cycle_bounds,
    minimum_cycle_basis,
)
from repro.geometry import evaluate_coverage
from repro.homology import (
    RipsComplex,
    betti_numbers,
    hgc_schedule,
    hgc_verify,
)
from repro.network import NetworkGraph
from repro.network.deployment import (
    Network,
    Rectangle,
    build_network,
    network_for_average_degree,
)
from repro.network.radio import (
    LogNormalShadowingRadio,
    QuasiUnitDiskRadio,
    UnitDiskRadio,
)
from repro.runtime import DistributedDCC, distributed_dcc_schedule
from repro.topology import LocalTopologyEngine, TopologyCounters
from repro.traces import GreenOrbsConfig, generate_greenorbs_trace

__version__ = "0.1.0"

__all__ = [
    "ConfineRequirement",
    "Cycle",
    "DistributedDCC",
    "EdgeIndex",
    "GreenOrbsConfig",
    "LocalTopologyEngine",
    "LogNormalShadowingRadio",
    "Network",
    "NetworkGraph",
    "QuasiUnitDiskRadio",
    "Rectangle",
    "RipsComplex",
    "ScheduleResult",
    "ShortCycleSpan",
    "TopologyCounters",
    "UnitDiskRadio",
    "betti_numbers",
    "blanket_sensing_ratio_threshold",
    "build_network",
    "dcc_schedule",
    "deletion_radius",
    "detect_boundary_nodes",
    "distributed_dcc_schedule",
    "enclosure_fraction",
    "evaluate_coverage",
    "find_cycle_partition",
    "generate_greenorbs_trace",
    "hgc_schedule",
    "hgc_verify",
    "hole_diameter_bound",
    "irreducible_cycle_bounds",
    "is_non_redundant",
    "is_tau_partitionable",
    "max_blanket_tau",
    "minimum_cycle_basis",
    "network_for_average_degree",
    "outer_boundary_cycle",
    "repair_inner_boundaries",
    "verify_confine_coverage",
    "vertex_deletable",
]

"""``repro-lint``: run the determinism rules over source trees.

Examples::

    repro-lint src/
    repro-lint src/repro/core --json
    repro-lint src/ --update-baseline   # park current findings
    repro-lint --list-rules

Exit status: 0 when no *new* findings (baselined ones are reported as a
summary line but do not fail), 1 otherwise.  Output is deterministic:
findings sort by ``(path, rule, line, col)`` and the JSON rendering uses
sorted keys and repo-relative POSIX paths, so CI diffs and the baseline
file are byte-stable across filesystems.

All shared plumbing (baseline handling, ``--select``, exit codes) lives
in :mod:`repro.checks.runner`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.checks.rules import all_rules
from repro.checks.runner import add_front_args, run_engine_front

DEFAULT_BASELINE = "repro-lint.baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism and correctness linter for the repro codebase.",
    )
    return add_front_args(parser, DEFAULT_BASELINE, verb="lint")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_engine_front("repro-lint", all_rules(), args)


if __name__ == "__main__":
    sys.exit(main())

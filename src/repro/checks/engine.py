"""The static-analysis engine: file walker, rule registry, reporters.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects.  The engine owns everything around that: discovering files,
parsing them once per file, applying inline ``# repro: allow[RULE]``
suppressions, filtering against a committed :class:`Baseline`, and
rendering the survivors as text or JSON.

Determinism of the *tooling itself* is part of the contract: findings
are always sorted by ``(path, rule, line, column)``, paths are
repo-relative POSIX strings, and the JSON rendering round-trips through
``sort_keys`` — so CI diffs and the baseline file are byte-stable across
filesystems and walk orders.

Suppression syntax, on the flagged line or the line directly above::

    frontier = set(active)  # repro: allow[set-iteration-order] reason...

Rule ids (``REPRO102``) are accepted interchangeably with rule names.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: ``# repro: allow[rule-a, RULE002]`` — case-preserving, comma tolerant.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative POSIX path
    rule: str  # rule id, e.g. "REPRO102"
    name: str  # rule name, e.g. "set-iteration-order"
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str

    @property
    def sort_key(self) -> Tuple[str, str, int, int]:
        return (self.path, self.rule, self.line, self.col)

    def fingerprint(self) -> str:
        """Baseline identity: location-insensitive within a file.

        Keyed on ``(path, rule, message)`` so a baseline entry survives
        unrelated edits that shift line numbers, while any change to
        *what* is flagged invalidates it.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "rule": self.rule,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class: one named check over a parsed module.

    Subclasses set :attr:`rule_id` / :attr:`name` / :attr:`summary` and
    implement :meth:`check`, yielding findings via :meth:`finding`.
    """

    rule_id: str = "REPRO000"
    name: str = "abstract-rule"
    summary: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "ModuleContext", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.rel_path,
            rule=self.rule_id,
            name=self.name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class ModuleContext:
    """Everything a rule may need about one source file."""

    rel_path: str
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


def _suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map of line number -> set of allowed rule tokens (ids and names)."""
    out: Dict[int, Set[str]] = {}
    for i, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match:
            tokens = {t.strip() for t in match.group(1).split(",") if t.strip()}
            out[i] = tokens
    return out


def _is_suppressed(finding: Finding, allows: Dict[int, Set[str]]) -> bool:
    # The comment may sit on the flagged line or on the line above
    # (long expressions often leave no room on the line itself).
    for lineno in (finding.line, finding.line - 1):
        tokens = allows.get(lineno)
        if tokens and (finding.rule in tokens or finding.name in tokens):
            return True
    return False


def apply_suppressions(
    findings: Sequence[Finding], source_lines: Sequence[str]
) -> List[Finding]:
    """Drop findings silenced by ``# repro: allow[...]`` comments.

    For passes that produce findings outside :meth:`LintEngine.lint_file`
    (e.g. the cross-module protocol extraction of
    :mod:`repro.checks.protocol`) but must honour the same inline
    suppression contract.  ``source_lines`` are the lines of the file the
    findings point into.
    """
    allows = _suppressions(source_lines)
    return [f for f in findings if not _is_suppressed(f, allows)]


class Baseline:
    """A committed set of accepted findings, keyed by fingerprint.

    The workflow mirrors ruff's ``--add-noqa`` / mypy's baseline tools:
    run ``repro-lint --update-baseline`` once to park current findings,
    commit the file, and from then on only *new* findings fail the lint.
    Entries are stored sorted so the file is diff-stable.
    """

    def __init__(self, entries: Optional[Iterable[str]] = None) -> None:
        self.entries: Set[str] = set(entries or ())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"malformed baseline file: {path}")
        return cls(data["entries"])

    def save(self, path: Path) -> None:
        payload = {
            "format": "repro-lint-baseline/v1",
            "entries": sorted(self.entries),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)


class LintEngine:
    """Walk files, run every registered rule, apply suppressions."""

    def __init__(self, rules: Sequence[Rule], root: Optional[Path] = None) -> None:
        ids = [r.rule_id for r in rules]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate rule ids: {sorted(ids)}")
        self.rules = list(rules)
        self.root = (root or Path.cwd()).resolve()

    # ------------------------------------------------------------------
    def discover(self, paths: Sequence[Path]) -> List[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        found: Set[Path] = set()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                found.update(path.rglob("*.py"))
            elif path.suffix == ".py":
                found.add(path)
        return sorted(p.resolve() for p in found)

    def _rel(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(self.root)
        except ValueError:
            rel = path
        return rel.as_posix()

    def lint_file(self, path: Path) -> List[Finding]:
        source = Path(path).read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    path=self._rel(Path(path)),
                    rule="REPRO999",
                    name="syntax-error",
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        lines = source.splitlines()
        ctx = ModuleContext(
            rel_path=self._rel(Path(path)), tree=tree, source_lines=lines
        )
        allows = _suppressions(lines)
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if not _is_suppressed(finding, allows):
                    findings.append(finding)
        return findings

    def lint(self, paths: Sequence[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in self.discover(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings, key=lambda f: f.sort_key)


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint ``paths``; returns ``(new_findings, baselined_findings)``."""
    engine = LintEngine(rules, root=root)
    findings = engine.lint(paths)
    if baseline is None:
        return findings, []
    fresh = [f for f in findings if f not in baseline]
    parked = [f for f in findings if f in baseline]
    return fresh, parked


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE [name] message`` row per finding."""
    rows = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.name}] {f.message}"
        for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    return "\n".join(rows)


def render_json(
    findings: Sequence[Finding], format: str = "repro-lint/v1"
) -> str:
    """Stable JSON: findings sorted by (path, rule, line), sorted keys."""
    payload = {
        "format": format,
        "count": len(findings),
        "findings": [
            f.as_dict() for f in sorted(findings, key=lambda f: f.sort_key)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

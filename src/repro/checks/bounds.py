"""repro-bounds: the symbolic locality/complexity certifier (REPRO4xx).

The paper's correctness and cost arguments are radius arguments: every
verdict depends only on a ``k = ceil(tau / 2)``-hop neighbourhood
(Definition 5), floods terminate within a provable TTL radius, shard
halos are sufficient at exactly ``k`` hops, and the packed verdict
kernel's layout is sound only inside hard dtype capacities.  This module
*extracts* those bounds from the source and *proves* them against the
paper-derived envelope:

* **Symbolic radius analysis** (REPRO401-403) — one AST pass over
  ``topology/``, ``shard/``, ``runtime/`` and ``core/`` finds every
  BFS/ball/halo call site and abstract-evaluates the arithmetic feeding
  its radius into a small symbolic expression over ``(tau, k, m)``,
  proven pointwise over ``tau in 3..16``.  Unresolvable or hand-written
  literals are flagged; resolvable radii must stay ``<= k`` (the
  certified verdict ball), and the shard halo band must equal ``k``
  exactly.
* **Flood-TTL certification** (REPRO404) — reuses
  :func:`repro.checks.protocol.extract_contract`'s FloodSpecs (the same
  extraction ``repro-verify`` model-checks) and proves each declared
  flood's initial TTL equals ``radius - 1``
  (:func:`repro.topology.radii.flood_ttl`) with decrement, guard and
  origin-dedup all present.
* **Packed-kernel capacity analysis** (REPRO405-406) — statically
  verifies the uint64 width guards, word-count constants, width-class
  tiling and bit-packed index fields of ``cycles/batch.py`` against the
  dtype capacities, and the Horton stage-3 cutoffs of
  ``cycles/kernel.py``/``horton.py`` against ``floor(tau / 2)``.
* **Traffic envelopes** (REPRO407) — derives per-round halo-row bounds
  for the shard exchange and per-kind message-send bounds for the
  runtime as functions of ``(n, delta, tau, boundary size)``, and emits
  them as a :class:`BoundsManifest` that
  :func:`repro.obs.envelope.check_envelope` asserts against a real run's
  meters (the CI sharded fig2 smoke).

Inline ``# repro: allow[rule]`` comments suppress findings exactly as in
the other fronts (same line or the line above).
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checks.engine import Finding, apply_suppressions
from repro.checks.protocol import (
    ProtocolContract,
    _parse_files,
    _SourceFile,
    extract_contract,
)
from repro.obs.envelope import MANIFEST_SCHEMA

BOUNDS_REPORT_SCHEMA = "repro-bounds/v1"

#: (rule id, rule name, summary) — the REPRO4xx family.
BOUNDS_RULES: Tuple[Tuple[str, str, str], ...] = (
    (
        "REPRO401",
        "radius-unproven",
        "a BFS/ball radius could not be resolved to a symbolic expression "
        "over (tau, k, m) — hand-written literal, unbounded traversal, or "
        "opaque dataflow",
    ),
    (
        "REPRO402",
        "radius-exceeds-ball",
        "a resolved radius exceeds the certified verdict ball k = "
        "ceil(tau / 2) for some tau in 3..16",
    ),
    (
        "REPRO403",
        "halo-band-radius",
        "the shard halo band must be exactly k hops — thinner truncates an "
        "owned verdict ball, thicker ships unread rows",
    ),
    (
        "REPRO404",
        "flood-ttl",
        "a flood's initial TTL must equal its declared radius - 1 with "
        "decrement, TTL guard and origin dedup all present (FloodSpec "
        "extraction shared with repro-verify)",
    ),
    (
        "REPRO405",
        "packed-capacity",
        "a packed-kernel width/word-count constant disagrees with the "
        "uint64 dtype capacity it encodes",
    ),
    (
        "REPRO406",
        "bypass-threshold",
        "a packed-path bypass guard does not reference its named "
        "threshold constant",
    ),
    (
        "REPRO407",
        "traffic-envelope",
        "a send/route site has no derivable per-round traffic envelope",
    ),
)

#: Pointwise proof domain: every admissible tau the schedulers accept in
#: practice.  All bound expressions here are monotone step functions of
#: tau through k and m, so pointwise equality/inequality on this range
#: is a proof for the range the paper's theorems quantify over.
TAU_SAMPLES: Tuple[int, ...] = tuple(range(3, 17))

#: The directories the radius pass certifies (module path substrings).
RADIUS_SCAN_DIRS: Tuple[str, ...] = (
    "repro/topology/",
    "repro/shard/",
    "repro/runtime/",
    "repro/core/",
)

#: Flood kinds the paper declares, with the radius symbol each must
#: cover (DELETE floods the deletion k-ball, PRIORITY the MIS m-ball).
DECLARED_FLOODS: Dict[str, str] = {"DELETE": "k", "PRIORITY": "m"}


def _radius_env(tau: int) -> Dict[str, int]:
    k = math.ceil(tau / 2)
    return {"tau": tau, "k": k, "m": k + 1}


def _points(fn: Any) -> Tuple[int, ...]:
    return tuple(fn(_radius_env(tau)) for tau in TAU_SAMPLES)


_K_POINTS = _points(lambda env: env["k"])

#: Canonical spellings for proven expressions, matched pointwise so
#: ``mis_separation(tau) - 1`` and ``self.radius`` both print as ``k``.
_CANONICAL: Tuple[Tuple[str, Tuple[int, ...]], ...] = tuple(
    (text, _points(eval_fn))
    for text, eval_fn in (
        ("k", lambda env: env["k"]),
        ("m", lambda env: env["m"]),
        ("k - 1", lambda env: env["k"] - 1),
        ("m - 1", lambda env: env["m"] - 1),
        ("k + 1", lambda env: env["k"] + 1),
        ("tau // 2", lambda env: env["tau"] // 2),
        ("tau", lambda env: env["tau"]),
    )
)


@dataclass(frozen=True)
class SymExpr:
    """A radius as a pointwise function of tau (via k, m)."""

    text: str
    values: Tuple[int, ...]

    def canonical(self) -> str:
        for text, values in _CANONICAL:
            if values == self.values:
                return text
        return self.text

    def le(self, other: "SymExpr") -> bool:
        return all(a <= b for a, b in zip(self.values, other.values))

    def eq(self, other: "SymExpr") -> bool:
        return self.values == other.values


_SYM_K = SymExpr("k", _K_POINTS)


@dataclass
class Resolution:
    """Outcome of abstract-evaluating one radius expression.

    ``param`` resolutions mean the radius is (a function of) a caller
    parameter — the analyzer then proves the *whole* original expression
    once per in-tree call site by re-resolving with the parameter bound
    to the caller's value (see ``_resolve_via_callers``).
    """

    status: str  # "sym" | "param" | "unbounded" | "unknown"
    expr: Optional[SymExpr] = None
    param: Optional[str] = None
    detail: str = ""


def _sym(status_text: str, fn: Any) -> Resolution:
    return Resolution("sym", SymExpr(status_text, _points(fn)))


#: Attribute names that resolve symbolically when their owner's class is
#: out of scope (``self.engine.radius``).  ``radius`` is pinned to ``k``
#: by REPRO206 (``LocalTopologyEngine.radius = neighborhood_radius(tau)``),
#: ``k``/``m`` by the runtime-protocol constant contracts.
_ATTR_SYMBOLS: Dict[str, Any] = {
    "radius": lambda env: env["k"],
    "k": lambda env: env["k"],
    "m": lambda env: env["m"],
    "tau": lambda env: env["tau"],
}

#: Calls that *are* named radius derivations (repro.topology.radii).
_DERIVATION_CALLS: Dict[str, Any] = {
    "neighborhood_radius": lambda env: env["k"],
    "deletion_radius": lambda env: env["k"],
    "halo_radius": lambda env: env["k"],
    "mis_separation": lambda env: env["m"],
    "stage_cutoff": lambda env: env["tau"] // 2,
}


@dataclass(frozen=True)
class SinkSpec:
    """Where a sink call's radius argument lives."""

    arg_index: Optional[int]  # positional index after the receiver
    kwarg: Optional[str]
    #: missing argument means: "k" (engine default), "unbounded", or
    #: "unknown"
    missing: str


#: Every BFS/ball/halo traversal primitive the four scanned layers call.
_SINKS: Dict[str, SinkSpec] = {
    "ball": SinkSpec(1, "radius", "k"),
    "ball_ids": SinkSpec(1, "radius", "unknown"),
    "ball_slots": SinkSpec(1, "radius", "unknown"),
    "punctured_ball_slots": SinkSpec(1, "radius", "unknown"),
    "ball_intersects": SinkSpec(1, "radius", "unknown"),
    "blocked": SinkSpec(1, "radius", "unknown"),
    "k_hop_neighborhood": SinkSpec(1, None, "unknown"),
    "bfs_distances": SinkSpec(1, "cutoff", "unbounded"),
    "_multi_source_distances": SinkSpec(2, "cutoff", "unbounded"),
    "WaveMIS": SinkSpec(2, "radius", "unknown"),
}


@dataclass
class RadiusSite:
    """One certified (or flagged) radius call site."""

    path: str
    line: int
    sink: str
    radius: str
    status: str  # "proven" | "delegated" | "unproven" | "exceeds"
    via: str = ""  # caller chain note for delegated params

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "path": self.path,
            "line": self.line,
            "sink": self.sink,
            "radius": self.radius,
            "status": self.status,
        }
        if self.via:
            out["via"] = self.via
        return out


@dataclass
class BoundsManifest:
    """Everything repro-bounds proved, as data.

    The ``envelopes`` block is the runtime contract:
    :func:`repro.obs.envelope.check_envelope` evaluates each bound for a
    concrete run and asserts the measured meters stay inside.
    """

    radius_sites: List[RadiusSite] = field(default_factory=list)
    floods: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    capacities: Dict[str, Any] = field(default_factory=dict)
    envelopes: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_SCHEMA,
            "symbols": {"k": "ceil(tau / 2)", "m": "k + 1"},
            "tau_samples": list(TAU_SAMPLES),
            "radius_sites": [s.as_dict() for s in self.radius_sites],
            "floods": dict(sorted(self.floods.items())),
            "capacities": dict(sorted(self.capacities.items())),
            "envelopes": dict(sorted(self.envelopes.items())),
        }


# ----------------------------------------------------------------------
# Scope and function indexing
# ----------------------------------------------------------------------
@dataclass
class _Scope:
    """Resolution context: one function body inside one file."""

    file: _SourceFile
    func: Optional[ast.AST]  # FunctionDef/AsyncFunctionDef or None
    class_name: Optional[str]
    locals: Dict[str, ast.expr]
    params: Tuple[str, ...]


@dataclass
class _FuncInfo:
    file: _SourceFile
    node: ast.AST
    class_name: Optional[str]
    scope: _Scope

    def param_call_index(self, param: str) -> Optional[int]:
        """Positional index of ``param`` at a call site (self-adjusted)."""
        args = getattr(self.node, "args", None)
        if args is None:
            return None
        names = [a.arg for a in args.args]
        if param not in names:
            return None
        index = names.index(param)
        if self.class_name is not None and names and names[0] in ("self", "cls"):
            index -= 1
        return index


class _Analyzer:
    """The whole-tree radius/capacity/envelope pass."""

    def __init__(self, files: Sequence[_SourceFile]) -> None:
        self.files = list(files)
        self.findings: List[Finding] = []
        self.manifest = BoundsManifest()
        #: function name -> defs (for one-level caller resolution)
        self.func_index: Dict[str, List[_FuncInfo]] = {}
        #: class name -> {attr: (rhs expr, defining scope)}
        self.class_attrs: Dict[str, Dict[str, Tuple[ast.expr, _Scope]]] = {}
        self._scopes: List[_Scope] = []

    # -- indexing ------------------------------------------------------
    def index(self) -> None:
        for file in self.files:
            module_scope = _Scope(file, None, None, {}, ())
            self._index_body(file.tree.body, file, module_scope, None)

    def _index_body(
        self,
        body: Sequence[ast.stmt],
        file: _SourceFile,
        parent: _Scope,
        class_name: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self.class_attrs.setdefault(node.name, {})
                self._index_body(node.body, file, parent, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = _Scope(
                    file,
                    node,
                    class_name,
                    _collect_locals(node),
                    tuple(a.arg for a in node.args.args),
                )
                self._scopes.append(scope)
                info = _FuncInfo(file, node, class_name, scope)
                self.func_index.setdefault(node.name, []).append(info)
                if class_name is not None:
                    attrs = self.class_attrs.setdefault(class_name, {})
                    for stmt in ast.walk(node):
                        target = _self_attr_target(stmt)
                        if target is not None:
                            attr, value = target
                            attrs.setdefault(attr, (value, scope))
                # Nested defs/classes still get indexed (rare here).
                self._index_body(node.body, file, scope, class_name)

    # -- symbolic resolution -------------------------------------------
    def resolve(
        self,
        node: Optional[ast.expr],
        scope: _Scope,
        depth: int = 0,
        overrides: Optional[Dict[str, SymExpr]] = None,
    ) -> Resolution:
        if depth > 12:
            return Resolution("unknown", detail="resolution depth exceeded")
        if node is None:
            return Resolution("unbounded", detail="no bound")
        if isinstance(node, ast.Constant):
            if node.value is None:
                return Resolution("unbounded", detail="cutoff=None")
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return Resolution(
                    "unknown",
                    detail=f"hand-written radius literal {node.value}",
                )
            return Resolution("unknown", detail=f"literal {node.value!r}")
        if isinstance(node, ast.Name):
            if overrides is not None and node.id in overrides:
                return Resolution("sym", overrides[node.id])
            if node.id in scope.locals:
                return self.resolve(
                    scope.locals[node.id], scope, depth + 1, overrides
                )
            if node.id in scope.params:
                # A parameter literally named ``tau`` carries the symbol
                # (the convention REPRO206 pins); other parameters are
                # caller-chosen radii.
                if node.id == "tau":
                    return _sym("tau", lambda env: env["tau"])
                return Resolution("param", param=node.id)
            if node.id in ("tau", "k", "m"):
                return _sym(node.id, _ATTR_SYMBOLS[node.id])
            return Resolution("unknown", detail=f"unresolved name {node.id!r}")
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and scope.class_name is not None
            ):
                attrs = self.class_attrs.get(scope.class_name, {})
                if node.attr in attrs:
                    rhs, rhs_scope = attrs[node.attr]
                    return self.resolve(rhs, rhs_scope, depth + 1)
            if node.attr in _ATTR_SYMBOLS:
                return _sym(node.attr, _ATTR_SYMBOLS[node.attr])
            return Resolution(
                "unknown", detail=f"unresolved attribute .{node.attr}"
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv)
        ):
            left, left_param = self._operand(node.left, scope, depth, overrides)
            right, right_param = self._operand(
                node.right, scope, depth, overrides
            )
            for param_res in (left_param, right_param):
                if param_res is not None:
                    return param_res
            if left is None or right is None:
                return Resolution(
                    "unknown", detail=f"opaque arithmetic {ast.unparse(node)}"
                )
            op = {
                ast.Add: lambda a, b: a + b,
                ast.Sub: lambda a, b: a - b,
                ast.Mult: lambda a, b: a * b,
                ast.FloorDiv: lambda a, b: a // b if b else 0,
            }[type(node.op)]
            values = tuple(op(a, b) for a, b in zip(left.values, right.values))
            return Resolution(
                "sym", SymExpr(ast.unparse(node), values)
            )
        if isinstance(node, ast.IfExp):
            a = self.resolve(node.body, scope, depth + 1, overrides)
            b = self.resolve(node.orelse, scope, depth + 1, overrides)
            if a.status == "sym" and b.status == "sym":
                assert a.expr is not None and b.expr is not None
                values = tuple(
                    max(x, y) for x, y in zip(a.expr.values, b.expr.values)
                )
                return Resolution("sym", SymExpr(ast.unparse(node), values))
            for res in (a, b):
                if res.status == "param":
                    return res
            return Resolution("unknown", detail="conditional radius")
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _DERIVATION_CALLS and len(node.args) == 1:
                arg = self.resolve(node.args[0], scope, depth + 1, overrides)
                if arg.status == "sym" and arg.expr is not None:
                    if arg.expr.values == _points(lambda env: env["tau"]):
                        return _sym(name, _DERIVATION_CALLS[name])
                    return Resolution(
                        "unknown",
                        detail=f"{name}() applied to non-tau argument",
                    )
                if arg.status == "param":
                    return arg
                return Resolution(
                    "unknown", detail=f"{name}() argument unresolved"
                )
            if name == "flood_ttl" and len(node.args) == 1:
                inner = self.resolve(node.args[0], scope, depth + 1, overrides)
                if inner.status == "sym" and inner.expr is not None:
                    values = tuple(v - 1 for v in inner.expr.values)
                    return Resolution(
                        "sym", SymExpr(ast.unparse(node), values)
                    )
                return inner
            if name == "ceil" and len(node.args) == 1:
                # math.ceil(tau / 2): the one true-division the grammar
                # admits, because it *is* the definition of k.
                arg = node.args[0]
                if (
                    isinstance(arg, ast.BinOp)
                    and isinstance(arg.op, ast.Div)
                    and isinstance(arg.right, ast.Constant)
                    and arg.right.value == 2
                ):
                    inner = self.resolve(arg.left, scope, depth + 1, overrides)
                    if inner.status == "sym" and inner.expr is not None:
                        values = tuple(
                            math.ceil(v / 2) for v in inner.expr.values
                        )
                        return Resolution(
                            "sym", SymExpr(ast.unparse(node), values)
                        )
                return Resolution("unknown", detail="opaque ceil()")
            if name in ("min", "max") and node.args and not node.keywords:
                parts = [
                    self.resolve(arg, scope, depth + 1, overrides)
                    for arg in node.args
                ]
                if all(p.status == "sym" and p.expr for p in parts):
                    fold = min if name == "min" else max
                    values = tuple(
                        fold(p.expr.values[i] for p in parts)  # type: ignore[union-attr]
                        for i in range(len(TAU_SAMPLES))
                    )
                    return Resolution(
                        "sym", SymExpr(ast.unparse(node), values)
                    )
                return Resolution("unknown", detail=f"opaque {name}()")
            return Resolution(
                "unknown", detail=f"opaque call {name or ast.unparse(node.func)}()"
            )
        return Resolution(
            "unknown", detail=f"opaque expression {ast.unparse(node)}"
        )

    def _operand(
        self,
        node: ast.expr,
        scope: _Scope,
        depth: int,
        overrides: Optional[Dict[str, SymExpr]],
    ) -> Tuple[Optional[SymExpr], Optional[Resolution]]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return (
                SymExpr(str(node.value), tuple([node.value] * len(TAU_SAMPLES))),
                None,
            )
        res = self.resolve(node, scope, depth + 1, overrides)
        if res.status == "sym":
            return res.expr, None
        if res.status == "param":
            return None, res
        return None, None

    # -- the radius pass -----------------------------------------------
    def radius_pass(self) -> None:
        for scope in self._scopes:
            if not _in_radius_scope(scope.file.rel):
                continue
            assert scope.func is not None
            for node in _walk_own(scope.func):
                if not isinstance(node, ast.Call):
                    continue
                sink = _call_name(node)
                if sink is None or sink not in _SINKS:
                    continue
                spec = _SINKS[sink]
                arg = _sink_arg(node, spec)
                if arg is _MISSING:
                    self._record_missing(node, sink, spec, scope)
                    continue
                res = self.resolve(arg, scope)
                self._record(node, sink, res, scope, arg_node=arg)

    def _record_missing(
        self, node: ast.Call, sink: str, spec: SinkSpec, scope: _Scope
    ) -> None:
        rel, line = scope.file.rel, node.lineno
        if spec.missing == "k":
            self.manifest.radius_sites.append(
                RadiusSite(rel, line, sink, "k", "proven")
            )
            return
        if spec.missing == "unbounded":
            self._flag_unproven(
                node, sink, scope, "traversal has no cutoff (unbounded BFS)"
            )
            return
        self._flag_unproven(node, sink, scope, "radius argument not found")

    def _record(
        self,
        node: ast.AST,
        sink: str,
        res: Resolution,
        scope: _Scope,
        via: str = "",
        arg_node: Optional[ast.expr] = None,
    ) -> None:
        rel, line = scope.file.rel, node.lineno
        if res.status == "sym" and res.expr is not None:
            text = res.expr.canonical()
            if res.expr.le(_SYM_K):
                status = "proven"
            else:
                status = "exceeds"
                self._flag(
                    "REPRO402",
                    "radius-exceeds-ball",
                    scope.file,
                    node,
                    f"{sink}() radius `{text}` exceeds the certified "
                    f"verdict ball k for some tau in "
                    f"{TAU_SAMPLES[0]}..{TAU_SAMPLES[-1]}",
                )
            self.manifest.radius_sites.append(
                RadiusSite(rel, line, sink, text, status, via)
            )
            if rel.endswith("shard/plan.py") and sink == "_multi_source_distances":
                if not res.expr.eq(_SYM_K):
                    self._flag(
                        "REPRO403",
                        "halo-band-radius",
                        scope.file,
                        node,
                        f"halo band traversal runs at `{text}`; the band "
                        "must be exactly k (halo_radius(tau))",
                    )
            return
        if res.status == "param":
            assert res.param is not None
            self._resolve_via_callers(
                node, sink, res.param, scope, via, arg_node
            )
            return
        if res.status == "unbounded":
            self._flag_unproven(
                node, sink, scope, f"unbounded traversal ({res.detail})"
            )
            return
        self._flag_unproven(node, sink, scope, res.detail)

    def _resolve_via_callers(
        self,
        node: ast.AST,
        sink: str,
        param: str,
        scope: _Scope,
        via: str,
        arg_node: Optional[ast.expr],
    ) -> None:
        """One-level interprocedural step: prove a parameter radius at
        every in-tree call site of the enclosing function.

        The sink's *whole* radius expression is re-resolved with the
        parameter bound to each caller's value, so ``ball(v, sep - 1)``
        inside ``f(sep)`` called as ``f(mis_separation(tau))`` proves as
        ``k``, not just as "delegated".
        """
        rel, line = scope.file.rel, node.lineno
        func = scope.func
        assert func is not None
        func_name = getattr(func, "name", "")
        infos = [
            info
            for info in self.func_index.get(func_name, [])
            if info.node is func
        ]
        if not infos or via or arg_node is None:
            # Already one hop deep, or scope bookkeeping failed: record
            # the delegation instead of chasing further.
            self.manifest.radius_sites.append(
                RadiusSite(rel, line, sink, param, "delegated", via)
            )
            return
        info = infos[0]
        index = info.param_call_index(param)
        callers = _call_sites(self.files, func_name, func)
        resolved_any = False
        for caller_scope, call in callers:
            arg = _call_arg(call, index, param)
            if arg is _MISSING:
                continue  # default applies; defaults resolve at the sink
            res = self.resolve(arg, caller_scope)
            chain = (
                f"{func_name}({param}) <- "
                f"{caller_scope.file.rel}:{call.lineno}"
            )
            if res.status == "sym" and res.expr is not None:
                final = self.resolve(
                    arg_node, scope, overrides={param: res.expr}
                )
                self._record(call, sink, final, caller_scope, via=chain)
                resolved_any = True
                continue
            if res.status == "param":
                self.manifest.radius_sites.append(
                    RadiusSite(
                        caller_scope.file.rel,
                        call.lineno,
                        sink,
                        res.param or param,
                        "delegated",
                        chain,
                    )
                )
                resolved_any = True
                continue
            self._record(call, sink, res, caller_scope, via=chain)
            resolved_any = True
        if not resolved_any:
            # No in-tree caller pins the radius: a public API whose
            # callers choose it.  Recorded, not flagged.
            self.manifest.radius_sites.append(
                RadiusSite(rel, line, sink, param, "delegated")
            )

    def _flag_unproven(
        self, node: ast.AST, sink: str, scope: _Scope, why: str
    ) -> None:
        self.manifest.radius_sites.append(
            RadiusSite(scope.file.rel, node.lineno, sink, "?", "unproven")
        )
        self._flag(
            "REPRO401",
            "radius-unproven",
            scope.file,
            node,
            f"{sink}() radius is not a proven function of tau: {why}",
        )

    def _flag(
        self, rule: str, name: str, file: _SourceFile, node: ast.AST, msg: str
    ) -> None:
        self.findings.append(
            Finding(
                path=file.rel,
                rule=rule,
                name=name,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=msg,
            )
        )

    # -- halo-plan structural check (REPRO403) -------------------------
    def halo_plan_pass(self) -> None:
        for scope in self._scopes:
            if not scope.file.rel.endswith("shard/plan.py"):
                continue
            assert scope.func is not None
            for node in _walk_own(scope.func):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "ShardPlan"
                ):
                    for kw in node.keywords:
                        if kw.arg == "halo_radius":
                            res = self.resolve(kw.value, scope)
                            if not (
                                res.status == "sym"
                                and res.expr is not None
                                and res.expr.eq(_SYM_K)
                            ):
                                self._flag(
                                    "REPRO403",
                                    "halo-band-radius",
                                    scope.file,
                                    kw.value,
                                    "ShardPlan.halo_radius must resolve to "
                                    "exactly k (halo_radius(tau))",
                                )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
_MISSING: Any = object()


def _collect_locals(func: ast.AST) -> Dict[str, ast.expr]:
    out: Dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                # First assignment wins: later reassignments in branch
                # arms would otherwise mask the general case, and the
                # scanned modules assign radii once.
                out.setdefault(target.id, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                out.setdefault(node.target.id, node.value)
    return out


def _self_attr_target(
    stmt: ast.AST,
) -> Optional[Tuple[str, ast.expr]]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr, stmt.value
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _sink_arg(node: ast.Call, spec: SinkSpec) -> Any:
    if spec.kwarg is not None:
        for kw in node.keywords:
            if kw.arg == spec.kwarg:
                return kw.value
    if spec.arg_index is not None and len(node.args) > spec.arg_index:
        return node.args[spec.arg_index]
    return _MISSING


def _call_arg(node: ast.Call, index: Optional[int], kwarg: str) -> Any:
    for kw in node.keywords:
        if kw.arg == kwarg:
            return kw.value
    if index is not None and 0 <= index < len(node.args):
        return node.args[index]
    return _MISSING


def _walk_own(func: ast.AST) -> List[ast.AST]:
    """Walk a function body without descending into nested defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _in_radius_scope(rel: str) -> bool:
    return any(part in rel for part in RADIUS_SCAN_DIRS)


def _call_sites(
    files: Sequence[_SourceFile], func_name: str, func: ast.AST
) -> List[Tuple[_Scope, ast.Call]]:
    """Every in-tree call of ``func_name`` with its enclosing scope."""
    out: List[Tuple[_Scope, ast.Call]] = []
    for file in files:
        for scope in _scopes_of(file):
            assert scope.func is not None
            if scope.func is func:
                continue
            for node in _walk_own(scope.func):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) == func_name
                ):
                    out.append((scope, node))
    return out


_SCOPE_CACHE: Dict[int, List[_Scope]] = {}


def _scopes_of(file: _SourceFile) -> List[_Scope]:
    key = id(file)
    if key not in _SCOPE_CACHE:
        scopes: List[_Scope] = []

        def visit(body: Sequence[ast.stmt], class_name: Optional[str]) -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scopes.append(
                        _Scope(
                            file,
                            node,
                            class_name,
                            _collect_locals(node),
                            tuple(a.arg for a in node.args.args),
                        )
                    )
                    visit(node.body, class_name)

        visit(file.tree.body, None)
        _SCOPE_CACHE[key] = scopes
    return _SCOPE_CACHE[key]


# ----------------------------------------------------------------------
# REPRO404: flood TTLs against the declared radii
# ----------------------------------------------------------------------
def _ttl_points(initial_ttl: str) -> Optional[Tuple[int, ...]]:
    """Pointwise-evaluate a FloodSpec's initial-TTL source text."""
    try:
        tree = ast.parse(initial_ttl, mode="eval")
    except SyntaxError:
        return None

    def value(node: ast.expr, env: Dict[str, int]) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name) and node.id in env:
            return env[node.id]
        if isinstance(node, ast.Attribute) and node.attr in env:
            return env[node.attr]
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left = value(node.left, env)
            right = value(node.right, env)
            if left is None or right is None:
                return None
            return left + right if isinstance(node.op, ast.Add) else left - right
        return None

    points: List[int] = []
    for tau in TAU_SAMPLES:
        v = value(tree.body, _radius_env(tau))
        if v is None:
            return None
        points.append(v)
    return tuple(points)


def check_floods(
    contract: ProtocolContract, files: Sequence[_SourceFile]
) -> Tuple[List[Finding], Dict[str, Dict[str, Any]]]:
    """Prove every flood's TTL against its declared paper radius."""
    findings: List[Finding] = []
    manifest: Dict[str, Dict[str, Any]] = {}
    protocol_rel = next(
        (f.rel for f in files if f.rel.endswith("runtime/protocol.py")),
        "src/repro/runtime/protocol.py",
    )

    def flag(rel: str, msg: str) -> None:
        findings.append(
            Finding(
                path=rel,
                rule="REPRO404",
                name="flood-ttl",
                line=1,
                col=0,
                message=msg,
            )
        )

    for kind, symbol in sorted(DECLARED_FLOODS.items()):
        if kind not in contract.kinds:
            continue  # fixture trees check only what they contain
        spec = contract.floods.get(kind)
        if spec is None:
            flag(
                protocol_rel,
                f"declared flood {kind} (radius {symbol}) has no extracted "
                "FloodSpec — TTL initializer/decrement not recognised",
            )
            continue
        entry: Dict[str, Any] = {
            "initial_ttl": spec.initial_ttl,
            "radius_symbol": spec.radius_symbol,
            "decrements": spec.decrements,
            "guarded": spec.guarded,
            "dedup_by_origin": spec.dedup_by_origin,
            "declared_radius": symbol,
        }
        manifest[kind] = entry
        if spec.radius_symbol != symbol:
            flag(
                protocol_rel,
                f"flood {kind}: extracted radius symbol "
                f"{spec.radius_symbol!r} disagrees with the declared "
                f"radius {symbol!r}",
            )
        for attr, why in (
            ("decrements", "relays must decrement the TTL"),
            ("guarded", "relays must be guarded by ttl > 0"),
            ("dedup_by_origin", "relays must dedup by origin"),
        ):
            if not getattr(spec, attr):
                flag(protocol_rel, f"flood {kind}: {why}")
        if spec.initial_ttl is not None:
            points = _ttl_points(spec.initial_ttl)
            expected = tuple(
                _radius_env(tau)[symbol] - 1 for tau in TAU_SAMPLES
            )
            if points is None:
                flag(
                    protocol_rel,
                    f"flood {kind}: initial TTL `{spec.initial_ttl}` is not "
                    "a recognisable function of (tau, k, m)",
                )
            elif points != expected:
                flag(
                    protocol_rel,
                    f"flood {kind}: initial TTL `{spec.initial_ttl}` != "
                    f"declared radius - 1 (`{symbol} - 1`) — the flood "
                    "would over- or under-cover its ball",
                )
    for kind in sorted(contract.floods):
        if kind not in DECLARED_FLOODS:
            flag(
                protocol_rel,
                f"flood kind {kind} has no declared paper radius — add it "
                "to DECLARED_FLOODS with its theorem, or stop flooding",
            )
    return findings, manifest


# ----------------------------------------------------------------------
# REPRO405/406: packed-kernel capacities
# ----------------------------------------------------------------------
_WORD_BITS = 64  # np.uint64


def check_capacities(
    files: Sequence[_SourceFile],
) -> Tuple[List[Finding], Dict[str, Any]]:
    findings: List[Finding] = []
    capacities: Dict[str, Any] = {}
    batch = next((f for f in files if f.rel.endswith("cycles/batch.py")), None)
    if batch is not None:
        findings.extend(_check_batch(batch, capacities))
    for name in ("cycles/kernel.py", "cycles/horton.py"):
        file = next((f for f in files if f.rel.endswith(name)), None)
        if file is not None:
            findings.extend(_check_stage_cutoffs(file))
    return findings, capacities


def _module_int_constants(file: _SourceFile) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for node in file.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    continue
                if isinstance(value, int) and not isinstance(value, bool):
                    out[target.id] = value
    return out


def _const_eval(node: ast.expr, consts: Dict[str, int]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.LShift)
    ):
        left = _const_eval(node.left, consts)
        right = _const_eval(node.right, consts)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        return left << right
    return None


def _check_batch(
    file: _SourceFile, capacities: Dict[str, Any]
) -> List[Finding]:
    findings: List[Finding] = []
    consts = _module_int_constants(file)

    def flag(rule: str, name: str, node: ast.AST, msg: str) -> None:
        findings.append(
            Finding(
                path=file.rel,
                rule=rule,
                name=name,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=msg,
            )
        )

    loc = ast.Module(body=[], type_ignores=[])  # line-1 fallback

    # -- REPRO405: constants vs dtype capacities ------------------------
    members = consts.get("BATCH_MAX_MEMBERS")
    words = consts.get("BATCH_MAX_CHORD_WORDS")
    for name, value in sorted(consts.items()):
        if name in (
            "BATCH_MAX_MEMBERS",
            "BATCH_MAX_CHORD_WORDS",
            "BATCH_MIN_CANDIDATES",
            "PACKED_TAU_MAX",
            "_SLAB_PAD",
            "_TAIL_ROWS",
            "_WORD_MASK",
        ):
            capacities[name] = value
    if members is None:
        flag("REPRO405", "packed-capacity", loc, "BATCH_MAX_MEMBERS not found")
    elif members != _WORD_BITS:
        flag(
            "REPRO405",
            "packed-capacity",
            loc,
            f"BATCH_MAX_MEMBERS = {members}: the packed path stores one "
            f"adjacency *word* per member, so the cap must equal the "
            f"uint64 width ({_WORD_BITS})",
        )
    if "_WORD_MASK" in consts and consts["_WORD_MASK"] != (1 << _WORD_BITS) - 1:
        flag(
            "REPRO405",
            "packed-capacity",
            loc,
            f"_WORD_MASK = {consts['_WORD_MASK']:#x} is not the uint64 "
            "all-ones mask",
        )
    if words is not None and words < 1:
        flag(
            "REPRO405",
            "packed-capacity",
            loc,
            f"BATCH_MAX_CHORD_WORDS = {words} leaves no chord capacity",
        )
    chord_capacity = (
        _WORD_BITS * words if words is not None else None
    )
    if chord_capacity is not None:
        capacities["chord_capacity"] = chord_capacity

    # -- REPRO405: width-class tiling must cover [1, capacity] ----------
    tiling: Optional[List[Tuple[int, int]]] = None
    tiling_node: Optional[ast.AST] = None
    for node in ast.walk(file.tree):
        if (
            isinstance(node, ast.For)
            and isinstance(node.target, ast.Tuple)
            and len(node.target.elts) == 2
            and isinstance(node.iter, ast.Tuple)
        ):
            pairs: List[Tuple[int, int]] = []
            for elt in node.iter.elts:
                if not (isinstance(elt, ast.Tuple) and len(elt.elts) == 2):
                    pairs = []
                    break
                lo = _const_eval(elt.elts[0], consts)
                hi = _const_eval(elt.elts[1], consts)
                if lo is None or hi is None:
                    pairs = []
                    break
                pairs.append((lo, hi))
            if pairs:
                tiling, tiling_node = pairs, node
                break
    if tiling is not None and tiling_node is not None and chord_capacity:
        capacities["width_classes"] = [list(p) for p in tiling]
        expected_lo = 1
        for lo, hi in tiling:
            if lo != expected_lo:
                flag(
                    "REPRO405",
                    "packed-capacity",
                    tiling_node,
                    f"width-class tiling gap/overlap: class starts at {lo}, "
                    f"expected {expected_lo}",
                )
                break
            expected_lo = hi + 1
        else:
            if tiling[-1][1] != chord_capacity:
                flag(
                    "REPRO405",
                    "packed-capacity",
                    tiling_node,
                    f"width-class tiling ends at {tiling[-1][1]}, but the "
                    f"chord capacity is 64 * BATCH_MAX_CHORD_WORDS = "
                    f"{chord_capacity}",
                )

    # -- REPRO405: bit-packed edge-table index fields -------------------
    for node in ast.walk(file.tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "edge_table"
        ):
            shifts = sorted(
                {
                    n.right.value
                    for n in ast.walk(node)
                    if isinstance(n, ast.BinOp)
                    and isinstance(n.op, ast.LShift)
                    and isinstance(n.right, ast.Constant)
                    and isinstance(n.right.value, int)
                }
            )
            if not shifts:
                continue
            field_bits = shifts[0]
            pair_bits = shifts[-1]
            capacities["edge_table_field_bits"] = field_bits
            if members is not None and members > (1 << field_bits):
                flag(
                    "REPRO405",
                    "packed-capacity",
                    node,
                    f"edge_table packs local member indices into "
                    f"{field_bits}-bit fields, which cannot address "
                    f"BATCH_MAX_MEMBERS = {members} members",
                )
            if len(shifts) > 1 and pair_bits != 2 * field_bits:
                flag(
                    "REPRO405",
                    "packed-capacity",
                    node,
                    f"edge_table key packs a (candidate, i, j) triple but "
                    f"the candidate shift ({pair_bits}) is not twice the "
                    f"field width ({field_bits})",
                )
            break

    # -- REPRO406: bypass guards must reference their named thresholds --
    guard_specs: Tuple[Tuple[str, str, str], ...] = (
        ("tau", "PACKED_TAU_MAX", "the packed-path tau gate"),
        ("count", "BATCH_MAX_MEMBERS", "the member-count guard"),
        ("packed", "BATCH_MIN_CANDIDATES", "the amortisation threshold"),
        ("nu", "BATCH_MAX_CHORD_WORDS", "the chord-width guard"),
    )
    seen: Dict[str, List[ast.Compare]] = {key: [] for key, _, _ in guard_specs}
    for node in ast.walk(file.tree):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
            continue
        left = node.left
        left_name: Optional[str] = None
        if isinstance(left, ast.Name):
            left_name = left.id
        elif (
            isinstance(left, ast.Call)
            and isinstance(left.func, ast.Name)
            and left.func.id == "len"
            and left.args
            and isinstance(left.args[0], ast.Name)
        ):
            left_name = left.args[0].id
        if left_name in seen and isinstance(node.ops[0], (ast.Lt, ast.LtE)):
            seen[left_name].append(node)
    for key, const_name, describes in guard_specs:
        if const_name not in consts:
            continue  # constant swept away: the REPRO405 pass reports it
        guards = seen.get(key, [])
        named = False
        for guard in guards:
            rhs = guard.comparators[0]
            if any(
                isinstance(n, ast.Name) and n.id == const_name
                for n in ast.walk(rhs)
            ):
                named = True
            elif (
                isinstance(rhs, ast.Constant)
                and isinstance(rhs.value, int)
                and rhs.value == consts[const_name]
                and rhs.value not in (0, 1, 3)
            ):
                flag(
                    "REPRO406",
                    "bypass-threshold",
                    guard,
                    f"{describes} compares against the literal "
                    f"{rhs.value}; reference {const_name} so the guard "
                    "moves with the capacity",
                )
        if guards and not named:
            flag(
                "REPRO406",
                "bypass-threshold",
                guards[0],
                f"{describes} never references {const_name}",
            )
    if "PACKED_TAU_MAX" in consts and consts["PACKED_TAU_MAX"] != 4:
        flag(
            "REPRO406",
            "bypass-threshold",
            loc,
            f"PACKED_TAU_MAX = {consts['PACKED_TAU_MAX']}: the packed "
            "pipeline's triangle/quad chord structure is complete only "
            "for tau <= 4",
        )
    return findings


def _check_stage_cutoffs(file: _SourceFile) -> List[Finding]:
    """Horton stage-3 cutoffs must be exactly ``floor(tau / 2) <= k``."""
    findings: List[Finding] = []
    for node in ast.walk(file.tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "cutoff"
        ):
            mentions_tau = any(
                isinstance(n, ast.Name) and n.id == "tau"
                for n in ast.walk(node.value)
            )
            if not mentions_tau:
                continue  # a generic (non-tau) traversal budget
            text = ast.unparse(node.value)
            if text != "tau // 2":
                findings.append(
                    Finding(
                        path=file.rel,
                        rule="REPRO405",
                        name="packed-capacity",
                        line=node.lineno,
                        col=node.col_offset,
                        message=f"stage-3 BFS cutoff `{text}` is not the "
                        "derived floor(tau / 2) (see "
                        "repro.topology.radii.stage_cutoff)",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# REPRO407: traffic envelopes
# ----------------------------------------------------------------------
#: Exchange methods that account halo rows, per routing category.
_ROUTING_CALLS = ("account_broadcast", "route", "route_deletions")
#: Exchange methods that are metering/bookkeeping, not traffic.
_EXCHANGE_ADMIN = ("end_round", "round_meter")

#: Sound per-row / per-batch pickle size bounds for the byte envelope:
#: rows are tuples of small ints (vertex id, priority/status), pickled
#: per target batch with protocol framing.  64 bytes per row and 128
#: per accounted batch dominate every row shape the exchange ships.
HALO_ROW_BYTES_BOUND = 64
HALO_BATCH_BYTES_BOUND = 128


def check_envelopes(
    files: Sequence[_SourceFile], contract: ProtocolContract
) -> Tuple[List[Finding], Dict[str, str]]:
    findings: List[Finding] = []
    envelopes: Dict[str, str] = {}

    # Every proven verdict ball stays inside k, so the deepest BFS any
    # run may record is k.
    envelopes["bfs.max_depth"] = "k"

    # -- shard exchange: count the routing categories statically --------
    sched = next(
        (f for f in files if f.rel.endswith("shard/scheduler.py")), None
    )
    if sched is not None:
        categories: set[str] = set()
        for node in ast.walk(sched.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "exchange"
            ):
                attr = node.func.attr
                if attr in _ROUTING_CALLS:
                    categories.add(attr)
                elif attr not in _EXCHANGE_ADMIN:
                    findings.append(
                        Finding(
                            path=sched.rel,
                            rule="REPRO407",
                            name="traffic-envelope",
                            line=node.lineno,
                            col=node.col_offset,
                            message=f"exchange.{attr}() is not a known "
                            "routing category — the halo row envelope "
                            "cannot account for it",
                        )
                    )
        if categories:
            # Each category delivers each subscribed vertex at most once
            # per round (priorities broadcast once, statuses decide each
            # vertex once across sub-rounds, deletions commit once), so
            # rows/round <= categories * total subscriptions.
            coeff = len(categories)
            envelopes["halo.rows_per_round"] = f"{coeff} * halo_members"
            envelopes["halo.bytes_per_round"] = (
                f"{HALO_ROW_BYTES_BOUND} * {coeff} * halo_members + "
                f"{HALO_BATCH_BYTES_BOUND} * {coeff} * shards * "
                "(subrounds + 2)"
            )
            # Each MIS sub-round decides at least one undecided
            # candidate somewhere, so sub-rounds never exceed n.
            envelopes["halo.subrounds_per_round"] = "n"

    # -- runtime sends: flood/gossip classification ---------------------
    if contract.kinds:
        protocol_rel = next(
            (f.rel for f in files if f.rel.endswith("runtime/protocol.py")),
            "src/repro/runtime/protocol.py",
        )
        for kind in contract.kinds:
            meter = f"messages.{kind.lower()}.sent"
            if kind in contract.gossip_kinds:
                # k discovery rounds, every active node broadcasts once
                # per round.
                envelopes[meter] = "k * n"
            elif kind in contract.floods:
                spec = contract.floods[kind]
                if not (spec.decrements and spec.guarded and spec.dedup_by_origin):
                    findings.append(
                        Finding(
                            path=protocol_rel,
                            rule="REPRO407",
                            name="traffic-envelope",
                            line=1,
                            col=0,
                            message=f"flood {kind} lacks "
                            "decrement/guard/origin-dedup, so its relay "
                            "count has no static envelope",
                        )
                    )
                    continue
                if spec.radius_symbol == "m":
                    # One initiation per candidate per round plus at most
                    # one relay per origin per node inside the m-ball.
                    envelopes[meter] = "rounds * n * (1 + ball_m)"
                else:
                    # One announcement per deletion plus one relay per
                    # node inside the k-ball per origin.
                    envelopes[meter] = "deletions * (1 + ball_k)"
            else:
                findings.append(
                    Finding(
                        path=protocol_rel,
                        rule="REPRO407",
                        name="traffic-envelope",
                        line=1,
                        col=0,
                        message=f"message kind {kind} is neither a "
                        "TTL-bounded flood nor adjacency gossip — no "
                        "derivable send envelope",
                    )
                )
    return findings, envelopes


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_bounds(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[List[Finding], BoundsManifest]:
    """Run every REPRO4xx pass over ``paths`` (files or directories)."""
    root = (root or Path.cwd()).resolve()
    expanded: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            expanded.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            expanded.append(path)
    files = _parse_files(expanded, root)
    _SCOPE_CACHE.clear()

    analyzer = _Analyzer(files)
    analyzer.index()
    analyzer.radius_pass()
    analyzer.halo_plan_pass()
    findings = list(analyzer.findings)
    manifest = analyzer.manifest

    runtime_paths = [
        f.path for f in files if "repro/runtime/" in f.rel
    ]
    contract = ProtocolContract()
    if runtime_paths:
        contract, __ = extract_contract(runtime_paths, root)
        flood_findings, flood_manifest = check_floods(contract, files)
        findings.extend(flood_findings)
        manifest.floods = flood_manifest

    capacity_findings, capacities = check_capacities(files)
    findings.extend(capacity_findings)
    manifest.capacities = capacities

    envelope_findings, envelopes = check_envelopes(files, contract)
    findings.extend(envelope_findings)
    manifest.envelopes = envelopes

    kept: List[Finding] = []
    suppressed: set[Tuple[str, int]] = set()
    by_rel = {f.rel: f for f in files}
    for finding in findings:
        file = by_rel.get(finding.path)
        if file is None:
            kept.append(finding)
            continue
        survived = apply_suppressions([finding], file.lines)
        kept.extend(survived)
        if not survived:
            suppressed.add((finding.path, finding.line))
    for site in manifest.radius_sites:
        if site.status == "unproven" and (site.path, site.line) in suppressed:
            site.status = "allowed"
    kept.sort(key=lambda f: f.sort_key)
    return kept, manifest

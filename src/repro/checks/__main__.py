"""``python -m repro.checks`` == ``repro-lint``."""

import sys

from repro.checks.cli import main

sys.exit(main())
